//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` crate's `Value` data model without `syn`/`quote`
//! (unavailable offline): the item's `TokenStream` is parsed by hand into a
//! small shape description, and the impl is emitted as a source string.
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, tuple structs (newtype and wider), and enums with
//! unit, tuple, and struct variants. Generic types and `#[serde(...)]`
//! attributes are intentionally unsupported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- item model ----

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::TupleStruct { name, arity: 0 },
            other => panic!("serde derive: unsupported struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Parses `field: Type, ...` lists, returning field names in order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("serde derive: expected field name, found {tok:?}");
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, found {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        toks.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Counts the fields of a tuple-struct/tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    let mut pending = false; // tokens since the last comma
    for tok in body {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            let c = p.as_char();
            if c == ',' && angle_depth == 0 {
                count += 1;
                pending = false;
                continue;
            }
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' {
                angle_depth -= 1;
            }
        }
        pending = true;
    }
    if !saw_tokens {
        0
    } else {
        count + usize::from(pending)
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments arrive as #[doc = "..."] here).
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() != '#' {
                break;
            }
            toks.next();
            toks.next();
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("serde derive: expected variant name, found {tok:?}");
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                toks.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`); serde ignores them and
        // serializes the variant by name.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            toks.next();
            while let Some(tok) = toks.peek() {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                toks.next();
            }
        }
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant {
            name: vname.to_string(),
            shape,
        });
    }
    variants
}

// ---- code generation ----

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let body: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                body.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "serde::Value::Null".to_string(),
                1 => "serde::Serialize::serialize(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => serde::Value::String(\"{vn}\".to_string())"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::serialize(__f0))])"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::serialize(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), serde::Serialize::serialize({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{}]))])",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    out.parse()
        .expect("serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let body: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::deserialize(__v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                body.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("Ok({name})"),
                1 => format!("Ok({name}(serde::Deserialize::deserialize(__v)?))"),
                n => {
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("serde::Deserialize::deserialize(&__items[{i}])?"))
                        .collect();
                    format!(
                        "match __v {{\n\
                             serde::Value::Array(__items) if __items.len() == {n} => \
                                 Ok({name}({})),\n\
                             __other => Err(serde::Error::custom(format!(\
                                 \"expected array of {n} for {name}, found {{}}\", __other.kind()))),\n\
                         }}",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::deserialize(__inner)?))"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::deserialize(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                     serde::Value::Array(__items) if __items.len() == {n} => \
                                         Ok({name}::{vn}({})),\n\
                                     __other => Err(serde::Error::custom(format!(\
                                         \"expected array of {n} for variant {vn}, found {{}}\", __other.kind()))),\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::deserialize(__inner.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }})",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let unit_match = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::String(__s) => match __s.as_str() {{\n\
                         {},\n\
                         __other => Err(serde::Error::custom(format!(\
                             \"unknown {name} variant `{{__other}}`\"))),\n\
                     }},",
                    unit_arms.join(",\n")
                )
            };
            let data_match = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __inner) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {},\n\
                             __other => Err(serde::Error::custom(format!(\
                                 \"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }},",
                    data_arms.join(",\n")
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             {unit_match}\n\
                             {data_match}\n\
                             __other => Err(serde::Error::custom(format!(\
                                 \"cannot deserialize {name} from {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
