//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest the workspace tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, integer range and
//! tuple strategies, `collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Unlike upstream there is no shrinking and no persisted failure seeds:
//! every case is generated from a seed derived deterministically from the
//! test's fully-qualified name and the case index, so failures reproduce
//! exactly on re-run and results are stable across machines.

pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases each property must pass.
        pub cases: u32,
        /// Rejections tolerated before the run aborts, on top of
        /// `20 * cases`.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 1024,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was falsified; the run fails immediately.
        Fail(String),
        /// `prop_assume!` filtered the inputs; another case is drawn.
        Reject(String),
    }

    /// Deterministic per-case RNG (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test's fully-qualified name and case index. Same
        /// name + index → same stream, on every machine and thread count.
        pub fn for_case(test_name: &str, case_index: u64) -> TestRng {
            // FNV-1a over the name, then mix in the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_name.as_bytes() {
                hash ^= *byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` via Lemire's multiply-high reduction.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a deterministic RNG.
    ///
    /// Upstream proptest separates strategies from value trees (for
    /// shrinking); with shrinking out of scope, a strategy here is just a
    /// generator.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy {}..{}", self.start, self.end);
                    (lo + rng.below((hi - lo) as u64) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(
                        lo <= hi,
                        "empty range strategy {}..={}", self.start(), self.end()
                    );
                    let span = (hi - lo) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Only reachable for the full u64/i64 domain.
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert a condition inside a `proptest!` body; failure falsifies the
/// property for the current inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
}

/// Reject the current inputs (they don't satisfy the property's
/// precondition); the runner draws a fresh case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!("assumption failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
}

/// Declare property tests. Each `fn name(arg in strategy, …) { body }` becomes
/// a `#[test]` that runs `config.cases` accepted cases with deterministic
/// per-case seeds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __test_name = ::core::concat!(
                ::core::module_path!(), "::", ::core::stringify!($name)
            );
            let __strategies = ($($strategy,)+);
            let __max_rejects =
                (__config.cases as u64) * 20 + __config.max_global_rejects as u64;
            let mut __accepted: u64 = 0;
            let mut __rejected: u64 = 0;
            let mut __case_index: u64 = 0;
            while __accepted < __config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(__test_name, __case_index);
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        __rejected += 1;
                        if __rejected > __max_rejects {
                            ::core::panic!(
                                "{}: too many rejected cases ({} rejects for {} accepts)",
                                __test_name, __rejected, __accepted
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        ::core::panic!(
                            "{}: property falsified at case seed index {}\n{}",
                            __test_name, __case_index, __msg
                        );
                    }
                }
                __case_index += 1;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges_respect_bounds", 0);
        for _ in 0..2000 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (-9i64..=9).generate(&mut rng);
            assert!((-9..=9).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..100, 1..20usize).prop_map(|v| v.len());
        let mut a = TestRng::for_case("det", 7);
        let mut b = TestRng::for_case("det", 7);
        let mut c = TestRng::for_case("det", 8);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        // Different case index gives an independent stream (value may
        // coincide, the raw streams must not).
        let _ = strat.generate(&mut c);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_sizes_stay_in_range() {
        let strat = crate::collection::vec(0u8..=255, 2..=5usize);
        let mut rng = TestRng::for_case("vec_sizes", 0);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0u32..10, b in 0u64..10, c in -5i64..=5) {
            prop_assert!(a < 10);
            prop_assert!(b < 10, "b was {}", b);
            prop_assume!(c != 0);
            prop_assert_eq!(c.signum().abs(), 1);
        }

        #[test]
        fn macro_single_arg(v in crate::collection::vec(1u32..4, 1..8usize)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| (1..4).contains(&x)));
        }
    }

    #[test]
    #[should_panic(expected = "property falsified")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
