//! Offline stand-in for `crossbeam`.
//!
//! Provides the scoped-thread API surface the workspace uses
//! (`crossbeam::scope(|s| { s.spawn(|_| …); })`), implemented on top of
//! `std::thread::scope`. The `Result` wrapper mirrors crossbeam's contract:
//! `Err` carries the payload of a panicking child thread.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// A scope for spawning threads that may borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread; join returns the closure's result.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. As in crossbeam, the closure receives the scope
    /// itself so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }),
            _marker: PhantomData,
        }
    }
}

/// Create a scope for spawning borrowing threads. All spawned threads are
/// joined before `scope` returns. Returns `Err` with the panic payload if the
/// closure or any non-joined child thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn threads_borrow_and_join() {
        let counter = AtomicU32::new(0);
        let counter_ref = &counter;
        let total: u32 = super::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter_ref.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(total, 60);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hit = AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hit.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }
}
