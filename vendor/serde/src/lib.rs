//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework under the `serde` name. The data model is
//! a JSON-shaped [`Value`] tree rather than upstream serde's visitor
//! machinery: `Serialize` renders a value *into* a [`Value`], `Deserialize`
//! reconstructs a value *from* one. The `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the vendored `serde_derive`) follow upstream
//! serde's JSON conventions:
//!
//! - named-field structs → objects in declaration order;
//! - newtype structs → the inner value;
//! - tuple structs (arity ≥ 2) → arrays;
//! - unit enum variants → `"Variant"` strings;
//! - data-carrying variants → externally tagged `{"Variant": …}` objects.
//!
//! Object keys keep insertion order, so serialization is fully deterministic
//! — a property the mesh-bench runner's byte-identical JSON guarantee relies
//! on.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    /// Key–value pairs in insertion order (deterministic rendering).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up a field of an object. Missing fields resolve to `Null` so
    /// `Option` fields deserialize to `None`; non-objects are an error.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => Ok(pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(v) => Ok(v),
            Value::I64(v) if v >= 0 => Ok(v as u64),
            ref other => Err(Error::custom(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(v) => Ok(v),
            Value::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
            ref other => Err(Error::custom(format!(
                "expected signed integer, found {}",
                other.kind()
            ))),
        }
    }
}

/// Serialization/deserialization error: a message string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected char, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected tuple array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).serialize(), Value::U64(3));
        assert_eq!(None::<u32>.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize(&Value::U64(5)).unwrap(), Some(5));
    }

    #[test]
    fn missing_object_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.field("a").unwrap(), &Value::U64(1));
        assert_eq!(obj.field("b").unwrap(), &Value::Null);
        assert!(Value::U64(0).field("a").is_err());
    }

    #[test]
    fn signed_integers_prefer_unsigned_repr() {
        assert_eq!(5i64.serialize(), Value::U64(5));
        assert_eq!((-5i64).serialize(), Value::I64(-5));
        assert_eq!(i64::deserialize(&Value::U64(7)).unwrap(), 7);
        assert_eq!(i8::deserialize(&Value::I64(-3)).unwrap(), -3);
        assert!(u8::deserialize(&Value::U64(300)).is_err());
    }

    #[test]
    fn fixed_arrays_round_trip() {
        let a: [u32; 3] = [1, 2, 3];
        let v = a.serialize();
        assert_eq!(<[u32; 3]>::deserialize(&v).unwrap(), a);
        assert!(<[u32; 2]>::deserialize(&v).is_err());
    }
}
