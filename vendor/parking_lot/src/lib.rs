//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock (a thread panicked while holding it) is recovered via
//! `into_inner` on the poison error, matching parking_lot's behaviour of not
//! tracking poisoning at all.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn const_new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_after_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
