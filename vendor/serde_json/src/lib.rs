//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde::Value` data model as JSON text.
//! Object keys keep insertion order, so output is deterministic — the
//! mesh-bench runner relies on this for byte-identical `BENCH_*.json`
//! emission across thread counts.

pub use serde::Error;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

// ---- rendering ----

fn render(v: &serde::Value, out: &mut String, indent: Option<usize>, depth: usize) {
    use serde::Value;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => render_f64(*x, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // JSON has no distinct integer type, but upstream serde_json prints
        // whole floats with a trailing ".0" so they round-trip as floats.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Upstream serde_json rejects non-finite floats; we degrade to null.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<serde::Value, Error> {
        use serde::Value;
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!(
                        "invalid literal at byte {}",
                        self.pos
                    )))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!(
                        "invalid literal at byte {}",
                        self.pos
                    )))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!(
                        "invalid literal at byte {}",
                        self.pos
                    )))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: expect a \uXXXX low surrogate.
                                if !self.consume_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::custom("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Copy one UTF-8 character (bytes validated by &str origin).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = core::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<serde::Value, Error> {
        use serde::Value;
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::I64(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use serde::Value;

    #[test]
    fn compact_rendering_is_deterministic() {
        let v = Value::Object(vec![
            ("b".into(), Value::U64(2)),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(super::to_string(&v).unwrap(), r#"{"b":2,"a":[null,true]}"#);
    }

    #[test]
    fn pretty_rendering_indents_two_spaces() {
        let v = Value::Object(vec![("x".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(
            super::to_string_pretty(&v).unwrap(),
            "{\n  \"x\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn parse_round_trip() {
        let text =
            r#"{"name":"mesh \"5x5\"","n":5,"neg":-3,"rate":0.25,"tags":["a","b"],"opt":null}"#;
        let v: Value = super::from_str(text).unwrap();
        assert_eq!(super::to_string(&v).unwrap(), text);
    }

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(super::to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(super::to_string(&2.5f64).unwrap(), "2.5");
        let v: Value = super::from_str("2.0").unwrap();
        assert_eq!(v, Value::F64(2.0));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = super::from_str(r#""A😀""#).unwrap();
        assert_eq!(v, Value::String("A\u{1F600}".into()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(super::from_str::<Value>("1 2").is_err());
        assert!(super::from_str::<Value>("{").is_err());
    }
}
