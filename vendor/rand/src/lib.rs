//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of `rand` it actually uses: seedable
//! deterministic generation (`StdRng::seed_from_u64`), uniform integer
//! ranges, Bernoulli draws, and Fisher–Yates shuffling. The generator is
//! xoshiro256++ seeded through SplitMix64 — *not* bit-compatible with
//! upstream `StdRng` (ChaCha12), but every consumer in this workspace only
//! relies on determinism per seed, which this provides.

/// Core generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable generators. Only `seed_from_u64` is provided; it is the single
/// entry point the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by multiply-shift (Lemire); `span > 0`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // 128-bit multiply-high gives an unbiased-enough uniform mapping for
    // simulation seeding; exact rejection sampling is not needed here.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Uniform f64 in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (SplitMix64-seeded).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state so callers can checkpoint a
        /// generator mid-stream and later resume it bit-identically.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously captured with
        /// [`StdRng::state`]. The next draw continues the original stream.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), the only `seq` API the workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng, StdRng};

    #[test]
    fn seeded_runs_are_identical() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..16).map(|_| a.gen_range(0..u32::MAX)).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn state_capture_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..7 {
            a.gen_range(0..1000u32);
        }
        let snap = a.state();
        let tail: Vec<u32> = (0..32).map(|_| a.gen_range(0..u32::MAX)).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u32> = (0..32).map(|_| b.gen_range(0..u32::MAX)).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut w: Vec<u32> = (0..50).collect();
        let mut rng2 = StdRng::seed_from_u64(9);
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
    }
}
