//! Offline stand-in for `criterion`.
//!
//! Implements just enough of criterion's API for the workspace benches to
//! compile and produce useful numbers: `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a fixed number of timed batches
//! (no statistical analysis, warm-up, or HTML reports); each benchmark prints
//! `name: mean <t> (min <t>, max <t>) over N samples`.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher<'a> {
    samples: u64,
    recorded: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and page in code.
        std_black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Upstream-compat no-op knobs.
    pub fn measurement_time(self, _: Duration) -> Self {
        self
    }
    pub fn warm_up_time(self, _: Duration) -> Self {
        self
    }
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, _input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.sample_size, |b| f(b, _input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(name: &str, samples: u64, mut f: F) {
    let mut recorded = Vec::new();
    {
        let mut bencher = Bencher {
            samples,
            recorded: &mut recorded,
        };
        f(&mut bencher);
    }
    if recorded.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let total: Duration = recorded.iter().sum();
    let mean = total / recorded.len() as u32;
    let min = recorded.iter().min().unwrap();
    let max = recorded.iter().max().unwrap();
    println!(
        "{name}: mean {} (min {}, max {}) over {} samples",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        recorded.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group: a function that runs each target against a
/// configured `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + 3 timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        assert_eq!(BenchmarkId::new("router", 16).id, "router/16");
    }

    #[test]
    fn duration_formatting_picks_unit() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
