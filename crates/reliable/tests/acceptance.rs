//! The headline acceptance scenario: an `n = 16` mesh under a seeded plan of
//! transient link outages (lossy windows plus short cable cuts, no permanent
//! partition). Raw dynamic injection demonstrably loses packets — the run can
//! never complete and the watchdog flags it — while the reliable transport
//! layered over the *same* problem, plan, and router delivers every payload
//! exactly once, verified by payload-id accounting.

use std::sync::Arc;

use mesh_engine::faults::FaultPlan;
use mesh_engine::{Dx, Sim, SimConfig, SimError};
use mesh_reliable::{BackoffPolicy, Transport};
use mesh_routers::{FaultAware, Theorem15};
use mesh_topo::Mesh;
use mesh_traffic::{workloads, PayloadId};

const N: u32 = 16;
const FAULT_SEED: u64 = 40;
const DENSITY: f64 = 0.12;
const HORIZON: u64 = 8 * N as u64;

fn config() -> SimConfig {
    SimConfig {
        // Must exceed the backoff policy's longest quiet wait, or lawful
        // timer gaps would read as starvation.
        watchdog: Some(512),
        ..SimConfig::default()
    }
}

#[test]
fn raw_injection_loses_packets_and_reliable_delivers_exactly_once() {
    let topo = Mesh::new(N);
    let pb = workloads::dynamic_bernoulli(N, 0.02, 64, 2024);
    let plan = FaultPlan::random_outages(N, DENSITY, HORIZON, FAULT_SEED);
    plan.validate().expect("generated plans are always valid");
    assert!(
        !plan.losses.is_empty(),
        "scenario needs lossy links; bump the density or reseed"
    );
    let faults = Arc::new(plan.compile());

    // ---- Raw dynamic injection over the faulty mesh. ----
    let mut raw = Sim::with_faults(
        &topo,
        FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
        &pb,
        config(),
        (*faults).clone(),
    );
    let raw_err = raw
        .run(200_000)
        .expect_err("losses make completion impossible");
    assert!(raw.lost() > 0, "the plan must actually destroy packets");
    assert_eq!(
        raw.delivered() + raw.lost(),
        pb.len(),
        "every undelivered packet is accounted to a lossy link"
    );
    assert!(
        matches!(raw_err, SimError::Deadlock(_) | SimError::Livelock(_)),
        "the watchdog flags the wedge rather than spinning to the cap: {raw_err}"
    );
    assert_eq!(raw_err.snapshot().lost, raw.lost());

    // ---- The reliable transport over the same problem, plan, and router. ----
    let mut sim = Sim::with_faults(
        &topo,
        FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
        &pb,
        config(),
        (*faults).clone(),
    );
    let mut tp = Transport::new(&pb, BackoffPolicy::exponential(32, 256, 16), 7);
    let steps = sim
        .run_with_protocol(200_000, &mut tp)
        .expect("the transport recovers every loss");
    let rep = tp.report(steps);

    // Payload-id accounting: every payload delivered exactly once.
    assert!(rep.exactly_once, "{rep:?}");
    assert_eq!(rep.delivered, pb.len());
    assert_eq!(rep.acked, pb.len());
    for i in 0..pb.len() {
        assert!(
            tp.first_delivery(PayloadId(i as u32)).is_some(),
            "payload y{i} missing"
        );
    }
    // The reliability was earned, not vacuous: packets really were destroyed
    // and really were retransmitted.
    assert!(rep.data_lost + rep.acks_lost > 0, "{rep:?}");
    assert!(rep.retransmits > 0, "{rep:?}");
    assert!(
        sim.steps() > HORIZON,
        "recovery outlives the fault horizon: {} steps",
        sim.steps()
    );
    assert!(rep.goodput > 0.0);
}
