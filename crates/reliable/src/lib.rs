//! # mesh-reliable
//!
//! End-to-end reliable delivery over the faulty mesh of
//! Chinn–Leighton–Tompa: an ARQ transport layered on top of any router the
//! workspace provides.
//!
//! The network below guarantees nothing once lossy-link faults are in play:
//! a packet crossing a lossy link is destroyed, and the engine's
//! dynamic-injection runs simply lose it. This crate restores exactly-once
//! delivery the way real networks do:
//!
//! * every *payload* (source, destination, release step) carries a
//!   per-source **sequence number**;
//! * the destination keeps a seen-set per source and **suppresses
//!   duplicates**, delivering each payload to the application exactly once
//!   and (re-)sending an **ACK** back through the same mesh;
//! * the source **retransmits** unacknowledged payloads on a timer with
//!   capped exponential **backoff**, jitter drawn from a seeded RNG so every
//!   run is bit-deterministic.
//!
//! The transport attaches to the engine as a
//! [`ProtocolHook`](mesh_engine::ProtocolHook) — drive it with
//! [`Sim::run_with_protocol`](mesh_engine::Sim::run_with_protocol). See
//! `DESIGN.md` §8 for the state machine and the watchdog interplay.

pub mod backoff;
pub mod transport;

pub use backoff::BackoffPolicy;
pub use transport::{Transport, TransportReport};
