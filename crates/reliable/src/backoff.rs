//! Retransmission timer policies.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// A capped exponential backoff schedule with seeded jitter.
///
/// The delay before the `attempt`-th retransmission (attempt 0 = the timer
/// armed right after the original transmission) is
///
/// ```text
/// min(cap, base · factor^attempt) + jitter_draw,   jitter_draw ∈ [0, jitter]
/// ```
///
/// in simulation steps. The jitter draw comes from the *caller's* seeded RNG,
/// so a transport's whole retransmission schedule is a pure function of its
/// seed — bit-deterministic across thread counts. `factor == 1` (see
/// [`BackoffPolicy::fixed`]) degenerates to a constant retransmission
/// timeout, the baseline the reliable experiment compares against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// First timeout, in steps (>= 1).
    pub base: u64,
    /// Multiplier applied per attempt (>= 1; 1 = fixed timeout).
    pub factor: u64,
    /// Upper bound on the deterministic part of the delay.
    pub cap: u64,
    /// Maximum extra steps of uniform jitter added to every delay.
    pub jitter: u64,
}

impl BackoffPolicy {
    /// A constant retransmission timeout of `base` steps, no jitter.
    pub fn fixed(base: u64) -> BackoffPolicy {
        BackoffPolicy {
            base,
            factor: 1,
            cap: base,
            jitter: 0,
        }
    }

    /// Binary exponential backoff: `base · 2^attempt`, capped, with up to
    /// `jitter` steps of seeded jitter per delay.
    pub fn exponential(base: u64, cap: u64, jitter: u64) -> BackoffPolicy {
        BackoffPolicy {
            base,
            factor: 2,
            cap,
            jitter,
        }
    }

    /// Largest delay this policy can produce; a protocol-aware watchdog
    /// window must exceed this, or quiet waits between retransmissions
    /// would read as starvation.
    pub fn max_delay(&self) -> u64 {
        self.cap.max(self.base) + self.jitter
    }

    /// The delay, in steps, to wait before the `attempt`-th retransmission.
    /// Draws the jitter from `rng` (exactly one draw when `jitter > 0`,
    /// none otherwise — callers can count on the draw schedule).
    pub fn delay<R: RngCore>(&self, attempt: u32, rng: &mut R) -> u64 {
        debug_assert!(self.base >= 1 && self.factor >= 1, "degenerate policy");
        let mut d = self.base;
        for _ in 0..attempt {
            d = d.saturating_mul(self.factor);
            if d >= self.cap {
                d = self.cap;
                break;
            }
        }
        let d = d.min(self.cap.max(self.base)).max(1);
        if self.jitter > 0 {
            d + rng.gen_range(0..=self.jitter)
        } else {
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn fixed_policy_is_constant() {
        let p = BackoffPolicy::fixed(7);
        let mut rng = StdRng::seed_from_u64(1);
        for a in 0..10 {
            assert_eq!(p.delay(a, &mut rng), 7);
        }
        assert_eq!(p.max_delay(), 7);
    }

    #[test]
    fn exponential_grows_then_caps() {
        let p = BackoffPolicy::exponential(4, 32, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let delays: Vec<u64> = (0..6).map(|a| p.delay(a, &mut rng)).collect();
        assert_eq!(delays, [4, 8, 16, 32, 32, 32]);
        assert_eq!(p.max_delay(), 32);
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let p = BackoffPolicy::exponential(4, 32, 3);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..50).map(|i| p.delay(i % 7, &mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..50).map(|i| p.delay(i % 7, &mut rng)).collect()
        };
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            let det = p
                .delay((i as u32) % 7, &mut StdRng::seed_from_u64(0))
                .min(32);
            // Jitter only ever adds, and at most `jitter`.
            assert!(*d >= det.min(4) && *d <= 32 + 3, "delay {d} out of range");
        }
        assert_eq!(p.max_delay(), 35);
    }

    #[test]
    fn overflow_saturates_at_cap() {
        let p = BackoffPolicy::exponential(u64::MAX / 2, u64::MAX, 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.delay(3, &mut rng), u64::MAX);
    }
}
