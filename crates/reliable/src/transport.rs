//! The reliable transport: per-source sequence numbers, destination-side
//! duplicate suppression, ACKs, and timer-driven retransmission.

use std::collections::HashSet;

use mesh_engine::stats::Distribution;
use mesh_engine::{ProtocolControl, ProtocolHook, Sim, StepEvents};
use mesh_topo::{Coord, Topology};
use mesh_traffic::{PacketId, PayloadId, RoutingProblem};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::backoff::BackoffPolicy;

/// What a network packet means to the transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum PacketMeta {
    /// A (re)transmission of a payload, source → destination.
    Data(PayloadId),
    /// An acknowledgement of a payload, destination → source.
    Ack(PayloadId),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum PayloadState {
    /// Injection time still in the future; no timer armed, not counted as
    /// outstanding (the watchdog contract of
    /// [`ProtocolControl::Continue`]).
    Unreleased,
    /// Handed to the network, awaiting acknowledgement; the timer is armed.
    InFlight,
    /// Acknowledged end-to-end; the transport is done with it.
    Acked,
}

/// One end-to-end payload: the unit the transport promises to deliver
/// exactly once, however many packets that takes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Payload {
    src: Coord,
    dst: Coord,
    /// Injection step of the original transmission.
    release: u64,
    /// Row-major index of `src` — the dedup key's node half.
    src_idx: u32,
    /// Per-source sequence number — the dedup key's counter half.
    seq: u32,
    state: PayloadState,
    /// Step of the first delivery to the application, if any.
    first_delivered: Option<u64>,
    /// Transmissions so far (original + retransmissions).
    attempts: u32,
    /// Step at (or after) which the next retransmission fires.
    next_retry: u64,
}

/// An ARQ transport layered over the mesh via
/// [`Sim::run_with_protocol`].
///
/// The simulation is constructed over the payload
/// [`RoutingProblem`] as usual — packet *i* of the problem is the original
/// transmission of payload *i*. After every step the transport:
///
/// 1. **releases** payloads whose injection step has passed, arming their
///    retransmission timers;
/// 2. processes **data deliveries**: a payload's first arrival is delivered
///    to the application and recorded in the destination's seen-set keyed by
///    `(source node, sequence number)`; later arrivals are suppressed as
///    duplicates. Either way the destination (re-)sends an ACK back to the
///    source, routed by the same router as everything else;
/// 3. processes **ACK deliveries**, settling payloads (duplicate ACKs are
///    counted and ignored);
/// 4. **retransmits** every released, unacknowledged payload whose timer
///    expired, as a *new* packet, and re-arms the timer per the
///    [`BackoffPolicy`] — jitter drawn from the transport's own seeded RNG,
///    so the entire schedule is a function of `(problem, policy, seed)`.
///
/// Lost packets (data or ACK) need no special handling: the timer recovers
/// both cases, and duplicate suppression keeps recovery idempotent.
pub struct Transport {
    policy: BackoffPolicy,
    rng: StdRng,
    payloads: Vec<Payload>,
    /// Payloads in release order (by injection step, ties by id).
    release_order: Vec<PayloadId>,
    release_cursor: usize,
    /// Meaning of every engine packet, indexed by [`PacketId`]; grows as the
    /// transport spawns ACKs and retransmissions.
    meta: Vec<PacketMeta>,
    /// Destination-side duplicate suppression: `(source node, seq)` pairs
    /// already delivered to the application. (Each payload's destination is
    /// fixed, so one set stands in for all per-destination sets.)
    seen: HashSet<(u32, u32)>,
    /// Released payloads not yet acknowledged.
    outstanding: usize,
    acked: usize,
    delivered: usize,
    retransmits: u64,
    duplicate_deliveries: u64,
    duplicate_acks: u64,
    acks_sent: u64,
    data_lost: u64,
    acks_lost: u64,
}

impl Transport {
    /// Builds a transport for `problem`'s packets-as-payloads. `seed` drives
    /// retransmission jitter (and nothing else); two transports with equal
    /// `(problem, policy, seed)` behave identically.
    pub fn new(problem: &RoutingProblem, policy: BackoffPolicy, seed: u64) -> Transport {
        assert!(policy.base >= 1 && policy.factor >= 1, "degenerate backoff");
        let n = problem.n;
        let mut next_seq = vec![0u32; (n * n) as usize];
        let payloads: Vec<Payload> = problem
            .packets
            .iter()
            .map(|p| {
                let src_idx = p.src.y * n + p.src.x;
                let seq = next_seq[src_idx as usize];
                next_seq[src_idx as usize] += 1;
                Payload {
                    src: p.src,
                    dst: p.dst,
                    release: p.inject_at,
                    src_idx,
                    seq,
                    state: PayloadState::Unreleased,
                    first_delivered: None,
                    attempts: 0,
                    next_retry: u64::MAX,
                }
            })
            .collect();
        let mut release_order: Vec<PayloadId> = (0..payloads.len() as u32).map(PayloadId).collect();
        release_order.sort_by_key(|&y| (payloads[y.index()].release, y));
        let meta = (0..payloads.len() as u32)
            .map(|i| PacketMeta::Data(PayloadId(i)))
            .collect();
        Transport {
            policy,
            rng: StdRng::seed_from_u64(seed),
            payloads,
            release_order,
            release_cursor: 0,
            meta,
            seen: HashSet::new(),
            outstanding: 0,
            acked: 0,
            delivered: 0,
            retransmits: 0,
            duplicate_deliveries: 0,
            duplicate_acks: 0,
            acks_sent: 0,
            data_lost: 0,
            acks_lost: 0,
        }
    }

    /// Payloads in the problem.
    pub fn payloads(&self) -> usize {
        self.payloads.len()
    }

    /// Distinct payloads delivered to the application so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Payloads acknowledged end-to-end so far.
    pub fn acked(&self) -> usize {
        self.acked
    }

    /// Released payloads still awaiting acknowledgement.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Step of the payload's first delivery to the application.
    pub fn first_delivery(&self, y: PayloadId) -> Option<u64> {
        self.payloads[y.index()].first_delivered
    }

    /// True when every payload was delivered to the application exactly once
    /// (duplicates suppressed, none missing).
    pub fn exactly_once(&self) -> bool {
        self.delivered == self.payloads.len()
            && self.payloads.iter().all(|p| p.first_delivered.is_some())
    }

    /// The end-to-end measurements, for a run that took `steps` steps.
    pub fn report(&self, steps: u64) -> TransportReport {
        let latencies: Vec<u64> = self
            .payloads
            .iter()
            .filter_map(|p| p.first_delivered.map(|d| d.saturating_sub(p.release)))
            .collect();
        TransportReport {
            payloads: self.payloads.len(),
            delivered: self.delivered,
            acked: self.acked,
            exactly_once: self.exactly_once(),
            retransmits: self.retransmits,
            duplicate_deliveries: self.duplicate_deliveries,
            duplicate_acks: self.duplicate_acks,
            acks_sent: self.acks_sent,
            data_lost: self.data_lost,
            acks_lost: self.acks_lost,
            steps,
            goodput: if steps == 0 {
                0.0
            } else {
                self.delivered as f64 / steps as f64
            },
            latency: Distribution::of(&latencies),
        }
    }
}

/// The transport's complete serialized state — what rides along in a
/// checkpoint's `protocol` slot. Everything [`Transport::on_step`] reads
/// or writes is here: the ARQ tables (payload states, sequence numbers,
/// timers, attempt counts), the per-packet meaning table, the
/// destination-side seen-set (sorted for deterministic rendering), the
/// counters, and the raw backoff-RNG state so the retransmission jitter
/// stream resumes exactly where it stood. The policy is included for
/// mismatch detection: restoring under a different backoff would silently
/// change the schedule.
#[derive(Serialize, Deserialize)]
struct TransportState {
    policy: BackoffPolicy,
    rng: [u64; 4],
    payloads: Vec<Payload>,
    release_order: Vec<PayloadId>,
    release_cursor: usize,
    meta: Vec<PacketMeta>,
    seen: Vec<(u32, u32)>,
    outstanding: usize,
    acked: usize,
    delivered: usize,
    retransmits: u64,
    duplicate_deliveries: u64,
    duplicate_acks: u64,
    acks_sent: u64,
    data_lost: u64,
    acks_lost: u64,
}

impl mesh_engine::SnapshotHook for Transport {
    fn snapshot_state(&self) -> serde::Value {
        let mut seen: Vec<(u32, u32)> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        TransportState {
            policy: self.policy,
            rng: self.rng.state(),
            payloads: self.payloads.clone(),
            release_order: self.release_order.clone(),
            release_cursor: self.release_cursor,
            meta: self.meta.clone(),
            seen,
            outstanding: self.outstanding,
            acked: self.acked,
            delivered: self.delivered,
            retransmits: self.retransmits,
            duplicate_deliveries: self.duplicate_deliveries,
            duplicate_acks: self.duplicate_acks,
            acks_sent: self.acks_sent,
            data_lost: self.data_lost,
            acks_lost: self.acks_lost,
        }
        .serialize()
    }

    fn restore_state(&mut self, v: &serde::Value) -> Result<(), serde::Error> {
        let st = TransportState::deserialize(v)?;
        if st.policy != self.policy {
            return Err(serde::Error::custom(format!(
                "checkpoint was taken under backoff policy {:?}, restoring under {:?}",
                st.policy, self.policy
            )));
        }
        if st.payloads.len() != self.payloads.len() {
            return Err(serde::Error::custom(format!(
                "checkpoint has {} payloads, this transport was built over {}",
                st.payloads.len(),
                self.payloads.len()
            )));
        }
        if st.release_order.len() != st.payloads.len() || st.release_cursor > st.release_order.len()
        {
            return Err(serde::Error::custom(
                "checkpoint release bookkeeping is inconsistent with its payload table",
            ));
        }
        if st.meta.len() < st.payloads.len() {
            return Err(serde::Error::custom(format!(
                "checkpoint meta table has {} entries for {} payloads",
                st.meta.len(),
                st.payloads.len()
            )));
        }
        self.rng = StdRng::from_state(st.rng);
        self.payloads = st.payloads;
        self.release_order = st.release_order;
        self.release_cursor = st.release_cursor;
        self.meta = st.meta;
        self.seen = st.seen.into_iter().collect();
        self.outstanding = st.outstanding;
        self.acked = st.acked;
        self.delivered = st.delivered;
        self.retransmits = st.retransmits;
        self.duplicate_deliveries = st.duplicate_deliveries;
        self.duplicate_acks = st.duplicate_acks;
        self.acks_sent = st.acks_sent;
        self.data_lost = st.data_lost;
        self.acks_lost = st.acks_lost;
        Ok(())
    }
}

impl ProtocolHook for Transport {
    fn on_step<T: Topology, R: mesh_engine::Router>(
        &mut self,
        sim: &mut Sim<'_, T, R>,
        events: &StepEvents,
    ) -> ProtocolControl {
        let s = events.step;
        // 1. Release: step `s` just completed, so every payload with
        // `release <= s - 1` has been injected (or deferred by admission
        // control — the timer covers that case too); the synthetic step-0
        // batch covers construction-time injections (`release == 0`).
        // Timers count from the step after injection.
        while self.release_cursor < self.release_order.len() {
            let y = self.release_order[self.release_cursor];
            let p = &mut self.payloads[y.index()];
            if p.release > s.saturating_sub(1) {
                break;
            }
            self.release_cursor += 1;
            p.state = PayloadState::InFlight;
            p.attempts = 1;
            let d = self.policy.delay(0, &mut self.rng);
            p.next_retry = p.release + 1 + d;
            self.outstanding += 1;
        }
        // 2./3. Deliveries.
        for &pid in &events.delivered {
            match self.meta[pid.index()] {
                PacketMeta::Data(y) => {
                    let p = self.payloads[y.index()];
                    if self.seen.insert((p.src_idx, p.seq)) {
                        self.payloads[y.index()].first_delivered = Some(s);
                        self.delivered += 1;
                    } else {
                        self.duplicate_deliveries += 1;
                    }
                    // (Re-)acknowledge: duplicates mean the previous ACK may
                    // have been lost.
                    let ack = sim.spawn(p.dst, p.src, s);
                    debug_assert_eq!(ack.index(), self.meta.len());
                    self.meta.push(PacketMeta::Ack(y));
                    self.acks_sent += 1;
                }
                PacketMeta::Ack(y) => {
                    let p = &mut self.payloads[y.index()];
                    if p.state == PayloadState::Acked {
                        self.duplicate_acks += 1;
                    } else {
                        debug_assert_eq!(p.state, PayloadState::InFlight);
                        p.state = PayloadState::Acked;
                        p.next_retry = u64::MAX;
                        self.outstanding -= 1;
                        self.acked += 1;
                    }
                }
            }
        }
        // Losses: nothing to do — timers recover both directions — but the
        // split is worth measuring.
        for &pid in &events.lost {
            match self.meta[pid.index()] {
                PacketMeta::Data(_) => self.data_lost += 1,
                PacketMeta::Ack(_) => self.acks_lost += 1,
            }
        }
        // 4. Retransmit expired timers, in payload order (determinism: the
        // spawn order and the RNG draw order are both fixed by it).
        for yi in 0..self.payloads.len() {
            let p = self.payloads[yi];
            if p.state != PayloadState::InFlight || p.next_retry > s {
                continue;
            }
            let pid: PacketId = sim.spawn(p.src, p.dst, s);
            debug_assert_eq!(pid.index(), self.meta.len());
            self.meta.push(PacketMeta::Data(PayloadId(yi as u32)));
            self.retransmits += 1;
            let p = &mut self.payloads[yi];
            p.attempts += 1;
            let d = self.policy.delay(p.attempts - 1, &mut self.rng);
            p.next_retry = s + d;
        }
        if self.acked == self.payloads.len() {
            ProtocolControl::Done
        } else {
            ProtocolControl::Continue {
                outstanding: self.outstanding,
            }
        }
    }
}

/// End-to-end measurements of one reliable run, alongside the network-level
/// [`SimReport`](mesh_engine::SimReport).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransportReport {
    /// Payloads in the problem.
    pub payloads: usize,
    /// Distinct payloads delivered to the application.
    pub delivered: usize,
    /// Payloads acknowledged end-to-end.
    pub acked: usize,
    /// Every payload delivered to the application exactly once.
    pub exactly_once: bool,
    /// Data packets spawned beyond the originals.
    pub retransmits: u64,
    /// Data arrivals suppressed by the destination seen-sets.
    pub duplicate_deliveries: u64,
    /// ACK arrivals for already-settled payloads.
    pub duplicate_acks: u64,
    /// ACK packets spawned.
    pub acks_sent: u64,
    /// Data packets destroyed by lossy links.
    pub data_lost: u64,
    /// ACK packets destroyed by lossy links.
    pub acks_lost: u64,
    /// Steps the run took.
    pub steps: u64,
    /// Distinct payloads delivered per step.
    pub goodput: f64,
    /// First-delivery latency (delivery step − release step) over delivered
    /// payloads.
    pub latency: Distribution,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::faults::FaultPlan;
    use mesh_engine::{Dx, SimConfig};
    use mesh_routers::Theorem15;
    use mesh_topo::{Dir, Mesh};

    fn sim_config(watchdog: u64) -> SimConfig {
        SimConfig {
            watchdog: Some(watchdog),
            ..SimConfig::default()
        }
    }

    #[test]
    fn fault_free_run_acks_everything_without_retransmits() {
        let n = 4;
        let topo = Mesh::new(n);
        let pb = RoutingProblem::from_pairs(
            n,
            "pairs",
            [
                (Coord::new(0, 0), Coord::new(3, 3)),
                (Coord::new(3, 0), Coord::new(0, 3)),
                (Coord::new(2, 2), Coord::new(2, 2)), // trivial
            ],
        );
        let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
        let mut tp = Transport::new(&pb, BackoffPolicy::fixed(64), 7);
        let steps = sim.run_with_protocol(10_000, &mut tp).unwrap();
        assert!(tp.exactly_once());
        assert_eq!(tp.acked(), 3);
        assert_eq!(tp.outstanding(), 0);
        let rep = tp.report(steps);
        assert_eq!(rep.retransmits, 0, "no faults, no timeouts");
        assert_eq!(rep.duplicate_deliveries, 0);
        assert_eq!(rep.acks_sent, 3);
        assert!(rep.exactly_once);
        assert!(rep.goodput > 0.0);
        // The trivial payload has zero latency; the others took real steps.
        assert_eq!(rep.latency.min, 0);
        assert!(rep.latency.max >= 6);
    }

    #[test]
    fn transient_lossy_link_is_recovered_by_retransmission() {
        let n = 4;
        let topo = Mesh::new(n);
        let pb = RoutingProblem::from_pairs(n, "one", [(Coord::new(0, 0), Coord::new(3, 0))]);
        // The packet's first crossing of (1,0)→E is eaten; the loss window
        // closes before the retransmission (timeout 8) reaches it.
        let faults = FaultPlan::none(n)
            .lossy(Coord::new(1, 0), Dir::East, 0, Some(6))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(Theorem15::new(2)),
            &pb,
            sim_config(128),
            faults,
        );
        let mut tp = Transport::new(&pb, BackoffPolicy::fixed(8), 1);
        let steps = sim.run_with_protocol(10_000, &mut tp).unwrap();
        let rep = tp.report(steps);
        assert!(rep.exactly_once, "{rep:?}");
        assert!(rep.retransmits >= 1, "{rep:?}");
        assert!(rep.data_lost >= 1, "{rep:?}");
        assert_eq!(rep.duplicate_deliveries, 0);
    }

    #[test]
    fn lost_ack_triggers_duplicate_then_suppression_and_reack() {
        let n = 4;
        let topo = Mesh::new(n);
        let pb = RoutingProblem::from_pairs(n, "one", [(Coord::new(0, 0), Coord::new(3, 0))]);
        // Data flows east unharmed; the ACK (westbound over the same cable
        // row) is eaten for a while, forcing a data retransmission whose
        // duplicate delivery re-acks.
        let faults = FaultPlan::none(n)
            .lossy(Coord::new(2, 0), Dir::West, 0, Some(12))
            .lossy(Coord::new(3, 0), Dir::West, 0, Some(12))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(Theorem15::new(2)),
            &pb,
            sim_config(128),
            faults,
        );
        let mut tp = Transport::new(&pb, BackoffPolicy::exponential(6, 24, 2), 3);
        let steps = sim.run_with_protocol(10_000, &mut tp).unwrap();
        let rep = tp.report(steps);
        assert!(rep.exactly_once, "{rep:?}");
        assert_eq!(rep.delivered, 1);
        assert!(rep.acks_lost >= 1, "{rep:?}");
        assert!(
            rep.duplicate_deliveries >= 1,
            "duplicate suppressed: {rep:?}"
        );
        assert!(rep.acks_sent >= 2, "re-ack on duplicate: {rep:?}");
        assert_eq!(rep.acked, 1);
        assert!(rep.duplicate_acks + rep.acks_lost >= rep.acks_sent - 1);
    }

    #[test]
    fn permanently_lossy_path_is_flagged_as_livelock_not_masked() {
        let n = 4;
        let topo = Mesh::new(n);
        let pb = RoutingProblem::from_pairs(n, "one", [(Coord::new(0, 0), Coord::new(1, 0))]);
        // The only profitable link out of the source is permanently lossy:
        // retransmission can generate activity forever but never a delivery.
        // The protocol-aware watchdog must call it a livelock.
        let faults = FaultPlan::none(n)
            .lossy(Coord::new(0, 0), Dir::East, 0, None)
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(Theorem15::new(2)),
            &pb,
            sim_config(64),
            faults,
        );
        let mut tp = Transport::new(&pb, BackoffPolicy::fixed(4), 11);
        let err = sim.run_with_protocol(100_000, &mut tp).unwrap_err();
        assert!(
            matches!(err, mesh_engine::SimError::Livelock(_)),
            "got {err}"
        );
        assert!(!tp.exactly_once());
        assert!(tp.report(sim.steps()).data_lost >= 2);
    }

    #[test]
    fn runs_are_bit_deterministic_for_equal_seeds() {
        let n = 8;
        let topo = Mesh::new(n);
        let pb = mesh_traffic::workloads::dynamic_bernoulli(n, 0.02, 32, 1234);
        let faults = FaultPlan::random_outages(n, 0.08, 256, 99).compile();
        let run = |seed: u64| {
            let mut sim = Sim::with_faults(
                &topo,
                Dx::new(Theorem15::new(2)),
                &pb,
                sim_config(512),
                faults.clone(),
            );
            let mut tp = Transport::new(&pb, BackoffPolicy::exponential(16, 128, 8), seed);
            let res = sim
                .run_with_protocol(100_000, &mut tp)
                .map_err(|e| e.kind());
            (res, serde_json::to_string(&tp.report(sim.steps())).unwrap())
        };
        let (ra, ja) = run(5);
        let (rb, jb) = run(5);
        assert_eq!(ra, rb);
        assert_eq!(ja, jb, "identical seeds give byte-identical reports");
        let (_, jc) = run(6);
        // A different jitter seed may legitimately coincide on quiet runs,
        // but the machinery must at least produce a valid report.
        assert!(!jc.is_empty());
    }

    #[test]
    fn seq_numbers_are_per_source() {
        let n = 4;
        let pb = RoutingProblem::from_pairs(
            n,
            "multi",
            [
                (Coord::new(0, 0), Coord::new(3, 3)),
                (Coord::new(1, 0), Coord::new(3, 0)),
                (Coord::new(0, 0), Coord::new(2, 2)),
            ],
        );
        let tp = Transport::new(&pb, BackoffPolicy::fixed(8), 0);
        assert_eq!((tp.payloads[0].src_idx, tp.payloads[0].seq), (0, 0));
        assert_eq!((tp.payloads[1].src_idx, tp.payloads[1].seq), (1, 0));
        assert_eq!(
            (tp.payloads[2].src_idx, tp.payloads[2].seq),
            (0, 1),
            "second payload from (0,0) gets the next sequence number"
        );
    }
}
