//! Deterministic parallel trial runner.
//!
//! Every experiment is a flat list of **cells** — independent
//! `(algorithm, workload, n, …)` points, each with a closure that runs one
//! trial. The runner fans `(cell, trial)` units across a crossbeam scoped
//! thread pool and collects outputs into slots indexed by `(cell, trial)`,
//! so results are **bit-identical regardless of thread count or
//! scheduling**: no trial ever observes another's RNG or ordering.
//!
//! Seeding: a trial closure receives only its 0-based trial index. Seeded
//! cells derive their workload seed via [`derive_seed`], which returns the
//! experiment's historical seed at trial 0 (so recorded table values are
//! preserved) and a SplitMix64-mixed seed for later trials.
//!
//! Output channels per experiment:
//!
//! - a [`Table`] (trial 0 of every cell) — the same text tables as before;
//! - a [`BenchDoc`] (`BENCH_<id>.json`): all trial rows plus per-cell
//!   [`ReportAggregate`] statistics (mean/min/max/stddev across trials).
//!   Contains **no timing**, so it is byte-identical across thread counts;
//! - a [`TimingDoc`] (`BENCH_<id>.timing.json`): wall-clock per cell and
//!   for the whole experiment, which is inherently machine- and
//!   thread-dependent and therefore lives in a sidecar.

use crate::table::Table;
use mesh_routing::engine::{ReportAggregate, SimReport};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What one trial of one cell produced: a table row, and optionally the
/// engine report backing it (aggregated across trials in the JSON sweep).
pub struct TrialOutput {
    pub row: Vec<String>,
    pub report: Option<SimReport>,
}

impl TrialOutput {
    pub fn new(row: Vec<String>) -> TrialOutput {
        TrialOutput { row, report: None }
    }

    pub fn with_report(row: Vec<String>, report: SimReport) -> TrialOutput {
        TrialOutput {
            row,
            report: Some(report),
        }
    }
}

/// One independent experiment point.
pub struct Cell {
    pub label: String,
    /// Seeded cells run `trials` times with varied seeds; unseeded cells are
    /// deterministic in their inputs and run exactly once.
    pub seeded: bool,
    run: Box<dyn Fn(u64) -> TrialOutput + Send + Sync>,
}

impl Cell {
    /// A deterministic cell: always one trial.
    pub fn fixed(
        label: impl Into<String>,
        run: impl Fn(u64) -> TrialOutput + Send + Sync + 'static,
    ) -> Cell {
        Cell {
            label: label.into(),
            seeded: false,
            run: Box::new(run),
        }
    }

    /// A seed-parameterised cell: runs once per requested trial, with the
    /// trial index passed to the closure.
    pub fn seeded(
        label: impl Into<String>,
        run: impl Fn(u64) -> TrialOutput + Send + Sync + 'static,
    ) -> Cell {
        Cell {
            label: label.into(),
            seeded: true,
            run: Box::new(run),
        }
    }
}

/// Workload seed for a trial: the historical seed at trial 0 (preserving
/// recorded table values), a SplitMix64 mix of `(historical, trial)` after.
pub fn derive_seed(historical: u64, trial: u64) -> u64 {
    if trial == 0 {
        return historical;
    }
    let mut z = historical ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How to execute an experiment's cells.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Worker threads for the trial pool (1 = run inline on the caller).
    pub threads: usize,
    /// Trials per seeded cell (unseeded cells always run once).
    pub trials: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            trials: 1,
        }
    }
}

impl RunnerConfig {
    /// Single-threaded, single-trial: the configuration whose outputs the
    /// historical serial tables were recorded under.
    pub fn serial() -> RunnerConfig {
        RunnerConfig {
            threads: 1,
            trials: 1,
        }
    }
}

/// All trials of one cell, in trial order, plus its total wall-clock.
pub struct CellResult {
    pub label: String,
    pub seeded: bool,
    pub trials: Vec<TrialOutput>,
    pub wall: Duration,
}

/// Runs every `(cell, trial)` unit across a scoped thread pool and returns
/// per-cell results in declaration order, trial-indexed — independent of
/// thread count and scheduling.
pub fn run_cells(cells: Vec<Cell>, config: &RunnerConfig) -> Vec<CellResult> {
    // Flatten to work units; slot index = position here.
    let mut units: Vec<(usize, u64)> = Vec::new();
    for (ci, cell) in cells.iter().enumerate() {
        let trials = if cell.seeded { config.trials.max(1) } else { 1 };
        for trial in 0..trials {
            units.push((ci, trial));
        }
    }

    let mut slots: Vec<Option<(TrialOutput, Duration)>> = (0..units.len()).map(|_| None).collect();
    let threads = config.threads.max(1).min(units.len().max(1));
    if threads == 1 {
        for (slot, &(ci, trial)) in slots.iter_mut().zip(units.iter()) {
            let t0 = Instant::now();
            let out = (cells[ci].run)(trial);
            *slot = Some((out, t0.elapsed()));
        }
    } else {
        let shared = Mutex::new(&mut slots);
        let next = AtomicUsize::new(0);
        crossbeam::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let (ci, trial) = units[i];
                    let t0 = Instant::now();
                    let out = (cells[ci].run)(trial);
                    shared.lock()[i] = Some((out, t0.elapsed()));
                });
            }
        })
        .expect("trial worker panicked");
    }

    // Fold flat slots back into per-cell results, preserving both orders.
    let mut results: Vec<CellResult> = cells
        .into_iter()
        .map(|c| CellResult {
            label: c.label,
            seeded: c.seeded,
            trials: Vec::new(),
            wall: Duration::ZERO,
        })
        .collect();
    for ((ci, _trial), slot) in units.into_iter().zip(slots) {
        let (out, wall) = slot.expect("every unit was executed");
        results[ci].trials.push(out);
        results[ci].wall += wall;
    }
    results
}

// ---- experiment plumbing ----

/// An experiment: table metadata plus its independent cells.
pub struct Experiment {
    pub id: String,
    pub title: String,
    pub expectation: String,
    pub headers: Vec<String>,
    pub cells: Vec<Cell>,
}

impl Experiment {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        expectation: impl Into<String>,
        headers: &[&str],
    ) -> Experiment {
        Experiment {
            id: id.into(),
            title: title.into(),
            expectation: expectation.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            cells: Vec::new(),
        }
    }

    /// Adds a deterministic cell.
    pub fn fixed(
        &mut self,
        label: impl Into<String>,
        run: impl Fn(u64) -> TrialOutput + Send + Sync + 'static,
    ) {
        self.cells.push(Cell::fixed(label, run));
    }

    /// Adds a seed-parameterised cell.
    pub fn seeded(
        &mut self,
        label: impl Into<String>,
        run: impl Fn(u64) -> TrialOutput + Send + Sync + 'static,
    ) {
        self.cells.push(Cell::seeded(label, run));
    }
}

/// Per-cell record of the JSON sweep: all trial rows, plus aggregate
/// statistics over the trials that attached a [`SimReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellDoc {
    pub label: String,
    pub seeded: bool,
    pub trials: usize,
    /// Table rows per trial, under the experiment's `headers`.
    pub rows: Vec<Vec<String>>,
    /// Mean/min/max/stddev across trial reports (absent if no trial
    /// attached a report).
    pub aggregate: Option<ReportAggregate>,
}

/// The `BENCH_<experiment>.json` document. Deliberately timing-free: for a
/// fixed experiment and `--trials`, it is byte-identical across `--threads`
/// values (timing goes to the [`TimingDoc`] sidecar).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchDoc {
    pub experiment: String,
    pub title: String,
    pub expectation: String,
    /// Trials requested per seeded cell.
    pub trials: u64,
    pub headers: Vec<String>,
    pub cells: Vec<CellDoc>,
}

/// Wall-clock of one cell (all its trials), for the timing sidecar.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellTiming {
    pub label: String,
    pub wall_ms: f64,
}

/// The `BENCH_<experiment>.timing.json` sidecar: machine-dependent
/// measurements, separated so the main document stays deterministic.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingDoc {
    pub experiment: String,
    pub threads: usize,
    pub trials: u64,
    /// End-to-end wall-clock of the experiment (pool setup included).
    pub elapsed_ms: f64,
    /// Sum of per-trial wall-clocks (CPU-bound work actually done).
    pub busy_ms: f64,
    pub cells: Vec<CellTiming>,
}

/// Everything one experiment run produces.
pub struct ExperimentRun {
    pub table: Table,
    pub doc: BenchDoc,
    pub timing: TimingDoc,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Executes an experiment under `config`: runs the cells on the pool, then
/// assembles the table (trial 0 of every cell), the deterministic JSON
/// document, and the timing sidecar.
pub fn run_experiment(exp: Experiment, config: &RunnerConfig) -> ExperimentRun {
    let t0 = Instant::now();
    let Experiment {
        id,
        title,
        expectation,
        headers,
        cells,
    } = exp;
    let results = run_cells(cells, config);
    let elapsed = t0.elapsed();

    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&id, &title, &expectation, &header_refs);
    let mut docs = Vec::with_capacity(results.len());
    let mut timings = Vec::with_capacity(results.len());
    let mut busy = Duration::ZERO;
    for cell in results {
        if let Some(first) = cell.trials.first() {
            table.row(first.row.clone());
        }
        let reports: Vec<SimReport> = cell
            .trials
            .iter()
            .filter_map(|t| t.report.clone())
            .collect();
        docs.push(CellDoc {
            label: cell.label.clone(),
            seeded: cell.seeded,
            trials: cell.trials.len(),
            rows: cell.trials.into_iter().map(|t| t.row).collect(),
            aggregate: (!reports.is_empty()).then(|| SimReport::aggregate(&reports)),
        });
        busy += cell.wall;
        timings.push(CellTiming {
            label: cell.label,
            wall_ms: ms(cell.wall),
        });
    }

    ExperimentRun {
        table,
        doc: BenchDoc {
            experiment: id.clone(),
            title,
            expectation,
            trials: config.trials.max(1),
            headers,
            cells: docs,
        },
        timing: TimingDoc {
            experiment: id,
            threads: config.threads.max(1),
            trials: config.trials.max(1),
            elapsed_ms: ms(elapsed),
            busy_ms: ms(busy),
            cells: timings,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_experiment() -> Experiment {
        let mut e = Experiment::new("t", "title", "expect", &["cell", "trial"]);
        for i in 0..5 {
            e.seeded(format!("cell{i}"), move |trial| {
                TrialOutput::new(vec![format!("cell{i}"), trial.to_string()])
            });
        }
        e.fixed("fixed", |trial| {
            TrialOutput::new(vec!["fixed".into(), trial.to_string()])
        });
        e
    }

    #[test]
    fn slots_are_ordered_regardless_of_threads() {
        for threads in [1, 2, 8] {
            let cfg = RunnerConfig { threads, trials: 3 };
            let results = run_cells(counting_experiment().cells, &cfg);
            assert_eq!(results.len(), 6);
            for (i, cell) in results.iter().take(5).enumerate() {
                assert_eq!(cell.label, format!("cell{i}"));
                assert_eq!(cell.trials.len(), 3);
                for (t, out) in cell.trials.iter().enumerate() {
                    assert_eq!(out.row, vec![format!("cell{i}"), t.to_string()]);
                }
            }
            // The unseeded cell ran exactly once despite trials = 3.
            assert_eq!(results[5].trials.len(), 1);
        }
    }

    #[test]
    fn experiment_json_is_thread_count_invariant() {
        let make = |threads| {
            let cfg = RunnerConfig { threads, trials: 4 };
            let run = run_experiment(counting_experiment(), &cfg);
            serde_json::to_string_pretty(&run.doc).unwrap()
        };
        let serial = make(1);
        assert_eq!(serial, make(3));
        assert_eq!(serial, make(16));
    }

    #[test]
    fn table_rows_come_from_trial_zero() {
        let run = run_experiment(
            counting_experiment(),
            &RunnerConfig {
                threads: 4,
                trials: 2,
            },
        );
        // Six cells → six table rows, each cell contributing trial 0 only;
        // the JSON document still carries both trials.
        assert_eq!(run.table.rows.len(), 6);
        for row in &run.table.rows {
            assert_eq!(row[1], "0");
        }
        assert_eq!(run.doc.cells[0].rows.len(), 2);
        assert_eq!(run.doc.cells[0].rows[1][1], "1");
    }

    #[test]
    fn derive_seed_is_historical_at_trial_zero() {
        assert_eq!(derive_seed(42, 0), 42);
        assert_ne!(derive_seed(42, 1), 42);
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
    }

    #[test]
    fn timing_sidecar_counts_every_cell() {
        let run = run_experiment(counting_experiment(), &RunnerConfig::serial());
        assert_eq!(run.timing.cells.len(), 6);
        assert_eq!(run.timing.threads, 1);
        assert!(run.timing.busy_ms >= 0.0);
    }
}
