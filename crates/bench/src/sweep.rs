//! Shared sweep-cell helpers for the experiments.
//!
//! Every experiment in [`crate::experiments`] formats its table cells the
//! same few ways: ratios to the theoretical bound at three decimals,
//! per-`n` figures at one decimal, `-` for runs that stalled at the step
//! cap, the watchdog verdict of a faulty run, and so on. Those idioms
//! live here once, so a formatting tweak cannot silently fork between
//! tables. All helpers are byte-stable: the recorded `BENCH_*.json`
//! documents and EXPERIMENTS.md tables were produced through them.

use crate::runner::TrialOutput;
use mesh_routing::prelude::{RouteOutcome, RoutingProblem, Section6Router, SimError};

/// `a / b` at three decimals — the "measured over bound" cell.
pub fn ratio(a: u64, b: f64) -> String {
    format!("{:.3}", a as f64 / b)
}

/// `x / n` at one decimal — the "steps per n" cell.
pub fn per_n(x: u64, n: u32) -> String {
    format!("{:.1}", x as f64 / n as f64)
}

/// The workload family name without its parameter list: the part of the
/// problem label before the first `(`.
pub fn short_label(pb: &RoutingProblem) -> String {
    pb.label.split('(').next().unwrap_or("?").to_string()
}

/// Steps as a cell, or `-` for a run that hit the cap: stalling is a
/// finding (the impossibility the paper proves), not an error.
pub fn steps_or_dash(completed: bool, steps: u64) -> String {
    if completed {
        steps.to_string()
    } else {
        "-".into()
    }
}

/// The outcome cell of a watchdogged run: `completed`, or the error kind
/// (`deadlock` / `livelock` / `step-cap`).
pub fn outcome_tag<T>(res: &Result<T, SimError>) -> &'static str {
    match res {
        Ok(_) => "completed",
        Err(err) => err.kind(),
    }
}

/// The step cap for matrix cells whose routers may stall: `8n²` burns a
/// bounded amount of time on a deadlocked run while staying far beyond
/// any completing run in these sweeps.
pub fn stall_cap(n: u32) -> u64 {
    8 * (n as u64) * (n as u64)
}

/// A routed cell: the row plus the run's report (when the route captured
/// one) for the JSON sidecar.
pub fn routed(row: Vec<String>, out: RouteOutcome) -> TrialOutput {
    TrialOutput {
        row,
        report: out.report,
    }
}

/// The §6 router at either constant: base `q = 408` or the §6.4 improved
/// `q = 102`.
pub fn section6_router(improved: bool) -> Section6Router {
    if improved {
        Section6Router::improved()
    } else {
        Section6Router::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_is_byte_stable() {
        assert_eq!(ratio(7, 2.0), "3.500");
        assert_eq!(per_n(10, 4), "2.5");
        assert_eq!(steps_or_dash(true, 42), "42");
        assert_eq!(steps_or_dash(false, 42), "-");
        assert_eq!(stall_cap(10), 800);
        let ok: Result<u64, SimError> = Ok(3);
        assert_eq!(outcome_tag(&ok), "completed");
    }

    #[test]
    fn short_label_strips_parameters() {
        let pb = mesh_routing::prelude::workloads::transpose(8);
        assert_eq!(short_label(&pb), pb.label.split('(').next().unwrap());
    }
}
