//! The experiments: one per theorem/claim of the paper (DESIGN.md §3).
//!
//! Every function builds an [`Experiment`]: table metadata plus a flat list
//! of independent trial cells that the [`crate::runner`] executes across a
//! thread pool. `full = true` extends the parameter grids (longer runs for
//! the record, used when regenerating EXPERIMENTS.md).
//!
//! Cells that draw a seeded workload are registered with
//! [`Experiment::seeded`] and re-run once per requested `--trials`, deriving
//! the trial seed with [`derive_seed`] (trial 0 keeps the historical seed,
//! so the recorded tables stay byte-for-byte reproducible). Deterministic
//! cells (the adversary constructions, fixed workloads) run exactly once.

use crate::cells;
use crate::runner::{derive_seed, Experiment, TrialOutput};
use crate::sweep::{
    outcome_tag, per_n, ratio, routed, section6_router, short_label, stall_cap, steps_or_dash,
};
use crate::table::Table;
use mesh_routing::adversary::dimorder::DimOrderConstruction;
use mesh_routing::adversary::farthest::FarthestFirstConstruction;
use mesh_routing::adversary::general::ConstructionOutcome;
use mesh_routing::prelude::*;
use std::sync::Arc;

/// E1 — Theorem 14: `Ω(n²/k²)` for destination-exchangeable minimal
/// adaptive algorithms, via the §3 construction. For each `(n, k)` the
/// adversary attacks the dimension-order and alternating-adaptive routers;
/// we report the forced bound, its ratio to `n²/k²`, and how many packets
/// remain undelivered at the bound during the replay.
pub fn e1(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e1",
        "Theorem 14 lower bound: constructed permutations vs destination-exchangeable routers",
        "bound/(n²/k²) stays ≈ constant as n grows at fixed k, and does not collapse as k grows: time = Ω(n²/k²); undelivered > 0 certifies Theorem 13 on every row",
        &[
            "n", "k", "cn", "dn", "p", "l", "bound=l*dn", "bound/(n2/k2)",
            "victim", "undeliv@bound", "exchanges", "replay=construction",
        ],
    );
    let mut grid: Vec<(u32, u32)> = vec![(216, 1), (432, 1), (648, 1), (384, 2), (600, 3)];
    if full {
        grid.extend([(864, 1), (1080, 1), (768, 2), (864, 4)]);
    }
    for (n, k) in grid {
        if let Err(err) = GeneralParams::new(n, k) {
            eprintln!("e1: skipping n={n} k={k}: {err}");
            continue;
        }
        for victim in ["dim-order", "alt-adaptive"] {
            e.fixed(format!("n={n} k={k} {victim}"), move |_trial| {
                let params = GeneralParams::new(n, k).unwrap();
                let cons = GeneralConstruction::new(params);
                let topo = Mesh::new(n);
                let outcome = match victim {
                    "dim-order" => cons.run(&topo, mesh_routing::routers::dim_order(k), false),
                    _ => cons.run(&topo, mesh_routing::routers::alt_adaptive(k), false),
                };
                let rep = match victim {
                    "dim-order" => verify_lower_bound(
                        &topo,
                        mesh_routing::routers::dim_order(k),
                        &outcome,
                        None,
                    ),
                    _ => verify_lower_bound(
                        &topo,
                        mesh_routing::routers::alt_adaptive(k),
                        &outcome,
                        None,
                    ),
                };
                let nf = n as f64;
                let kf = k as f64;
                let row = cells!(
                    n,
                    k,
                    params.cn,
                    params.dn,
                    params.p,
                    params.l,
                    params.bound_steps(),
                    ratio(params.bound_steps(), nf * nf / (kf * kf)),
                    victim,
                    rep.undelivered_at_bound,
                    outcome.exchanges,
                    rep.replay_matches_construction
                );
                TrialOutput::with_report(row, rep.replay)
            });
        }
    }
    e
}

/// E2 — Lemmas 1–8 and Lemma 12: run the construction with the invariant
/// checker enabled (every lemma verified after every step) and check the
/// exact replay equivalence.
pub fn e2(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e2",
        "Construction validity: Lemmas 1-8 checked per step; Lemma 12 replay equivalence",
        "all rows PASS: the invariants of §4.1 hold throughout, and replaying the constructed permutation reproduces the construction's exact final configuration",
        &["n", "k", "victim", "steps checked", "lemmas 1-8", "lemma 12", "corollary 9"],
    );
    let mut grid = vec![(216u32, 1u32), (384, 2)];
    if full {
        grid.push((600, 3));
        grid.push((432, 1));
    }
    for (n, k) in grid {
        // The theorem15 victim's four inlink queues hold up to 4k+1 packets
        // per node, which exceeds §4.3's partner-counting budget (the §5
        // "Other Queue Types" remark: recompute constants for a 4k central
        // queue, which needs n ≥ 24(4k+3)²). We demonstrate it empirically
        // on the one cell where the adversary's actual partner consumption
        // stays within supply.
        let victims: &[&str] = if (n, k) == (216, 1) {
            &["dim-order", "alt-adaptive", "theorem15"]
        } else {
            &["dim-order", "alt-adaptive"]
        };
        for &victim in victims {
            e.fixed(format!("n={n} k={k} {victim}"), move |_trial| {
                let params = GeneralParams::new(n, k).unwrap();
                let cons = GeneralConstruction::new(params);
                let topo = Mesh::new(n);
                // `run(.., true)` panics if any lemma fails; reaching the
                // end is the PASS certificate.
                let outcome = match victim {
                    "dim-order" => cons.run(&topo, mesh_routing::routers::dim_order(k), true),
                    "alt-adaptive" => cons.run(&topo, mesh_routing::routers::alt_adaptive(k), true),
                    _ => cons.run(&topo, mesh_routing::routers::theorem15(k), true),
                };
                let rep = match victim {
                    "dim-order" => verify_lower_bound(
                        &topo,
                        mesh_routing::routers::dim_order(k),
                        &outcome,
                        None,
                    ),
                    "alt-adaptive" => verify_lower_bound(
                        &topo,
                        mesh_routing::routers::alt_adaptive(k),
                        &outcome,
                        None,
                    ),
                    _ => verify_lower_bound(
                        &topo,
                        mesh_routing::routers::theorem15(k),
                        &outcome,
                        None,
                    ),
                };
                let row = cells!(
                    n,
                    k,
                    victim,
                    outcome.bound_steps,
                    "PASS",
                    if rep.replay_matches_construction {
                        "PASS"
                    } else {
                        "FAIL"
                    },
                    if rep.undelivered_at_bound > 0 {
                        "PASS"
                    } else {
                        "FAIL"
                    }
                );
                TrialOutput::with_report(row, rep.replay)
            });
        }
    }
    e
}

/// E3 — §5 dimension-order bound `Ω(n²/k)`.
pub fn e3(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e3",
        "§5 lower bound for destination-exchangeable dimension-order routers",
        "bound·k/n² = k/(4(k+2)) — between 1/12 (k=1) and 1/4 (k→∞), constant in n: time = Ω(n²/k); every replay leaves packets undelivered and matches the construction exactly",
        &["n", "k", "cn", "dn", "p", "l", "bound", "bound/(n2/k)", "undeliv@bound", "replay="],
    );
    let mut grid: Vec<(u32, u32)> = vec![(216, 1), (432, 1), (216, 2), (216, 4)];
    if full {
        grid.extend([(648, 1), (432, 2), (432, 4), (432, 8)]);
    }
    for (n, k) in grid {
        e.fixed(format!("n={n} k={k}"), move |_trial| {
            let params = DimOrderParams::new(n, k).unwrap();
            let cons = DimOrderConstruction::new(params);
            let topo = Mesh::new(n);
            let outcome = cons.run(&topo, mesh_routing::routers::dim_order(k));
            let rep =
                verify_lower_bound(&topo, mesh_routing::routers::dim_order(k), &outcome, None);
            let nf = n as f64;
            let row = cells!(
                n,
                k,
                params.cn,
                params.dn,
                params.p,
                params.l,
                params.bound_steps(),
                ratio(params.bound_steps(), nf * nf / k as f64),
                rep.undelivered_at_bound,
                rep.replay_matches_construction
            );
            TrialOutput::with_report(row, rep.replay)
        });
    }
    e
}

/// E4 — §5 farthest-first bound `Ω(n²/k)` (an algorithm *outside* the
/// destination-exchangeable class).
pub fn e4(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e4",
        "§5 lower bound for farthest-first dimension order (full-destination algorithm)",
        "bound/(n²/k) ≈ constant and undelivered > 0 on every row: the bound certifies empirically for all k. Replay equality (the §5 commutation sketch) holds exactly at k = 1; at k ≥ 2 it depends on tie-breaking details the paper leaves open (see DESIGN.md) — the certified bound is unaffected",
        &["n", "k", "cn", "dn", "p", "l", "bound", "bound/(n2/k)", "undeliv@bound", "replay="],
    );
    let mut grid: Vec<(u32, u32)> = vec![(216, 1), (432, 1), (216, 2)];
    if full {
        grid.extend([(648, 1), (432, 2), (432, 4)]);
    }
    for (n, k) in grid {
        e.fixed(format!("n={n} k={k}"), move |_trial| {
            let params = DimOrderParams::farthest_first(n, k).unwrap();
            let cons = FarthestFirstConstruction::new(params);
            let topo = Mesh::new(n);
            let outcome = cons.run(&topo, FarthestFirst::new(k));
            let rep = verify_lower_bound(&topo, FarthestFirst::new(k), &outcome, None);
            let nf = n as f64;
            let row = cells!(
                n,
                k,
                params.cn,
                params.dn,
                params.p,
                params.l,
                params.bound_steps(),
                ratio(params.bound_steps(), nf * nf / k as f64),
                rep.undelivered_at_bound,
                rep.replay_matches_construction
            );
            TrialOutput::with_report(row, rep.replay)
        });
    }
    e
}

/// E5 — Theorem 15: the bounded-queue dimension-order router routes *every*
/// tested instance in `O(n²/k + n)` steps — including its own hard instance
/// from E3 — and the measured times actually track `n²/k`.
pub fn e5(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e5",
        "Theorem 15 upper bound: O(n²/k + n) with four inlink queues of size k",
        "steps/(n²/k + n) bounded by a small constant on every workload; time falls ≈ linearly as k grows (matching the §5 lower bound's k-dependence); max queue ≤ k always",
        &["n", "k", "workload", "steps", "steps/(n2/k+n)", "max queue"],
    );
    let mut grid = vec![(216u32, 1u32), (216, 2), (216, 4), (216, 8)];
    if full {
        grid.extend([(432, 1), (432, 2), (432, 4), (432, 8), (432, 16)]);
    }
    let route_cell = |n: u32, k: u32, pb: RoutingProblem| -> TrialOutput {
        let denom = (n as u64 * n as u64) / k as u64 + n as u64;
        let out = mesh_routing::route_with_cap(Algorithm::Theorem15 { k }, &pb, 32 * denom);
        let label = short_label(&pb);
        assert!(out.completed, "theorem15 must complete on {label}");
        let row = cells!(
            n,
            k,
            label,
            out.steps,
            ratio(out.steps, denom as f64),
            out.max_queue
        );
        routed(row, out)
    };
    for (n, k) in grid {
        e.fixed(format!("n={n} k={k} transpose"), move |_| {
            route_cell(n, k, workloads::transpose(n))
        });
        e.seeded(format!("n={n} k={k} random-permutation"), move |trial| {
            route_cell(
                n,
                k,
                workloads::random_permutation(n, derive_seed(1, trial)),
            )
        });
        e.fixed(format!("n={n} k={k} column-funnel"), move |_| {
            route_cell(n, k, workloads::column_funnel(n))
        });
        // Hard instance built against this very router (with the §5 "Other
        // Queue Types" adjustment: four inlink queues of k behave like a
        // central queue of 4k+1 for the adversary's counting).
        if DimOrderParams::new(n, 4 * k + 1).is_ok() {
            e.fixed(format!("n={n} k={k} hard-instance"), move |_| {
                let params = DimOrderParams::new(n, 4 * k + 1).unwrap();
                let cons = DimOrderConstruction::new(params);
                let topo = Mesh::new(n);
                let hard = cons
                    .run(&topo, mesh_routing::routers::theorem15(k))
                    .constructed;
                route_cell(n, k, hard)
            });
        }
    }
    e
}

/// E6 — Theorem 34: the §6 algorithm routes any permutation in `O(n)` time
/// with `O(1)` queues.
pub fn e6(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e6",
        "Theorem 34: the §6 minimal adaptive algorithm — O(n) time, O(1) queues",
        "scheduled/n ≤ 972 (564 improved) for every n and workload — constant, not growing: time = O(n); max node load ≤ 834 always; moves = total work (minimal paths)",
        &[
            "n", "workload", "variant", "scheduled", "sched/n", "quiescent",
            "quiet/n", "max load", "moves=work",
        ],
    );
    let mut sizes = vec![27u32, 81, 243];
    if full {
        sizes.push(729);
    }
    let s6_cell = |n: u32, pb: RoutingProblem, variant: &'static str| -> TrialOutput {
        let router = section6_router(variant != "q=408");
        let r = router.route(&pb);
        TrialOutput::new(cells!(
            n,
            short_label(&pb),
            variant,
            r.scheduled_steps,
            format!("{:.1}", r.steps_per_n()),
            r.quiescent_steps,
            per_n(r.quiescent_steps, n),
            r.max_node_load,
            r.total_moves == pb.total_work()
        ))
    };
    for n in sizes {
        for variant in ["q=408", "q=102 (improved)"] {
            e.seeded(
                format!("n={n} random-permutation {variant}"),
                move |trial| {
                    s6_cell(
                        n,
                        workloads::random_permutation(n, derive_seed(11, trial)),
                        variant,
                    )
                },
            );
        }
        for variant in ["q=408", "q=102 (improved)"] {
            e.fixed(format!("n={n} transpose {variant}"), move |_| {
                s6_cell(n, workloads::transpose(n), variant)
            });
        }
    }
    e
}

/// E7 — §1.1 context results for the classic greedy router: `2n − 2` steps
/// with `Θ(n)` queues in the worst case, but `2n + O(log n)` steps with
/// queues ≤ 4 on random destinations.
pub fn e7(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e7",
        "§1.1 greedy dimension order (farthest-first, unbounded queues)",
        "steps ≤ 2n−2 on every permutation; max queue grows ≈ n/4 on the column funnel (the Θ(n) queue requirement) but stays ≤ ~4 on random destinations (Leighton's average case)",
        &["n", "workload", "steps", "2n-2", "max queue", "queue/n"],
    );
    let mut sizes = vec![32u32, 64, 128];
    if full {
        sizes.extend([256, 512]);
    }
    let greedy_cell = |n: u32, pb: RoutingProblem| -> TrialOutput {
        let topo = Mesh::new(n);
        let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
        sim.run(100 * n as u64).expect("greedy completes");
        let r = sim.report();
        let row = cells!(
            n,
            short_label(&pb),
            r.steps,
            2 * n - 2,
            r.max_queue,
            ratio(r.max_queue as u64, n as f64)
        );
        TrialOutput::with_report(row, r)
    };
    for n in sizes {
        e.seeded(format!("n={n} random-permutation"), move |trial| {
            greedy_cell(n, workloads::random_permutation(n, derive_seed(5, trial)))
        });
        e.fixed(format!("n={n} transpose"), move |_| {
            greedy_cell(n, workloads::transpose(n))
        });
        e.fixed(format!("n={n} column-funnel"), move |_| {
            greedy_cell(n, workloads::column_funnel(n))
        });
        e.seeded(format!("n={n} random-destinations"), move |trial| {
            greedy_cell(n, workloads::random_destinations(n, derive_seed(5, trial)))
        });
    }
    e
}

/// E8 — §5 h-h extension: `Ω(h³n²/(k+h)²)`.
pub fn e8(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e8",
        "§5 h-h lower bound (h packets per node; static placement needs h ≤ k)",
        "bound grows with h at fixed (n, k) — more traffic per node forces more time even relative to the added load; undelivered > 0 certifies each instance",
        &["n", "k", "h", "p", "l", "bound", "bound/(h3n2/(k+h)2)", "undeliv@bound", "replay="],
    );
    let mut grid = vec![(864u32, 4u32, 1u32), (600, 4, 2)];
    if full {
        grid.extend([(600, 4, 3), (600, 4, 4), (900, 6, 2)]);
    }
    for (n, k, h) in grid {
        if let Err(err) = GeneralParams::hh(n, k, h) {
            eprintln!("e8: skipping n={n} k={k} h={h}: {err}");
            continue;
        }
        e.fixed(format!("n={n} k={k} h={h}"), move |_trial| {
            let params = GeneralParams::hh(n, k, h).unwrap();
            let cons = GeneralConstruction::new(params);
            let topo = Mesh::new(n);
            let outcome = cons.run(&topo, mesh_routing::routers::dim_order(k), false);
            let rep =
                verify_lower_bound(&topo, mesh_routing::routers::dim_order(k), &outcome, None);
            let nf = n as f64;
            let denom = (h as f64).powi(3) * nf * nf / ((k + h) as f64).powi(2);
            let row = cells!(
                n,
                k,
                h,
                params.p,
                params.l,
                params.bound_steps(),
                ratio(params.bound_steps(), denom),
                rep.undelivered_at_bound,
                rep.replay_matches_construction
            );
            TrialOutput::with_report(row, rep.replay)
        });
    }
    e
}

/// E9 — §5 torus extension: the construction in an (m × m) corner of a
/// side-2m torus.
pub fn e9(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e9",
        "§5 torus extension: Ω(n²/k²) on the torus via an (n/2)×(n/2) submesh",
        "same bound values as the mesh at submesh side m (torus wraparound never helps: minimal paths of the construction stay inside the submesh); undelivered > 0 on every row",
        &["torus n", "submesh m", "k", "bound", "undeliv@bound", "replay="],
    );
    let mut grid = vec![(216u32, 1u32)];
    if full {
        grid.extend([(432, 1), (384, 2)]);
    }
    for (m, k) in grid {
        e.fixed(format!("m={m} k={k}"), move |_trial| {
            let n = 2 * m;
            let params = GeneralParams::new(m, k).unwrap();
            let cons = GeneralConstruction::embedded(params, n);
            let topo = Torus::new(n);
            let outcome = cons.run(&topo, mesh_routing::routers::dim_order(k), false);
            let rep =
                verify_lower_bound(&topo, mesh_routing::routers::dim_order(k), &outcome, None);
            let row = cells!(
                n,
                m,
                k,
                params.bound_steps(),
                rep.undelivered_at_bound,
                rep.replay_matches_construction
            );
            TrialOutput::with_report(row, rep.replay)
        });
    }
    e
}

/// E10 — the paper's closing trade-off (§7): all algorithms × workloads.
pub fn e10(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e10",
        "§7 trade-off matrix: steps (and max queue) per algorithm × workload",
        "greedy is ~2n fast with big queues; theorem15 bounds queues but pays on adversarial loads; §6 is O(n) with bounded queues; small-k dim-order/adaptive can stall (reported as '-') — exactly the impossibility the paper proves",
        &["workload", "algorithm", "steps", "steps/n", "max queue", "done"],
    );
    let n = if full { 243 } else { 81 };
    let cap = stall_cap(n);
    let algos = [
        Algorithm::GreedyUnbounded,
        Algorithm::DimOrder { k: 4 },
        Algorithm::AltAdaptive { k: 4 },
        Algorithm::Theorem15 { k: 4 },
        Algorithm::Section6,
        Algorithm::Section6Improved,
    ];
    let matrix_cell = move |pb: RoutingProblem, algo: Algorithm| -> TrialOutput {
        let out = mesh_routing::route_with_cap(algo, &pb, cap);
        let row = cells!(
            short_label(&pb),
            out.algorithm,
            steps_or_dash(out.completed, out.steps),
            if out.completed {
                per_n(out.steps, n)
            } else {
                format!("stalled {}/{}", out.delivered, out.total_packets)
            },
            out.max_queue,
            out.completed
        );
        routed(row, out)
    };
    // Workload builders: (name, seeded, builder by trial).
    type PbBuilder = Box<dyn Fn(u64) -> RoutingProblem + Send + Sync>;
    let mut workload_list: Vec<(String, bool, std::sync::Arc<PbBuilder>)> = Vec::new();
    let arc = |f: PbBuilder| std::sync::Arc::new(f);
    workload_list.push((
        "random-permutation".into(),
        true,
        arc(Box::new(move |t| {
            workloads::random_permutation(n, derive_seed(7, t))
        })),
    ));
    workload_list.push((
        "transpose".into(),
        false,
        arc(Box::new(move |_| workloads::transpose(n))),
    ));
    workload_list.push((
        "bit-complement".into(),
        false,
        arc(Box::new(move |_| workloads::bit_complement(n))),
    ));
    workload_list.push((
        "tornado".into(),
        false,
        arc(Box::new(move |_| workloads::tornado(n))),
    ));
    workload_list.push((
        "column-funnel".into(),
        false,
        arc(Box::new(move |_| workloads::column_funnel(n))),
    ));
    workload_list.push((
        "hotspot".into(),
        false,
        arc(Box::new(move |_| workloads::hotspot(n, 9, 7))),
    ));
    for (wname, seeded, builder) in workload_list {
        for algo in algos {
            let builder = builder.clone();
            let label = format!("{wname} {}", algo.name());
            let run = move |trial: u64| matrix_cell(builder(trial), algo);
            if seeded {
                e.seeded(label, run);
            } else {
                e.fixed(label, run);
            }
        }
    }
    e
}

/// A1 — ablation: FIFO vs farthest-first outqueue arbitration at equal k.
pub fn a1(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "a1",
        "Ablation: outqueue policy (FIFO dim-order vs farthest-first) at equal queue size",
        "farthest-first should match or beat FIFO on funneling workloads (it is the policy behind the 2n−2 result) — but §5 shows neither escapes Ω(n²/k)",
        &["n", "k", "workload", "fifo steps", "farthest steps", "fifo done", "farthest done"],
    );
    let n = if full { 128 } else { 64 };
    let pair_cell = move |k: u32, pb: RoutingProblem| -> TrialOutput {
        let cap = stall_cap(n);
        let f = mesh_routing::route_with_cap(Algorithm::DimOrder { k }, &pb, cap);
        let ff = mesh_routing::route_with_cap(Algorithm::FarthestFirst { k }, &pb, cap);
        TrialOutput::new(cells!(
            n,
            k,
            short_label(&pb),
            steps_or_dash(f.completed, f.steps),
            steps_or_dash(ff.completed, ff.steps),
            f.completed,
            ff.completed
        ))
    };
    for k in [2u32, 4, 8, 16] {
        e.fixed(format!("k={k} transpose"), move |_| {
            pair_cell(k, workloads::transpose(n))
        });
        e.fixed(format!("k={k} column-funnel"), move |_| {
            pair_cell(k, workloads::column_funnel(n))
        });
        e.seeded(format!("k={k} random-permutation"), move |trial| {
            pair_cell(k, workloads::random_permutation(n, derive_seed(3, trial)))
        });
    }
    e
}

/// A2 — ablation: queue architecture at equal total buffer (central 4k vs
/// four inlink queues of k).
pub fn a2(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "a2",
        "Ablation: central queue of 4k vs four inlink queues of k (equal buffer budget)",
        "per-inlink structure (theorem15) always completes thanks to its progress guarantees; the central-queue router with the same budget can stall on funneling traffic — structure matters as much as capacity (§5 'Other Queue Types')",
        &["n", "k", "workload", "central-4k steps", "inlink-k steps", "central done", "inlink done"],
    );
    let n = if full { 128 } else { 64 };
    let pair_cell = move |k: u32, pb: RoutingProblem| -> TrialOutput {
        let cap = stall_cap(n);
        let c = mesh_routing::route_with_cap(Algorithm::DimOrder { k: 4 * k }, &pb, cap);
        let i = mesh_routing::route_with_cap(Algorithm::Theorem15 { k }, &pb, cap);
        TrialOutput::new(cells!(
            n,
            k,
            short_label(&pb),
            steps_or_dash(c.completed, c.steps),
            steps_or_dash(i.completed, i.steps),
            c.completed,
            i.completed
        ))
    };
    for k in [1u32, 2, 4] {
        e.fixed(format!("k={k} transpose"), move |_| {
            pair_cell(k, workloads::transpose(n))
        });
        e.fixed(format!("k={k} column-funnel"), move |_| {
            pair_cell(k, workloads::column_funnel(n))
        });
        e.seeded(format!("k={k} random-permutation"), move |trial| {
            pair_cell(k, workloads::random_permutation(n, derive_seed(9, trial)))
        });
    }
    e
}

/// A3 — ablation: the §6.4 improved `q = 102` vs the base `q = 408`.
pub fn a3(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "a3",
        "Ablation: §6 node bound q = 408 vs improved q = 102 for iterations j ≥ 1",
        "the improved constants cut the scheduled bound by ≈ 35-45% (toward 564n) with identical delivery, identical quiescent time, and the same measured queue loads — the q refinement only tightens the worst-case schedule",
        &["n", "workload", "q", "scheduled", "sched/n", "quiescent", "max load"],
    );
    let mut sizes = vec![81u32, 243];
    if full {
        sizes.push(729);
    }
    let s6_cell = |n: u32, pb: RoutingProblem, q: &'static str| -> TrialOutput {
        let router = section6_router(q != "408");
        let r = router.route(&pb);
        TrialOutput::new(cells!(
            n,
            short_label(&pb),
            q,
            r.scheduled_steps,
            format!("{:.1}", r.steps_per_n()),
            r.quiescent_steps,
            r.max_node_load
        ))
    };
    for n in sizes {
        for q in ["408", "102"] {
            e.seeded(format!("n={n} random-permutation q={q}"), move |trial| {
                s6_cell(
                    n,
                    workloads::random_permutation(n, derive_seed(13, trial)),
                    q,
                )
            });
        }
        for q in ["408", "102"] {
            e.fixed(format!("n={n} transpose q={q}"), move |_| {
                s6_cell(n, workloads::transpose(n), q)
            });
        }
    }
    e
}

/// E11 — §5's nonminimal escape: hot-potato routing is destination-
/// exchangeable but nonminimal, so Theorem 14 does not apply to it. Two
/// demonstrations: (a) the hard instance built against dimension order is
/// *easy* for hot potato; (b) aiming the adversary at hot potato itself
/// breaks the construction's invariants (packets deflect out of the boxes),
/// so the adversary cannot even run to completion — exactly why the paper's
/// bound needs minimality.
pub fn e11(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e11",
        "§5 nonminimal escape: hot-potato vs the minimal-routing adversary",
        "hot potato solves dim-order's hard instance in ≈ O(n) steps (vs the Ω(n²/k) it forces on dimension order); the adversary aimed at hot potato fails (invariant breakdown) — minimality cannot be dropped from Theorem 14",
        &["n", "k", "scenario", "result"],
    );
    let mut grid = vec![(216u32, 1u32)];
    if full {
        grid.push((432, 1));
    }
    for (n, k) in grid {
        // (a) dim-order's hard instance, fed to hot potato.
        e.fixed(
            format!("n={n} k={k} hot-potato-on-hard-instance"),
            move |_| {
                let topo = Mesh::new(n);
                let params = DimOrderParams::new(n, k).unwrap();
                let cons = DimOrderConstruction::new(params);
                let outcome = cons.run(&topo, mesh_routing::routers::dim_order(k));
                let hp = mesh_routing::route_with_cap(
                    Algorithm::HotPotato,
                    &outcome.constructed,
                    16 * (n as u64) * (n as u64),
                );
                let row = cells!(
                    n,
                    k,
                    "hot-potato on dim-order's hard instance",
                    if hp.completed {
                        format!(
                            "{} steps ({}n) — vs the >= {} it forces on dim-order",
                            hp.steps,
                            per_n(hp.steps, n),
                            outcome.bound_steps
                        )
                    } else {
                        format!("stalled at {}/{}", hp.delivered, hp.total_packets)
                    }
                );
                routed(row, hp)
            },
        );
        // (b) the general adversary aimed at hot potato itself.
        e.fixed(format!("n={n} k={k} adversary-vs-hot-potato"), move |_| {
            let topo = Mesh::new(n);
            let gparams = GeneralParams::new(n, k).unwrap();
            let gcons = GeneralConstruction::new(gparams);
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                gcons.run(&topo, mesh_routing::routers::hot_potato(n), false)
            }));
            TrialOutput::new(cells!(
                n,
                k,
                "general adversary vs hot-potato",
                match res {
                    Ok(o) => format!(
                        "ran; {} undelivered at bound {} (bound not meaningful for nonminimal)",
                        o.undelivered_at_bound, o.bound_steps
                    ),
                    Err(_) => "construction breaks down (packets deflect out of the boxes; \
                               Lemma 3/4 partner supply exhausted)"
                        .to_string(),
                }
            ))
        });
    }
    e
}

/// E12 — §5's nonminimal-extensions sweep: the δ-bounded deflection class.
/// The unmodified §3 adversary is aimed at a `BoundedDeflect(δ)` victim for
/// growing δ. At δ = 0 (minimal) the bound certifies exactly as in E1; for
/// δ ≥ 1 the paper's sketch requires scaling p by (δ+1) and widening the
/// protected bands — the unmodified adversary progressively loses its grip
/// (fewer undelivered packets at the bound, or outright invariant
/// breakdown), quantifying how deviation erodes the lower bound toward the
/// predicted Ω(n²/(δ+1)³k²).
pub fn e12(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e12",
        "§5 nonminimal extensions: the unmodified adversary vs δ-bounded deflection",
        "δ = 0 certifies like E1 (undelivered > 0, replay exact). Measured finding: small-δ deflection inside a conservative queueing discipline cannot escape the constructed congestion either (deflection still needs queue space — only hot potato's always-forward discipline does, see E11), so the unmodified bound keeps certifying; the paper's (δ+1)-scaled constants are needed only for algorithms that exploit the full δ corridor",
        &["n", "k", "delta", "result", "undeliv@bound", "replay="],
    );
    let (n, k) = if full { (384u32, 2u32) } else { (216, 1) };
    let deltas: &[u8] = if full { &[0, 1, 2, 3] } else { &[0, 1, 2] };
    for &delta in deltas {
        e.fixed(format!("n={n} k={k} delta={delta}"), move |_| {
            let params = GeneralParams::new(n, k).unwrap();
            let cons = GeneralConstruction::new(params);
            let topo = Mesh::new(n);
            let make = || {
                mesh_routing::engine::Dx::new(mesh_routing::routers::BoundedDeflect::new(
                    n, k, delta,
                ))
            };
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cons.run(&topo, make(), false)
            }));
            match res {
                Ok(outcome) => {
                    let rep = verify_lower_bound(&topo, make(), &outcome, None);
                    let row = cells!(
                        n,
                        k,
                        delta,
                        "construction ran",
                        rep.undelivered_at_bound,
                        rep.replay_matches_construction
                    );
                    TrialOutput::with_report(row, rep.replay)
                }
                Err(_) => TrialOutput::new(cells!(
                    n,
                    k,
                    delta,
                    "adversary breakdown (partner supply exhausted)",
                    "-",
                    "-"
                )),
            }
        });
    }
    e
}

/// E13 — the §5 dynamic setting: Bernoulli injection at rate λ per node per
/// step with uniform destinations. Sweeps λ to locate each router's
/// saturation knee (latency blow-up); the paper's lower bound applies to
/// dynamic problems too, as long as injection timing is
/// destination-independent (ours is).
pub fn e13(full: bool) -> Experiment {
    let mut e = Experiment::new(
        "e13",
        "Dynamic Bernoulli traffic: latency vs injection rate (saturation sweep)",
        "all routers drain at low λ with latency ≈ flight time (~2n/3 hops mean); as λ approaches each router's capacity the p99 latency and drain time blow up — bounded-queue minimal routers saturate first, hot potato degrades by deflection detours instead of queueing",
        &[
            "n", "rate", "router", "drain steps", "mean lat", "p99 lat", "max queue", "done",
        ],
    );
    let n = if full { 48 } else { 32 };
    let window = 40 * n as u64;
    // The uniform-traffic capacity of the mesh bisection is λ ≈ 4/n
    // (λ·n²/2 packets cross 2n bisection links per step); straddle it.
    let rates = [0.02f64, 0.06, 0.10, 0.14];
    for rate in rates {
        for router in ["theorem15(k=2)", "hot-potato", "greedy"] {
            e.seeded(format!("rate={rate} {router}"), move |trial| {
                let pb = workloads::dynamic_bernoulli(n, rate, window / 4, derive_seed(99, trial));
                if pb.is_empty() {
                    return TrialOutput::new(cells!(n, rate, router, 0, "-", "-", 0, true));
                }
                let topo = Mesh::new(n);
                macro_rules! sim_with {
                    ($r:expr) => {{
                        let mut sim = Sim::new(&topo, $r, &pb);
                        let res = sim.run(window * 4);
                        let lat = sim.latency_distribution();
                        let rep = sim.report();
                        let row = cells!(
                            n,
                            rate,
                            router,
                            rep.steps,
                            format!("{:.1}", lat.mean),
                            lat.p99,
                            rep.max_queue,
                            res.is_ok()
                        );
                        TrialOutput::with_report(row, rep)
                    }};
                }
                match router {
                    "theorem15(k=2)" => sim_with!(Dx::new(Theorem15::new(2))),
                    "hot-potato" => {
                        sim_with!(Dx::new(mesh_routing::routers::HotPotato::new(n)))
                    }
                    _ => sim_with!(FarthestFirst::unbounded(n)),
                }
            });
        }
    }
    e
}

/// PERF — engine throughput rows for the tile-sharded executor. Every cell
/// is a fixed (unseeded) workload routed under a fixed step cap, so the
/// deterministic document is a pure function of the experiment id — the
/// tile-thread count changes only *how fast* the rows are produced (see the
/// timing sidecar), never their contents. The quick tier ends at n = 256
/// (the row CI's perf-ratchet job gates on); `--full` adds the n = 512 and
/// 1024 scaling rows quoted in EXPERIMENTS.md.
///
/// Small-n cells finish in single-digit milliseconds cold, so a single
/// run's wall-clock is mostly scheduler noise: each cell repeats its
/// (identical, deterministic) run `reps = max(256/n, 1)` times and the
/// timing sidecar measures the whole warm loop. Throughput is therefore
/// `reps x steps / wall_ms`; at n >= 256 `reps` is 1 and the old formula
/// still holds (the ratchet job's n = 256 row is unaffected).
pub fn perf(full: bool, tile_threads: usize) -> Experiment {
    let mut e = Experiment::new(
        "perf",
        "Engine throughput: fixed routing workloads under tile-sharded execution",
        "rows are byte-identical for every --tile-threads value (parallelism is an execution strategy, not a semantics change); wall-clock per cell lives in the timing sidecar, where large-n rows speed up with threads; small-n cells loop reps times so their ksteps/s is stable enough to ratchet",
        &[
            "n",
            "router",
            "workload",
            "reps",
            "steps",
            "delivered",
            "moves",
            "max queue",
            "done",
        ],
    );
    let mut sizes = vec![16u32, 64, 256];
    if full {
        sizes.extend([512, 1024]);
    }
    let route_cell = move |n: u32, router: &'static str| -> TrialOutput {
        let reps = (256 / n).max(1);
        let topo = Mesh::new(n);
        let pb = workloads::random_permutation(n, 2024);
        let config = SimConfig {
            tile_threads,
            ..SimConfig::default()
        };
        macro_rules! perf_with {
            ($r:expr) => {{
                let mut last = None;
                for _ in 0..reps {
                    let mut sim = Sim::with_config(&topo, $r, &pb, config);
                    let res = sim.run(16 * n as u64);
                    let rep = sim.report();
                    last = Some((res.is_ok(), rep));
                }
                let (ok, rep) = last.expect("reps >= 1");
                let row = cells!(
                    n,
                    router,
                    "random-permutation",
                    reps,
                    rep.steps,
                    format!("{}/{}", rep.delivered, rep.total_packets),
                    rep.total_moves,
                    rep.max_queue,
                    ok
                );
                TrialOutput::with_report(row, rep)
            }};
        }
        match router {
            "dim-order(k=4)" => perf_with!(Dx::new(DimOrder::new(4))),
            "hot-potato(k=1)" => perf_with!(Dx::new(mesh_routing::routers::HotPotato::new(n))),
            _ => perf_with!(Dx::new(Theorem15::new(2))),
        }
    };
    for n in sizes {
        for router in ["dim-order(k=4)", "theorem15(k=2)", "hot-potato(k=1)"] {
            e.fixed(format!("n={n} {router}"), move |_| route_cell(n, router));
        }
    }
    e
}

/// CHAOS — the robustness soak. Seeded random fault plans (transient cable
/// cuts, node stalls, queue-slot degradations — see `mesh_faults`) at
/// increasing density are run against [`FaultAware`]-wrapped routers, with
/// the raw (unwrapped) dimension-order router alongside for contrast, under
/// the engine's livelock watchdog. Reported per cell: the watchdog verdict
/// (`completed`, or `deadlock`/`livelock`/`step-cap` — never a panic), the
/// delivered fraction, and the stretch (link traversals per unit of L1
/// distance, over delivered packets). Every cell is fully determined by the
/// trial seed, so the table is byte-identical across `--threads` settings.
pub fn chaos(full: bool, tile_threads: usize) -> Experiment {
    let mut e = Experiment::new(
        "chaos",
        "Chaos soak: fault density × router × workload under the livelock watchdog",
        "density-0 rows match the fault-free engine exactly (stretch 1.000, frac 1.000); at positive density the fault-aware wrappers keep delivering everything that remains routable, outages inflate steps rather than crashing the run, and any permanent wedge surfaces as a deadlock/livelock verdict with diagnostics, never a panic or a silent step-cap",
        &[
            "n", "density", "router", "workload", "outcome", "delivered", "frac", "steps",
            "stretch",
        ],
    );
    let n: u32 = if full { 24 } else { 16 };
    let densities: &[f64] = if full {
        &[0.0, 0.05, 0.15, 0.30]
    } else {
        &[0.0, 0.05, 0.15]
    };
    // Faults start within [0, horizon) and last at most horizon/2; the
    // watchdog measures its window from the last fault transition, so a
    // verdict always means a genuine wedge, not an outage still in progress.
    let horizon = 8 * n as u64;
    let k = 4;
    for &density in densities {
        for router in [
            "dim-order/raw",
            "dim-order/fault-aware",
            "west-first/fault-aware",
            "theorem15(k=2)/fault-aware",
            "hot-potato/fault-aware",
        ] {
            for workload in ["partial-perm", "transpose"] {
                e.seeded(
                    format!("density={density} {router} {workload}"),
                    move |trial| {
                        let topo = Mesh::new(n);
                        let pb = match workload {
                            "partial-perm" => workloads::random_partial_permutation(
                                n,
                                0.5,
                                derive_seed(2024, trial),
                            ),
                            _ => workloads::transpose(n),
                        };
                        let faults = Arc::new(
                            FaultPlan::random(n, density, horizon, derive_seed(4045, trial))
                                .compile(),
                        );
                        let config = SimConfig {
                            watchdog: Some(8 * n as u64),
                            tile_threads,
                            ..SimConfig::default()
                        };
                        macro_rules! soak {
                            ($r:expr) => {{
                                let mut sim = Sim::with_faults(
                                    &topo,
                                    $r,
                                    &pb,
                                    config,
                                    faults.as_ref().clone(),
                                );
                                let res = sim.run(50_000);
                                let outcome = outcome_tag(&res);
                                // Stretch over delivered packets only: hops
                                // actually walked per unit of L1 distance.
                                let (mut hops, mut l1) = (0u64, 0u64);
                                for p in &pb.packets {
                                    if sim.delivered_step(p.id).is_some() {
                                        hops += sim.packet_hops()[p.id.index()] as u64;
                                        l1 += p.src.manhattan(p.dst) as u64;
                                    }
                                }
                                let stretch = if l1 == 0 {
                                    "-".to_string()
                                } else {
                                    format!("{:.3}", hops as f64 / l1 as f64)
                                };
                                let rep = sim.report();
                                let row = cells!(
                                    n,
                                    density,
                                    router,
                                    workload,
                                    outcome,
                                    format!("{}/{}", sim.delivered(), pb.len()),
                                    ratio(sim.delivered() as u64, pb.len() as f64),
                                    rep.steps,
                                    stretch
                                );
                                TrialOutput::with_report(row, rep)
                            }};
                        }
                        match router {
                            "dim-order/raw" => soak!(Dx::new(DimOrder::new(k))),
                            "dim-order/fault-aware" => {
                                soak!(FaultAware::new(
                                    Dx::new(DimOrder::new(k)),
                                    Arc::clone(&faults)
                                ))
                            }
                            "west-first/fault-aware" => {
                                soak!(FaultAware::new(
                                    Dx::new(WestFirst::new(k)),
                                    Arc::clone(&faults)
                                ))
                            }
                            "theorem15(k=2)/fault-aware" => soak!(FaultAware::new(
                                Dx::new(Theorem15::new(2)),
                                Arc::clone(&faults)
                            )),
                            // Nonminimal: the mask cannot steer deflections,
                            // so this leans on the wrapper's outlink
                            // post-filter and capacity guard; stretch > 1
                            // measures the deflection detours.
                            _ => soak!(FaultAware::new(
                                Dx::new(mesh_routing::routers::HotPotato::new(n)),
                                Arc::clone(&faults)
                            )),
                        }
                    },
                );
            }
        }
    }
    e
}

/// RELIABLE — end-to-end reliable delivery over transient outages. Seeded
/// plans of lossy-link windows plus short cable cuts
/// ([`FaultPlan::random_outages`]) destroy packets in flight; raw dynamic
/// injection rows lose them for good (the watchdog flags the incompletable
/// run), while the [`Transport`](mesh_routing::reliable::Transport) rows —
/// same problem, same plan, same fault-aware Theorem 15 router — recover
/// every payload exactly once via ACKs and deterministic retransmission,
/// sweeping the backoff policy. Every cell is a pure function of the trial
/// seed, so the table is byte-identical across `--threads` settings.
pub fn reliable(full: bool, tile_threads: usize) -> Experiment {
    use mesh_routing::reliable::{BackoffPolicy, Transport};

    let mut e = Experiment::new(
        "reliable",
        "Reliable transport: raw injection vs ACK+retransmission under lossy-link outages",
        "density-0 rows complete with zero losses and zero retransmits in both layers; at positive density the raw layer strands exactly its lost packets (outcome deadlock/livelock, exactly-once '-'), while every reliable row reports exactly-once yes with retx > 0 covering the losses — exponential backoff needs no more retransmissions than the fixed timeout at equal delivery, and goodput degrades gracefully with density",
        &[
            "n", "density", "layer", "backoff", "outcome", "delivered", "exactly-once", "retx",
            "dup-drops", "lost", "steps", "goodput", "mean lat",
        ],
    );
    let n: u32 = if full { 24 } else { 16 };
    let densities: &[f64] = if full {
        &[0.0, 0.06, 0.12, 0.20]
    } else {
        &[0.0, 0.06, 0.12]
    };
    // Outages start within [0, horizon) and are all transient; the injection
    // window ends well before the horizon so recovery happens under fire.
    let horizon = 8 * n as u64;
    let policies: &[(&str, BackoffPolicy)] = &[
        ("fixed(64)", BackoffPolicy::fixed(64)),
        ("expo(64..512,j16)", BackoffPolicy::exponential(64, 512, 16)),
    ];
    for &density in densities {
        for layer in ["raw", "reliable"] {
            let policy_rows: &[(&str, Option<BackoffPolicy>)] = if layer == "raw" {
                &[("-", None)]
            } else {
                &[
                    ("fixed(64)", Some(policies[0].1)),
                    ("expo(64..512,j16)", Some(policies[1].1)),
                ]
            };
            for &(backoff, policy) in policy_rows {
                e.seeded(
                    format!("density={density} {layer} {backoff}"),
                    move |trial| {
                        let topo = Mesh::new(n);
                        let pb = workloads::dynamic_bernoulli(
                            n,
                            0.02,
                            4 * n as u64,
                            derive_seed(2024, trial),
                        );
                        let faults = Arc::new(
                            FaultPlan::random_outages(n, density, horizon, derive_seed(40, trial))
                                .compile(),
                        );
                        let config = SimConfig {
                            // Must exceed the longest lawful retransmission
                            // gap (cap + jitter), or quiet timer waits would
                            // read as starvation.
                            watchdog: Some(1024.max(8 * n as u64)),
                            tile_threads,
                            ..SimConfig::default()
                        };
                        let mut sim = Sim::with_faults(
                            &topo,
                            FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
                            &pb,
                            config,
                            faults.as_ref().clone(),
                        );
                        let (outcome, exactly_once, retx, dup_drops, goodput, mean_lat) =
                            match policy {
                                None => {
                                    let res = sim.run(200_000);
                                    let outcome = outcome_tag(&res);
                                    let lat = sim.latency_distribution();
                                    let steps = sim.steps().max(1);
                                    (
                                        outcome,
                                        "-".to_string(),
                                        "-".to_string(),
                                        "-".to_string(),
                                        format!("{:.4}", sim.delivered() as f64 / steps as f64),
                                        format!("{:.1}", lat.mean),
                                    )
                                }
                                Some(policy) => {
                                    let mut tp = Transport::new(&pb, policy, derive_seed(7, trial));
                                    let res = sim.run_with_protocol(200_000, &mut tp);
                                    let outcome = outcome_tag(&res);
                                    let rep = tp.report(sim.steps());
                                    (
                                        outcome,
                                        if rep.exactly_once { "yes" } else { "NO" }.to_string(),
                                        rep.retransmits.to_string(),
                                        rep.duplicate_deliveries.to_string(),
                                        format!("{:.4}", rep.goodput),
                                        format!("{:.1}", rep.latency.mean),
                                    )
                                }
                            };
                        let rep = sim.report();
                        let row = cells!(
                            n,
                            density,
                            layer,
                            backoff,
                            outcome,
                            format!("{}/{}", sim.delivered(), sim.num_packets()),
                            exactly_once,
                            retx,
                            dup_drops,
                            rep.lost,
                            rep.steps,
                            goodput,
                            mean_lat
                        );
                        TrialOutput::with_report(row, rep)
                    },
                );
            }
        }
    }
    e
}

/// CRASHREC — crash-recovery soak over the checkpoint/restore subsystem
/// (DESIGN.md §11). Each trial runs a faulty workload to completion while
/// writing cadenced checkpoints, then simulates a crash at every recorded
/// checkpoint: the snapshot is round-tripped through its JSON wire format,
/// restored into a fresh engine (and, on the reliable layer, a fresh
/// [`Transport`](mesh_routing::reliable::Transport) rehydrated from the
/// protocol slot), and run to completion. A row passes only if **every**
/// resumed run reproduces the uninterrupted run byte-for-byte — same
/// outcome, same rendered report, same per-packet trajectories.
pub fn crashrec(full: bool, tile_threads: usize) -> Experiment {
    use mesh_routing::engine::{MemorySink, Snapshot, SnapshotHook};
    use mesh_routing::reliable::{BackoffPolicy, Transport};

    let mut e = Experiment::new(
        "crashrec",
        "Crash recovery soak: kill at every checkpoint, resume, byte-compare vs the uninterrupted run",
        "every row reports identical=yes with resumes == ckpts: a run killed at any checkpoint and resumed from the snapshot's JSON wire form replays the remaining steps bit-identically — same outcome, report, and packet trajectories — on both the raw and the ACK+retransmission layer, at every cadence and fault density",
        &[
            "n", "density", "layer", "cadence", "outcome", "steps", "ckpts", "resumes",
            "identical",
        ],
    );
    let n: u32 = if full { 16 } else { 12 };
    let densities: &[f64] = if full {
        &[0.0, 0.08, 0.16]
    } else {
        &[0.0, 0.12]
    };
    let cadences: &[u64] = if full { &[4, 16, 64] } else { &[8, 32] };
    let horizon = 8 * n as u64;
    for &density in densities {
        for layer in ["raw", "reliable"] {
            for &cadence in cadences {
                e.seeded(
                    format!("density={density} {layer} ck={cadence}"),
                    move |trial| {
                        let topo = Mesh::new(n);
                        let pb = workloads::dynamic_bernoulli(
                            n,
                            0.02,
                            4 * n as u64,
                            derive_seed(3111, trial),
                        );
                        let faults = Arc::new(
                            FaultPlan::random_outages(n, density, horizon, derive_seed(41, trial))
                                .compile(),
                        );
                        let config = SimConfig {
                            watchdog: Some(1024.max(8 * n as u64)),
                            tile_threads,
                            checkpoint_every: Some(cadence),
                            ..SimConfig::default()
                        };
                        let mk_sim = |cfg| {
                            Sim::with_faults(
                                &topo,
                                FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
                                &pb,
                                cfg,
                                faults.as_ref().clone(),
                            )
                        };
                        let resume_config = SimConfig {
                            checkpoint_every: None,
                            ..config
                        };
                        let policy = BackoffPolicy::exponential(64, 512, 16);
                        let mut sim = mk_sim(config);
                        let mut sink = MemorySink::default();
                        let mut resumes = 0u64;
                        let mut identical = true;
                        if layer == "raw" {
                            let res = sim.run_checkpointed(200_000, &mut sink);
                            let want = serde_json::to_string(&sim.report()).unwrap();
                            for ckpt in &sink.checkpoints {
                                let snap = Snapshot::from_json(&ckpt.to_json())
                                    .expect("engine-written snapshot must round-trip");
                                let mut sim_b = Sim::restore(
                                    &topo,
                                    FaultAware::new(
                                        Dx::new(Theorem15::new(2)),
                                        Arc::clone(&faults),
                                    ),
                                    resume_config,
                                    Some(faults.as_ref().clone()),
                                    &snap,
                                )
                                .expect("engine-written snapshot must restore");
                                let res_b = sim_b.run(200_000);
                                resumes += 1;
                                identical &= res_b == res
                                    && serde_json::to_string(&sim_b.report()).unwrap() == want
                                    && sim_b.packet_snapshot() == sim.packet_snapshot();
                            }
                            let row = cells!(
                                n,
                                density,
                                layer,
                                cadence,
                                outcome_tag(&res),
                                sim.steps(),
                                sink.checkpoints.len(),
                                resumes,
                                if identical { "yes" } else { "NO" }
                            );
                            TrialOutput::with_report(row, sim.report())
                        } else {
                            let mut tp = Transport::new(&pb, policy, derive_seed(7, trial));
                            let res =
                                sim.run_with_protocol_checkpointed(200_000, &mut tp, &mut sink);
                            let want = serde_json::to_string(&sim.report()).unwrap();
                            let want_tp = serde_json::to_string(&tp.report(sim.steps())).unwrap();
                            for ckpt in &sink.checkpoints {
                                let snap = Snapshot::from_json(&ckpt.to_json())
                                    .expect("engine-written snapshot must round-trip");
                                let mut sim_b = Sim::restore(
                                    &topo,
                                    FaultAware::new(
                                        Dx::new(Theorem15::new(2)),
                                        Arc::clone(&faults),
                                    ),
                                    resume_config,
                                    Some(faults.as_ref().clone()),
                                    &snap,
                                )
                                .expect("engine-written snapshot must restore");
                                let mut tp_b = Transport::new(&pb, policy, derive_seed(7, trial));
                                tp_b.restore_state(snap.protocol.as_ref().expect("protocol slot"))
                                    .expect("transport state must restore");
                                let res_b = sim_b.run_with_protocol(200_000, &mut tp_b);
                                resumes += 1;
                                identical &= res_b == res
                                    && serde_json::to_string(&sim_b.report()).unwrap() == want
                                    && serde_json::to_string(&tp_b.report(sim_b.steps())).unwrap()
                                        == want_tp
                                    && sim_b.packet_snapshot() == sim.packet_snapshot();
                            }
                            let row = cells!(
                                n,
                                density,
                                layer,
                                cadence,
                                outcome_tag(&res),
                                sim.steps(),
                                sink.checkpoints.len(),
                                resumes,
                                if identical { "yes" } else { "NO" }
                            );
                            TrialOutput::with_report(row, sim.report())
                        }
                    },
                );
            }
        }
    }
    e
}

/// The admission policy of an `overload` table row.
fn overload_policy(policy: &str, n: u32) -> AdmissionPolicy {
    match policy {
        "reject-new" => AdmissionPolicy::RejectNew,
        "drop-oldest" => AdmissionPolicy::DropOldestDeferred { max_deferred: 8 },
        "deadline" => AdmissionPolicy::DeadlineExpiry { ttl: 4 * n as u64 },
        other => unreachable!("unknown admission policy {other}"),
    }
}

/// One open-system steady run for an `overload` router tag. The
/// `+faults` variant routes around a seeded random fault plan with the
/// fault-aware wrapper (fixed plan seed: the fault landscape is part of
/// the cell's identity, only the workload varies per trial).
fn overload_run(
    router: &'static str,
    n: u32,
    lambda: f64,
    schedule: SteadyConfig,
    admission: AdmissionPolicy,
    tile_threads: usize,
    seed: u64,
) -> (Result<SteadyReport, SimError>, SimReport) {
    let topo = Mesh::new(n);
    let pb = workloads::open_bernoulli(n, lambda, schedule.horizon(), seed);
    let config = SimConfig {
        admission,
        watchdog: Some((4 * schedule.window).max(8 * n as u64)),
        tile_threads,
        ..SimConfig::default()
    };
    macro_rules! drive {
        ($sim:expr) => {{
            let mut sim = $sim;
            let res = sim.run_steady(schedule);
            (res, sim.report())
        }};
    }
    match router {
        "dim-order" => drive!(Sim::with_config(
            &topo,
            Dx::new(DimOrder::new(4)),
            &pb,
            config
        )),
        "theorem15" => drive!(Sim::with_config(
            &topo,
            Dx::new(Theorem15::new(2)),
            &pb,
            config
        )),
        "theorem15+faults" => {
            let faults =
                Arc::new(FaultPlan::random(n, 0.05, 4 * n as u64, derive_seed(8997, 0)).compile());
            drive!(Sim::with_faults(
                &topo,
                FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
                &pb,
                config,
                faults.as_ref().clone(),
            ))
        }
        "hot-potato" => drive!(Sim::with_config(
            &topo,
            Dx::new(mesh_routing::routers::HotPotato::new(n)),
            &pb,
            config
        )),
        other => unreachable!("unknown overload router {other}"),
    }
}

/// Whether `router` sustains offered load `lambda`: the run stays live
/// under `DeferIndefinitely` and delivers ≥ 90% of what the measurement
/// windows offered.
fn overload_sustained(
    router: &'static str,
    n: u32,
    lambda: f64,
    schedule: SteadyConfig,
    tile_threads: usize,
    seed: u64,
) -> bool {
    let (res, _) = overload_run(
        router,
        n,
        lambda,
        schedule,
        AdmissionPolicy::DeferIndefinitely,
        tile_threads,
        seed,
    );
    match res {
        Ok(rep) => {
            let offered: u64 = rep.frames.iter().map(|f| f.offered).sum();
            let delivered: u64 = rep.frames.iter().map(|f| f.delivered).sum();
            offered == 0 || delivered as f64 >= 0.9 * offered as f64
        }
        Err(_) => false,
    }
}

/// Binary search for the saturation point λ*: the largest offered load
/// (packets per node per step) the router sustains. Random traffic on an
/// n-mesh is bisection-limited near 4/n per node, so `[0, 1]` brackets
/// every router here; 7 halvings resolve λ* to under 1% of the bracket.
fn saturation_lambda(
    router: &'static str,
    n: u32,
    schedule: SteadyConfig,
    tile_threads: usize,
    seed: u64,
) -> f64 {
    if overload_sustained(router, n, 1.0, schedule, tile_threads, seed) {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        if overload_sustained(router, n, mid, schedule, tile_threads, seed) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo.max(1.0 / 128.0)
}

/// OVERLOAD — open-system saturation and graceful degradation (the
/// robustness layer over the paper's closed-system model). Per router the
/// cell binary-searches the saturation point λ* (sustained =
/// delivered/offered ≥ 0.9 under `DeferIndefinitely`), then measures a
/// throughput–latency point at `x·λ*` under a shedding admission policy;
/// `vs-l*` is the goodput ratio against the same policy's run at λ*
/// itself, so degradation past saturation is read directly off the row.
pub fn overload(full: bool, tile_threads: usize) -> Experiment {
    let mut e = Experiment::new(
        "overload",
        "Open-system overload: saturation point lambda* per router, throughput-latency curves, graceful degradation under admission control",
        "below lambda* goodput tracks offered load with low p99; past lambda* the response splits by queue architecture — per-inlink routers (theorem15, hot-potato) plateau under every shedding policy (vs-l* ~>= 0.95 at x=2.0) because injection has its own queue, while the shared-central-queue dim-order router buffer-gridlocks under edge-only shedding (reject-new / drop-oldest collapse to vs-l* < 0.01: in-network wait cycles survive any edge decision) and only deadline's in-network TTL expiry keeps it progressing (goodput an order of magnitude above the edge-only policies, p99 capped by the TTL); under faults the same expiry is what holds theorem15's plateau (vs-l* ~1.1 at x=2.0 vs ~0.15 edge-only)",
        &[
            "router", "policy", "l*", "x", "lambda", "outcome", "offered", "delivered", "shed",
            "expired", "goodput", "vs-l*", "p50", "p99", "p999",
        ],
    );
    let n: u32 = if full { 16 } else { 12 };
    let schedule = if full {
        SteadyConfig {
            warmup: 128,
            window: 64,
            windows: 4,
        }
    } else {
        SteadyConfig {
            warmup: 64,
            window: 48,
            windows: 3,
        }
    };
    let routers: &[&'static str] = if full {
        &["dim-order", "theorem15", "theorem15+faults", "hot-potato"]
    } else {
        &["dim-order", "theorem15"]
    };
    let policies: &[&'static str] = if full {
        &["reject-new", "drop-oldest", "deadline"]
    } else {
        &["reject-new", "deadline"]
    };
    let multiples: &[f64] = if full {
        &[0.5, 0.9, 1.0, 1.5, 2.0]
    } else {
        &[0.5, 1.0, 2.0]
    };
    for &router in routers {
        for &policy in policies {
            for &x in multiples {
                e.seeded(format!("{router} {policy} x={x}"), move |trial| {
                    let seed = derive_seed(8001, trial);
                    let lstar = saturation_lambda(router, n, schedule, tile_threads, seed);
                    let admission = overload_policy(policy, n);
                    let lambda = x * lstar;
                    let (res, rep) =
                        overload_run(router, n, lambda, schedule, admission, tile_threads, seed);
                    let base_goodput = if x == 1.0 {
                        res.as_ref().ok().map(SteadyReport::goodput)
                    } else {
                        overload_run(router, n, lstar, schedule, admission, tile_threads, seed)
                            .0
                            .ok()
                            .map(|r| r.goodput())
                    };
                    let (offered, delivered, shed, expired, goodput, vs, p50, p99, p999) =
                        match &res {
                            Ok(r) => {
                                let sum = |f: fn(&WindowFrame) -> u64| -> u64 {
                                    r.frames.iter().map(f).sum()
                                };
                                (
                                    sum(|f| f.offered).to_string(),
                                    sum(|f| f.delivered).to_string(),
                                    sum(|f| f.shed).to_string(),
                                    sum(|f| f.expired).to_string(),
                                    format!("{:.3}", r.goodput()),
                                    match base_goodput {
                                        Some(b) if b > 0.0 => {
                                            format!("{:.3}", r.goodput() / b)
                                        }
                                        _ => "-".to_string(),
                                    },
                                    r.latency.p50.to_string(),
                                    r.latency.p99.to_string(),
                                    r.latency.p999.to_string(),
                                )
                            }
                            Err(_) => (
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                            ),
                        };
                    let row = cells!(
                        router,
                        policy,
                        format!("{lstar:.4}"),
                        x,
                        format!("{lambda:.4}"),
                        outcome_tag(&res),
                        offered,
                        delivered,
                        shed,
                        expired,
                        goodput,
                        vs,
                        p50,
                        p99,
                        p999
                    );
                    TrialOutput::with_report(row, rep)
                });
            }
        }
    }
    e
}

/// All experiment ids in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "a1", "a2",
    "a3", "perf", "chaos", "reliable", "crashrec", "overload",
];

/// Builds the experiment (its cells) by id, without running anything.
pub fn build(id: &str, full: bool) -> Option<Experiment> {
    build_with(id, full, 1)
}

/// Builds the experiment with an explicit tile-thread count for the
/// simulation-heavy experiments (`perf`, `chaos`, `reliable`, `crashrec`,
/// `overload`). The
/// deterministic `BENCH_<id>.json` contents are the same for every value —
/// that is the tiled engine's contract, re-checked by the determinism tests
/// and the CI byte-compares.
pub fn build_with(id: &str, full: bool, tile_threads: usize) -> Option<Experiment> {
    Some(match id {
        "e1" => e1(full),
        "e2" => e2(full),
        "e3" => e3(full),
        "e4" => e4(full),
        "e5" => e5(full),
        "e6" => e6(full),
        "e7" => e7(full),
        "e8" => e8(full),
        "e9" => e9(full),
        "e10" => e10(full),
        "e11" => e11(full),
        "e12" => e12(full),
        "e13" => e13(full),
        "a1" => a1(full),
        "a2" => a2(full),
        "a3" => a3(full),
        "perf" => perf(full, tile_threads),
        "chaos" => chaos(full, tile_threads),
        "reliable" => reliable(full, tile_threads),
        "crashrec" => crashrec(full, tile_threads),
        "overload" => overload(full, tile_threads),
        _ => return None,
    })
}

/// Builds and runs one experiment serially (one thread, one trial) — the
/// configuration the historical recorded tables were produced under.
pub fn run(id: &str, full: bool) -> Option<Table> {
    let exp = build(id, full)?;
    Some(crate::runner::run_experiment(exp, &crate::runner::RunnerConfig::serial()).table)
}

// Suppress the unused-import warning when ConstructionOutcome is only used
// in signatures of future extensions.
#[allow(unused)]
fn _type_uses(_: &ConstructionOutcome) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_rejects_unknown_ids() {
        assert!(run("e99", false).is_none());
        assert!(run("", false).is_none());
        assert!(build("e99", false).is_none());
    }

    #[test]
    fn all_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for id in ALL {
            assert!(seen.insert(id), "duplicate experiment id {id}");
            assert!(
                id.starts_with('e')
                    || id.starts_with('a')
                    || *id == "perf"
                    || *id == "chaos"
                    || *id == "reliable"
                    || *id == "crashrec"
                    || *id == "overload"
            );
        }
        assert_eq!(ALL.len(), 21);
    }

    #[test]
    fn every_experiment_builds_cells() {
        for id in ALL {
            let exp = build(id, false).unwrap();
            assert_eq!(&exp.id, id);
            assert!(!exp.cells.is_empty(), "{id} built no cells");
            assert!(!exp.headers.is_empty(), "{id} has no headers");
        }
    }
}
