//! Experiment runner: regenerates the per-theorem tables of the
//! reproduction (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! ```sh
//! experiments [--full] [--csv DIR] [--jobs N] [--threads N] [--trials N]
//!             [--tile-threads N] [--json-out [DIR]] [all | e1 e2 … a3]
//! ```
//!
//! `--jobs` parallelises *across* experiments; `--threads` sizes the
//! per-experiment trial pool (see `mesh_bench::runner`); `--tile-threads`
//! runs each simulation's step pipeline tile-sharded across N worker
//! threads (perf/chaos/reliable). `BENCH_<id>.json` is byte-identical for
//! any `--threads` *and* any `--tile-threads`; wall-clock goes to the
//! `BENCH_<id>.timing.json` sidecar.

use mesh_bench::experiments;
use mesh_bench::runner::{run_experiment, ExperimentRun, RunnerConfig};
use mesh_bench::Table;
use parking_lot::Mutex;
use std::path::PathBuf;

struct JobResult {
    table: Table,
    /// Present on success when `--json-out` was requested.
    run: Option<ExperimentRun>,
}

fn is_flag_or_id(arg: &str) -> bool {
    arg.starts_with("--") || arg == "all" || experiments::ALL.contains(&arg)
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut full = false;
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut threads: usize = 1;
    let mut tile_threads: usize = 1;
    let mut trials: u64 = 1;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => full = true,
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage_error("--csv needs a directory")),
                ))
            }
            "--json-out" => {
                // Directory operand is optional: `--json-out e1` means
                // "emit into the current directory".
                json_dir = Some(match args.peek() {
                    Some(next) if !is_flag_or_id(next) => PathBuf::from(args.next().unwrap()),
                    _ => PathBuf::from("."),
                });
            }
            "--jobs" => {
                jobs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage_error("--jobs needs a number")),
                )
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| usage_error("--threads needs a number >= 1"))
            }
            "--tile-threads" => {
                tile_threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| usage_error("--tile-threads needs a number >= 1"))
            }
            "--trials" => {
                trials = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| usage_error("--trials needs a number >= 1"))
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other => {
                if experiments::ALL.contains(&other) {
                    ids.push(other.to_string());
                } else {
                    eprintln!(
                        "unknown experiment '{other}'; valid: {:?}",
                        experiments::ALL
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [--full] [--csv DIR] [--jobs N] [--threads N] \
             [--trials N] [--tile-threads N] [--json-out [DIR]] [all | e1 … a3]"
        );
        std::process::exit(2);
    }
    ids.dedup();

    // With an explicit trial pool the pool is the parallelism; otherwise
    // parallelise across experiments as before.
    let jobs = jobs.unwrap_or_else(|| {
        if threads > 1 {
            1
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        }
    });
    let config = RunnerConfig { threads, trials };
    let want_json = json_dir.is_some();

    // Run experiments in parallel (each deterministic regardless of its own
    // pool size), print in requested order.
    let results: Mutex<Vec<Option<JobResult>>> = Mutex::new((0..ids.len()).map(|_| None).collect());
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..jobs.max(1).min(ids.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= ids.len() {
                    break;
                }
                let id = &ids[i];
                let t0 = std::time::Instant::now();
                let outcome = std::panic::catch_unwind(|| {
                    let exp =
                        experiments::build_with(id, full, tile_threads).expect("validated id");
                    run_experiment(exp, &config)
                });
                match outcome {
                    Ok(run) => {
                        eprintln!("[{id} done in {:.1?}]", t0.elapsed());
                        results.lock()[i] = Some(JobResult {
                            table: run.table.clone(),
                            run: want_json.then_some(run),
                        });
                    }
                    Err(_) => {
                        eprintln!("[{id} FAILED after {:.1?}]", t0.elapsed());
                        let mut t = Table::new(
                            id,
                            "EXPERIMENT FAILED",
                            "a panic occurred; see stderr",
                            &["status"],
                        );
                        t.row(vec!["failed".to_string()]);
                        results.lock()[i] = Some(JobResult {
                            table: t,
                            run: None,
                        });
                    }
                }
            });
        }
    })
    .expect("experiment thread panicked");

    for result in results.into_inner().into_iter().flatten() {
        println!("{}", result.table.markdown());
        if let Some(dir) = &csv_dir {
            result.table.write_csv(dir).expect("csv write");
        }
        if let (Some(dir), Some(run)) = (&json_dir, result.run) {
            std::fs::create_dir_all(dir).expect("create --json-out directory");
            let id = &run.doc.experiment;
            let doc = serde_json::to_string_pretty(&run.doc).expect("serialize BenchDoc");
            std::fs::write(dir.join(format!("BENCH_{id}.json")), doc + "\n")
                .expect("write BENCH json");
            let timing = serde_json::to_string_pretty(&run.timing).expect("serialize TimingDoc");
            std::fs::write(dir.join(format!("BENCH_{id}.timing.json")), timing + "\n")
                .expect("write timing json");
            eprintln!(
                "[{id} json -> {}]",
                dir.join(format!("BENCH_{id}.json")).display()
            );
        }
    }
}
