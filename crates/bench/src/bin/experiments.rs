//! Experiment runner: regenerates the per-theorem tables of the
//! reproduction (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! ```sh
//! experiments [--full] [--csv DIR] [--jobs N] [all | e1 e2 … a3]
//! ```

use mesh_bench::experiments;
use mesh_bench::Table;
use parking_lot::Mutex;
use std::path::PathBuf;

fn main() {
    let mut full = false;
    let mut csv_dir: Option<PathBuf> = None;
    let mut jobs = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => full = true,
            "--csv" => {
                csv_dir = Some(PathBuf::from(args.next().expect("--csv needs a directory")))
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs needs a number")
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other => {
                if experiments::ALL.contains(&other) {
                    ids.push(other.to_string());
                } else {
                    eprintln!("unknown experiment '{other}'; valid: {:?}", experiments::ALL);
                    std::process::exit(2);
                }
            }
        }
    }
    if ids.is_empty() {
        eprintln!("usage: experiments [--full] [--csv DIR] [--jobs N] [all | e1 … a3]");
        std::process::exit(2);
    }
    ids.dedup();

    // Run experiments in parallel (each is single-threaded and deterministic),
    // print in requested order.
    let results: Mutex<Vec<Option<Table>>> = Mutex::new(vec![None; ids.len()]);
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|s| {
        for _ in 0..jobs.min(ids.len()) {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= ids.len() {
                    break;
                }
                let id = &ids[i];
                let t0 = std::time::Instant::now();
                let outcome = std::panic::catch_unwind(|| {
                    experiments::run(id, full).expect("validated id")
                });
                match outcome {
                    Ok(table) => {
                        eprintln!("[{id} done in {:.1?}]", t0.elapsed());
                        results.lock()[i] = Some(table);
                    }
                    Err(_) => {
                        eprintln!("[{id} FAILED after {:.1?}]", t0.elapsed());
                        let mut t = mesh_bench::Table::new(
                            id,
                            "EXPERIMENT FAILED",
                            "a panic occurred; see stderr",
                            &["status"],
                        );
                        t.row(vec!["failed".to_string()]);
                        results.lock()[i] = Some(t);
                    }
                }
            });
        }
    })
    .expect("experiment thread panicked");

    for table in results.into_inner().into_iter().flatten() {
        println!("{}", table.markdown());
        if let Some(dir) = &csv_dir {
            table.write_csv(dir).expect("csv write");
        }
    }
}
