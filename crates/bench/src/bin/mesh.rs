//! `mesh` — command-line front end to the reproduction.
//!
//! ```text
//! mesh workload  <kind> --n N [--seed S] [--h H] [--load F] [-o FILE]
//! mesh route     <algorithm> (--problem FILE | --workload KIND --n N [--seed S])
//!                [--k K] [--cap STEPS] [--json] [--latency] [--heatmap]
//! mesh construct <general|dimorder|farthest> --n N --k K
//!                [--victim ALGO] [--h H] [-o FILE] [--check]
//! ```
//!
//! Workload kinds: `random`, `partial`, `transpose`, `bit-reversal`,
//! `rotation`, `hotspot`, `funnel`, `random-dst`, `hh`.
//! Algorithms: `dim-order`, `dim-order-yx`, `alt-adaptive`, `theorem15`,
//! `farthest-first`, `greedy`, `hot-potato`, `section6`, `section6-improved`.

use mesh_routing::adversary::dimorder::DimOrderConstruction;
use mesh_routing::adversary::farthest::FarthestFirstConstruction;
use mesh_routing::prelude::*;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!("{}", USAGE);
    exit(2);
}

const USAGE: &str = "usage:
  mesh workload  <kind> --n N [--seed S] [--h H] [--load F] [-o FILE]
  mesh route     <algorithm> (--problem FILE | --workload KIND --n N | --resume-from CKPT) \\
                 [--k K] [--seed S] [--cap STEPS] [--json] [--latency] [--heatmap] \\
                 [--checkpoint-every N [--checkpoint-dir DIR] [--halt-at S]]
  mesh route     <algorithm> --lambda F --n N [--seed S] [--k K] [--json] \\
                 [--admission defer|reject-new|drop-oldest|deadline] \\
                 [--deadline TTL] [--max-deferred M] \\
                 [--warmup S] [--window S] [--windows W] [--watchdog S] [--tile-threads T] \\
                 [--checkpoint-every N [--checkpoint-dir DIR] [--halt-at S] | --resume-from CKPT]
  mesh construct <general|dimorder|farthest> --n N --k K [--victim ALGO] [--h H] [-o FILE] [--check]

workloads:  random partial transpose bit-reversal rotation hotspot funnel random-dst hh
algorithms: dim-order dim-order-yx alt-adaptive theorem15 farthest-first greedy hot-potato
            west-first bounded-deflect section6 section6-improved

`--lambda` runs the open-system steady-state harness: a Bernoulli source
offers F packets per node per step for warmup + windows*window steps, the
admission policy decides what happens to packets the edge cannot take, and
each measurement window reports goodput and latency percentiles.

Steady checkpoints record their environment (lambda, schedule, admission),
so `mesh route <algorithm> --resume-from CKPT` alone resumes a steady soak;
re-passed steady flags are cross-checked against the snapshot and refused
on disagreement.";

struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let val = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), val);
        } else if a == "-o" {
            flags.insert("out".into(), it.next().unwrap_or_else(|| usage()));
        } else {
            positional.push(a);
        }
    }
    Args { positional, flags }
}

impl Args {
    fn u32_flag(&self, name: &str) -> Option<u32> {
        self.flags.get(name).and_then(|v| v.parse().ok())
    }
    fn u64_flag(&self, name: &str) -> Option<u64> {
        self.flags.get(name).and_then(|v| v.parse().ok())
    }
    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn make_workload(kind: &str, args: &Args) -> RoutingProblem {
    let n = args.u32_flag("n").unwrap_or_else(|| {
        eprintln!("--n is required");
        usage()
    });
    let seed = args.u64_flag("seed").unwrap_or(1);
    match kind {
        "random" => workloads::random_permutation(n, seed),
        "partial" => {
            let load: f64 = args
                .flags
                .get("load")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.5);
            workloads::random_partial_permutation(n, load, seed)
        }
        "transpose" => workloads::transpose(n),
        "bit-reversal" => workloads::bit_reversal(n),
        "rotation" => workloads::rotation(n, n / 2, n / 3),
        "hotspot" => workloads::hotspot(n, (n / 6).max(2), seed),
        "funnel" => workloads::column_funnel(n),
        "random-dst" => workloads::random_destinations(n, seed),
        "hh" => workloads::hh_random(n, args.u32_flag("h").unwrap_or(2), seed),
        other => {
            eprintln!("unknown workload '{other}'");
            usage()
        }
    }
}

fn make_algorithm(name: &str, k: u32) -> Algorithm {
    match name {
        "dim-order" => Algorithm::DimOrder { k },
        "dim-order-yx" => Algorithm::DimOrderYx { k },
        "alt-adaptive" => Algorithm::AltAdaptive { k },
        "theorem15" => Algorithm::Theorem15 { k },
        "farthest-first" => Algorithm::FarthestFirst { k },
        "greedy" => Algorithm::GreedyUnbounded,
        "hot-potato" => Algorithm::HotPotato,
        "west-first" => Algorithm::WestFirst { k },
        "bounded-deflect" => Algorithm::BoundedDeflect { k, delta: 2 },
        "section6" => Algorithm::Section6,
        "section6-improved" => Algorithm::Section6Improved,
        other => {
            eprintln!("unknown algorithm '{other}'");
            usage()
        }
    }
}

fn load_problem(path: &str) -> RoutingProblem {
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    serde_json::from_str(&data).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn save_json<T: serde::Serialize>(value: &T, path: &str) {
    let data = serde_json::to_string(value).expect("serialize");
    std::fs::write(path, data).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    });
    eprintln!("wrote {path}");
}

fn cmd_workload(args: &Args) {
    let kind = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let pb = make_workload(kind, args);
    eprintln!(
        "{}: {} packets, class {:?}, total work {}",
        pb.label,
        pb.len(),
        pb.classify(),
        pb.total_work()
    );
    match args.flags.get("out") {
        Some(path) => save_json(&pb, path),
        None => println!("{}", serde_json::to_string(&pb).unwrap()),
    }
}

fn print_route(args: &Args, out: &RouteOutcome) {
    if args.has("json") {
        println!("{}", serde_json::to_string_pretty(out).unwrap());
    } else {
        println!(
            "{} on {}: steps={}{} max_queue={} moves={} delivered={}/{}",
            out.algorithm,
            out.workload,
            out.steps,
            if out.completed { "" } else { " (STALLED)" },
            out.max_queue,
            out.total_moves,
            out.delivered,
            out.total_packets
        );
    }
}

/// The admission policy from `--admission` (with `--deadline TTL` /
/// `--max-deferred M` refinements). A bare `--deadline` or
/// `--max-deferred` implies its policy.
fn parse_admission(args: &Args) -> AdmissionPolicy {
    match args.flags.get("admission").map(String::as_str) {
        None | Some("defer") => {
            if let Some(ttl) = args.u64_flag("deadline") {
                AdmissionPolicy::DeadlineExpiry { ttl }
            } else if let Some(m) = args.u32_flag("max-deferred") {
                AdmissionPolicy::DropOldestDeferred { max_deferred: m }
            } else {
                AdmissionPolicy::DeferIndefinitely
            }
        }
        Some("reject-new") => AdmissionPolicy::RejectNew,
        Some("drop-oldest") => AdmissionPolicy::DropOldestDeferred {
            max_deferred: args.u32_flag("max-deferred").unwrap_or(16),
        },
        Some("deadline") => AdmissionPolicy::DeadlineExpiry {
            ttl: args.u64_flag("deadline").unwrap_or(64),
        },
        Some(other) => {
            eprintln!("unknown admission policy '{other}'");
            usage()
        }
    }
}

fn print_steady(args: &Args, out: &mesh_routing::SteadyOutcome) {
    if args.has("json") {
        println!("{}", serde_json::to_string_pretty(out).unwrap());
        return;
    }
    println!(
        "{} at lambda={} on {}: goodput={:.3}/step p50={} p99={} p999={}",
        out.algorithm,
        out.lambda,
        out.workload,
        out.steady.goodput(),
        out.steady.latency.p50,
        out.steady.latency.p99,
        out.steady.latency.p999,
    );
    for f in &out.steady.frames {
        println!(
            "  window {} [{}..{}]: offered={} delivered={} shed={} expired={} lost={} goodput={:.3} p99={} (samples={})",
            f.index,
            f.start_step,
            f.end_step,
            f.offered,
            f.delivered,
            f.shed,
            f.expired,
            f.lost,
            f.goodput,
            f.latency.p99,
            f.samples,
        );
    }
    let r = &out.report;
    println!(
        "  totals: offered={} delivered={} shed={} expired={} lost={} in_flight={}",
        r.total_packets,
        r.delivered,
        r.shed,
        r.expired,
        r.lost,
        r.total_packets - r.delivered - r.shed - r.expired - r.lost,
    );
}

/// `mesh route <algo> --lambda F`: the open-system steady-state harness.
fn cmd_steady(args: &Args, algo: Algorithm) {
    if let Some(path) = args.flags.get("resume-from") {
        let snap = load_snapshot(path);
        cmd_steady_resume(args, algo, path, snap);
        return;
    }
    let lambda: f64 = args
        .flags
        .get("lambda")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("--lambda must be a number (packets per node per step)");
            usage()
        });
    let schedule = SteadyConfig {
        warmup: args.u64_flag("warmup").unwrap_or(128),
        window: args.u64_flag("window").unwrap_or(64),
        windows: args.u32_flag("windows").unwrap_or(4),
    };
    let config = steady_sim_config(args, parse_admission(args), schedule.window);
    let dir = checkpoint_dir(args);
    let halt_at = args.u64_flag("halt-at");

    let n = args.u32_flag("n").unwrap_or_else(|| {
        eprintln!("--n is required with --lambda");
        usage()
    });
    let seed = args.u64_flag("seed").unwrap_or(1);
    let pb = mesh_routing::traffic::workloads::open_bernoulli(n, lambda, schedule.horizon(), seed);
    let result = if config.checkpoint_every.is_some() {
        mesh_routing::steady_route_checkpointed(
            algo,
            &pb,
            lambda,
            schedule,
            config,
            std::path::Path::new(dir),
            halt_at,
        )
    } else {
        mesh_routing::steady_route(algo, &pb, lambda, schedule, config).map(|o| (Some(o), None))
    };
    report_steady(args, result);
}

/// Resume of a steady checkpoint: the schedule, offered-load label, and
/// admission policy come from the snapshot's own environment block, so
/// `--resume-from` alone suffices. Any steady flag the user re-passes
/// anyway is cross-checked against the recorded environment; a
/// disagreement is refused up front instead of silently diverging.
fn cmd_steady_resume(
    args: &Args,
    algo: Algorithm,
    path: &str,
    snap: mesh_routing::engine::Snapshot,
) {
    let Some(env) = snap.steady else {
        eprintln!(
            "snapshot {path} records no steady-state environment (a closed-system run, or a \
             checkpoint older than format v2); re-run with the original steady flags or resume \
             it as a plain route"
        );
        exit(1);
    };
    let schedule = env.config;
    let mut clashes = Vec::new();
    if let Some(l) = args.flags.get("lambda") {
        if l.parse::<f64>().ok() != Some(env.lambda) {
            clashes.push(format!("lambda {l} (snapshot: {})", env.lambda));
        }
    }
    for (flag, recorded) in [
        ("warmup", schedule.warmup),
        ("window", schedule.window),
        ("windows", schedule.windows as u64),
    ] {
        if let Some(v) = args.u64_flag(flag) {
            if v != recorded {
                clashes.push(format!("{flag} {v} (snapshot: {recorded})"));
            }
        }
    }
    if !clashes.is_empty() {
        eprintln!(
            "steady flags disagree with the environment recorded in {path}: {}",
            clashes.join(", ")
        );
        exit(1);
    }
    // The admission policy defaults to the snapshot's; an explicitly
    // re-passed policy goes through as-is, and a mismatch is rejected by
    // the restore with a typed error.
    let admission = if args.has("admission") || args.has("deadline") || args.has("max-deferred") {
        parse_admission(args)
    } else {
        snap.admission
    };
    let config = steady_sim_config(args, admission, schedule.window);
    let dir = checkpoint_dir(args);
    let halt_at = args.u64_flag("halt-at");
    eprintln!("resuming from {path} at step {}", snap.step);
    let result =
        mesh_routing::resume_steady_route(algo, &snap, config, std::path::Path::new(dir), halt_at);
    report_steady(args, result);
}

/// The engine config of a steady run (fresh or resumed), from flags.
fn steady_sim_config(args: &Args, admission: AdmissionPolicy, window: u64) -> SimConfig {
    SimConfig {
        admission,
        watchdog: Some(args.u64_flag("watchdog").unwrap_or((2 * window).max(256))),
        tile_threads: args.u32_flag("tile-threads").unwrap_or(1) as usize,
        checkpoint_every: args.u64_flag("checkpoint-every"),
        ..SimConfig::default()
    }
}

fn checkpoint_dir(args: &Args) -> &str {
    args.flags
        .get("checkpoint-dir")
        .map(String::as_str)
        .unwrap_or("checkpoints")
}

fn load_snapshot(path: &str) -> mesh_routing::engine::Snapshot {
    mesh_routing::engine::Snapshot::read_from(std::path::Path::new(path)).unwrap_or_else(|e| {
        eprintln!("cannot load snapshot {path}: {e}");
        exit(1);
    })
}

fn report_steady(
    args: &Args,
    result: Result<
        (
            Option<mesh_routing::SteadyOutcome>,
            Option<std::path::PathBuf>,
        ),
        String,
    >,
) {
    match result {
        Ok((Some(out), last)) => {
            if let Some(p) = last {
                eprintln!("last checkpoint: {}", p.display());
            }
            print_steady(args, &out);
        }
        Ok((None, last)) => match last {
            Some(p) => eprintln!("halted mid-soak; last checkpoint: {}", p.display()),
            None => eprintln!("halted before the first checkpoint cadence point"),
        },
        Err(e) => {
            eprintln!("steady run failed: {e}");
            exit(1);
        }
    }
}

fn cmd_route(args: &Args) {
    let algo_name = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let k = args.u32_flag("k").unwrap_or(4);
    let algo = make_algorithm(algo_name, k);

    // Open-system steady-state harness: --lambda switches the run shape
    // entirely (continuous injection, windowed measurement, admission
    // control at the edge).
    if args.has("lambda") {
        cmd_steady(args, algo);
        return;
    }

    // Crash recovery: restore a checkpoint and drive it to completion. The
    // problem is not re-read — the snapshot carries the full run state —
    // and the result is byte-identical to the uninterrupted run's. A
    // steady-state checkpoint carries its own environment block (format
    // v2), so `--resume-from` alone routes back into the steady harness
    // without re-passing --lambda or the window schedule.
    if let Some(path) = args.flags.get("resume-from") {
        let snap = load_snapshot(path);
        if snap.steady.is_some() {
            cmd_steady_resume(args, algo, path, snap);
            return;
        }
        let n = snap.n as u64;
        let cap = args.u64_flag("cap").unwrap_or(64 * n * n + 4096);
        let out = mesh_routing::resume_route(algo, &snap, cap).unwrap_or_else(|e| {
            eprintln!("cannot resume: {e}");
            exit(1);
        });
        eprintln!("resumed from {path} at step {}", snap.step);
        print_route(args, &out);
        return;
    }

    let pb = if let Some(path) = args.flags.get("problem") {
        load_problem(path)
    } else if let Some(kind) = args.flags.get("workload") {
        make_workload(kind, args)
    } else {
        eprintln!("route needs --problem FILE, --workload KIND --n N, or --resume-from CKPT");
        usage()
    };
    let cap = args
        .u64_flag("cap")
        .unwrap_or(64 * pb.n as u64 * pb.n as u64 + 4096);

    // Checkpointed run: identical outcome, plus a ckpt_<step>.json stream
    // in --checkpoint-dir. --halt-at simulates the crash by capping the
    // run at that step; resume later with --resume-from.
    if let Some(every) = args.u64_flag("checkpoint-every") {
        let dir = args
            .flags
            .get("checkpoint-dir")
            .map(String::as_str)
            .unwrap_or("checkpoints");
        let cap = args.u64_flag("halt-at").unwrap_or(cap);
        let (out, last) =
            mesh_routing::route_checkpointed(algo, &pb, cap, every, std::path::Path::new(dir))
                .unwrap_or_else(|e| {
                    eprintln!("checkpointed run failed: {e}");
                    exit(1);
                });
        match last {
            Some(p) => eprintln!("last checkpoint: {}", p.display()),
            None => eprintln!("no checkpoint written (run ended before the first cadence point)"),
        }
        print_route(args, &out);
        return;
    }

    // For the extra reports we need the live sim, so route manually for
    // engine algorithms; fall back to the API for §6.
    let out = mesh_routing::route_with_cap(algo, &pb, cap);
    if args.has("json") {
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    } else {
        println!(
            "{} on {}: steps={}{} max_queue={} moves={} delivered={}/{}",
            out.algorithm,
            out.workload,
            out.steps,
            if out.completed { "" } else { " (STALLED)" },
            out.max_queue,
            out.total_moves,
            out.delivered,
            out.total_packets
        );
        if let Some(s6) = &out.section6 {
            println!(
                "  section6: scheduled={} ({:.1}n)  quiescent={} ({:.1}n)  iterations={}",
                s6.scheduled_steps,
                s6.steps_per_n(),
                s6.quiescent_steps,
                s6.quiescent_steps as f64 / s6.n as f64,
                s6.iterations
            );
        }
    }
    if args.has("latency") || args.has("heatmap") {
        // Re-run through the engine to collect stats (engine algorithms only).
        if matches!(algo, Algorithm::Section6 | Algorithm::Section6Improved) {
            eprintln!("(--latency/--heatmap are engine-router features)");
            return;
        }
        let topo = Mesh::new(pb.n);
        macro_rules! with_sim {
            ($router:expr) => {{
                let mut sim = Sim::new(&topo, $router, &pb);
                let _ = sim.run(cap);
                if args.has("latency") {
                    let d = sim.latency_distribution();
                    println!(
                        "latency: min={} p50={} p90={} p99={} max={} mean={:.1}",
                        d.min, d.p50, d.p90, d.p99, d.max, d.mean
                    );
                }
                if args.has("heatmap") {
                    println!("{}", sim.congestion_map().ascii());
                }
            }};
        }
        match algo {
            Algorithm::DimOrder { k } => with_sim!(Dx::new(DimOrder::new(k))),
            Algorithm::DimOrderYx { k } => with_sim!(Dx::new(DimOrder::yx(k))),
            Algorithm::AltAdaptive { k } => with_sim!(Dx::new(AltAdaptive::new(k))),
            Algorithm::Theorem15 { k } => with_sim!(Dx::new(Theorem15::new(k))),
            Algorithm::FarthestFirst { k } => with_sim!(FarthestFirst::new(k)),
            Algorithm::GreedyUnbounded => with_sim!(FarthestFirst::unbounded(pb.n)),
            Algorithm::HotPotato => {
                with_sim!(Dx::new(mesh_routing::routers::HotPotato::new(pb.n)))
            }
            Algorithm::WestFirst { k } => {
                with_sim!(Dx::new(mesh_routing::routers::WestFirst::new(k)))
            }
            Algorithm::BoundedDeflect { k, delta } => {
                with_sim!(Dx::new(mesh_routing::routers::BoundedDeflect::new(
                    pb.n, k, delta
                )))
            }
            _ => unreachable!(),
        }
    }
}

fn cmd_construct(args: &Args) {
    let kind = args
        .positional
        .get(1)
        .map(String::as_str)
        .unwrap_or_else(|| usage());
    let n = args.u32_flag("n").unwrap_or_else(|| usage());
    let k = args.u32_flag("k").unwrap_or(1);
    let check = args.has("check");
    let victim = args
        .flags
        .get("victim")
        .map(String::as_str)
        .unwrap_or("dim-order");
    let topo = Mesh::new(n);

    let outcome = match kind {
        "general" => {
            let h = args.u32_flag("h").unwrap_or(1);
            let params = GeneralParams::hh(n, k, h).unwrap_or_else(|e| {
                eprintln!("invalid parameters: {e}");
                exit(1);
            });
            let cons = GeneralConstruction::new(params);
            match victim {
                "dim-order" => cons.run(&topo, mesh_routing::routers::dim_order(k), check),
                "alt-adaptive" => cons.run(&topo, mesh_routing::routers::alt_adaptive(k), check),
                "theorem15" => cons.run(&topo, mesh_routing::routers::theorem15(k), check),
                other => {
                    eprintln!("unsupported victim '{other}' for the general construction");
                    exit(2);
                }
            }
        }
        "dimorder" => {
            let params = DimOrderParams::new(n, k).unwrap_or_else(|e| {
                eprintln!("invalid parameters: {e}");
                exit(1);
            });
            DimOrderConstruction::new(params).run(&topo, mesh_routing::routers::dim_order(k))
        }
        "farthest" => {
            let params = DimOrderParams::farthest_first(n, k).unwrap_or_else(|e| {
                eprintln!("invalid parameters: {e}");
                exit(1);
            });
            FarthestFirstConstruction::new(params).run(&topo, FarthestFirst::new(k))
        }
        other => {
            eprintln!("unknown construction '{other}'");
            usage()
        }
    };

    eprintln!(
        "constructed {} packets; bound {} steps; {} exchanges; {} undelivered at bound",
        outcome.constructed.len(),
        outcome.bound_steps,
        outcome.exchanges,
        outcome.undelivered_at_bound
    );
    match args.flags.get("out") {
        Some(path) => save_json(&outcome.constructed, path),
        None => println!("{}", serde_json::to_string(&outcome.constructed).unwrap()),
    }
}

fn main() {
    let args = parse_args();
    match args.positional.first().map(String::as_str) {
        Some("workload") => cmd_workload(&args),
        Some("route") => cmd_route(&args),
        Some("construct") => cmd_construct(&args),
        _ => usage(),
    }
}
