//! Result tables: markdown rendering and CSV export.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A result table for one experiment.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "e1".
    pub id: String,
    /// Title line (what the table reproduces).
    pub title: String,
    /// What the paper claims; printed under the table.
    pub expectation: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, expectation: &str, headers: &[&str]) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            expectation: expectation.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies the cells).
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id.to_uppercase(), self.title);
        let line = |cells: &[String], w: &[usize], out: &mut String| {
            let body: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect();
            let _ = writeln!(out, "| {} |", body.join(" | "));
        };
        line(&self.headers, &w, &mut out);
        let sep: Vec<String> = w.iter().map(|&n| "-".repeat(n)).collect();
        let _ = writeln!(out, "|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row, &w, &mut out);
        }
        let _ = writeln!(out, "\n*Paper expectation:* {}\n", self.expectation);
        out
    }

    /// Writes the table as CSV under `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Convenience macro-free row builder: stringify heterogeneous cells.
#[macro_export]
macro_rules! cells {
    ($($v:expr),* $(,)?) => {
        vec![$(format!("{}", $v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_shapes() {
        let mut t = Table::new("e0", "demo", "expected", &["a", "bb"]);
        t.row(cells!(1, "xy"));
        t.row(cells!(22, "z"));
        let md = t.markdown();
        assert!(md.contains("### E0"));
        assert!(md.contains("| 22 |"));
        let dir = std::env::temp_dir().join("mesh-bench-test");
        t.write_csv(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("e0.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,bb"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_wrong_width() {
        let mut t = Table::new("x", "t", "e", &["a"]);
        t.row(cells!(1, 2));
    }
}
