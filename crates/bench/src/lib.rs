//! # mesh-bench
//!
//! The experiment harness of the reproduction: every theorem of the paper
//! has an experiment that regenerates its quantitative content as a table
//! (see DESIGN.md §3 for the index, EXPERIMENTS.md for recorded results).
//!
//! Run them with the `experiments` binary:
//!
//! ```sh
//! cargo run --release -p mesh-bench --bin experiments -- all
//! cargo run --release -p mesh-bench --bin experiments -- e1 e6
//! cargo run --release -p mesh-bench --bin experiments -- --full e1
//! ```
//!
//! Criterion wall-clock benches of the *simulator itself* live in
//! `benches/`.
//!
//! ## The parallel trial runner
//!
//! Every experiment is a flat list of independent cells that the
//! [`runner`] executes across a scoped thread pool:
//!
//! ```sh
//! cargo run --release -p mesh-bench --bin experiments -- \
//!     e1 --threads 8 --trials 5 --json-out out/
//! ```
//!
//! - `--threads N` — worker threads for the trial pool (default: all
//!   cores). Results are **bit-identical for any N**: every trial has its
//!   own derived seed and a pre-assigned output slot.
//! - `--trials N` — repetitions per *seeded* cell (random workloads);
//!   deterministic cells (adversary constructions, fixed permutations)
//!   always run once. Trial 0 uses the historical seed, so the recorded
//!   tables in EXPERIMENTS.md are unchanged by this feature.
//! - `--json-out [DIR]` — write `BENCH_<id>.json` (rows per trial +
//!   mean/min/max/stddev aggregates; timing-free and therefore
//!   thread-count-invariant) and `BENCH_<id>.timing.json` (wall-clock per
//!   cell — machine-dependent, hence a sidecar).
//!
//! See [`runner::BenchDoc`] / [`runner::TimingDoc`] for the schemas.

pub mod experiments;
pub mod runner;
pub mod sweep;
pub mod table;

pub use runner::{BenchDoc, Experiment, ExperimentRun, RunnerConfig, TimingDoc};
pub use table::Table;
