//! # mesh-bench
//!
//! The experiment harness of the reproduction: every theorem of the paper
//! has an experiment that regenerates its quantitative content as a table
//! (see DESIGN.md §3 for the index, EXPERIMENTS.md for recorded results).
//!
//! Run them with the `experiments` binary:
//!
//! ```sh
//! cargo run --release -p mesh-bench --bin experiments -- all
//! cargo run --release -p mesh-bench --bin experiments -- e1 e6
//! cargo run --release -p mesh-bench --bin experiments -- --full e1
//! ```
//!
//! Criterion wall-clock benches of the *simulator itself* live in
//! `benches/`.

pub mod experiments;
pub mod table;

pub use table::Table;
