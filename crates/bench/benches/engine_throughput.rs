//! Criterion benches of the simulator itself: wall-clock cost of routing
//! one permutation end to end under each engine-based router. These measure
//! *our simulator's* performance (steps/second), not the paper's step
//! counts — those come from the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mesh_routing::prelude::*;

fn bench_routers(c: &mut Criterion) {
    let mut g = c.benchmark_group("route_random_permutation");
    for n in [32u32, 64] {
        let pb = workloads::random_permutation(n, 1);
        let topo = Mesh::new(n);
        g.bench_with_input(BenchmarkId::new("greedy_unbounded", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
                sim.run(100_000).unwrap();
                sim.report().steps
            })
        });
        g.bench_with_input(BenchmarkId::new("theorem15_k2", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
                sim.run(1_000_000).unwrap();
                sim.report().steps
            })
        });
        g.bench_with_input(BenchmarkId::new("dim_order_ample", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Sim::new(&topo, Dx::new(DimOrder::new(n * n)), &pb);
                sim.run(100_000).unwrap();
                sim.report().steps
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routers
}
criterion_main!(benches);
