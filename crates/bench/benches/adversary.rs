//! Criterion benches of the adversarial constructions: cost of building one
//! hard permutation (construction run + exchanges) and of the replay
//! verification.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh_routing::prelude::*;
use mesh_routing::topo::Mesh;

fn bench_construction(c: &mut Criterion) {
    let params = GeneralParams::new(216, 1).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(216);

    c.bench_function("general_construction_n216_k1", |b| {
        b.iter(|| {
            let outcome = cons.run(&topo, mesh_routing::routers::dim_order(1), false);
            outcome.exchanges
        })
    });

    let outcome = cons.run(&topo, mesh_routing::routers::dim_order(1), false);
    c.bench_function("replay_verification_n216_k1", |b| {
        b.iter(|| {
            let rep =
                verify_lower_bound(&topo, mesh_routing::routers::dim_order(1), &outcome, None);
            rep.undelivered_at_bound
        })
    });

    c.bench_function("construction_with_invariant_checks", |b| {
        b.iter(|| {
            let outcome = cons.run(&topo, mesh_routing::routers::dim_order(1), true);
            outcome.exchanges
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_construction
}
criterion_main!(benches);
