//! Criterion benches of the §6 phased engine: full-route wall time per mesh
//! size (the step counts themselves are in experiment E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mesh_routing::prelude::*;
use mesh_routing::Section6Router;

fn bench_section6(c: &mut Criterion) {
    let mut g = c.benchmark_group("section6_route");
    for n in [27u32, 81] {
        let pb = workloads::random_permutation(n, 1);
        g.bench_with_input(BenchmarkId::new("q408", n), &n, |b, _| {
            b.iter(|| Section6Router::new().route(&pb).scheduled_steps)
        });
        g.bench_with_input(BenchmarkId::new("q102", n), &n, |b, _| {
            b.iter(|| Section6Router::improved().route(&pb).scheduled_steps)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_section6
}
criterion_main!(benches);
