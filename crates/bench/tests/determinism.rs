//! Regression test for the runner's core guarantee: for a fixed experiment
//! and trial count, the aggregated `BENCH_*.json` document is byte-identical
//! no matter how many worker threads execute the trials.

use mesh_bench::runner::{derive_seed, run_experiment, Experiment, RunnerConfig, TrialOutput};
use mesh_routing::prelude::*;

/// A miniature but real experiment: seeded random permutations routed by
/// two different engines, plus one deterministic cell — the same shape as
/// the shipped experiments, small enough for a test.
fn mini_experiment() -> Experiment {
    let n = 10;
    let mut e = Experiment::new(
        "mini",
        "determinism fixture",
        "json identical across thread counts",
        &["cell", "steps", "moves"],
    );
    e.seeded("theorem15 random-perm", move |trial| {
        let pb = workloads::random_permutation(n, derive_seed(21, trial));
        let topo = Mesh::new(n);
        let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
        sim.run(100_000).unwrap();
        let r = sim.report();
        TrialOutput::with_report(
            vec![
                "theorem15".into(),
                r.steps.to_string(),
                r.total_moves.to_string(),
            ],
            r,
        )
    });
    e.seeded("greedy random-perm", move |trial| {
        let pb = workloads::random_permutation(n, derive_seed(22, trial));
        let topo = Mesh::new(n);
        let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
        sim.run(100_000).unwrap();
        let r = sim.report();
        TrialOutput::with_report(
            vec![
                "greedy".into(),
                r.steps.to_string(),
                r.total_moves.to_string(),
            ],
            r,
        )
    });
    e.fixed("greedy transpose", move |_| {
        let pb = workloads::transpose(n);
        let topo = Mesh::new(n);
        let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
        sim.run(100_000).unwrap();
        let r = sim.report();
        TrialOutput::with_report(
            vec![
                "transpose".into(),
                r.steps.to_string(),
                r.total_moves.to_string(),
            ],
            r,
        )
    });
    e
}

#[test]
fn bench_json_is_byte_identical_across_thread_counts() {
    let render = |threads: usize| {
        let cfg = RunnerConfig { threads, trials: 3 };
        let run = run_experiment(mini_experiment(), &cfg);
        serde_json::to_string_pretty(&run.doc).unwrap()
    };
    let serial = render(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            render(threads),
            "JSON diverged at {threads} threads"
        );
    }
    // Sanity on the document itself: seeded cells actually ran 3 distinct
    // trials, the fixed cell ran once, and aggregates were attached.
    let run = run_experiment(
        mini_experiment(),
        &RunnerConfig {
            threads: 4,
            trials: 3,
        },
    );
    assert_eq!(run.doc.cells.len(), 3);
    assert_eq!(run.doc.cells[0].rows.len(), 3);
    assert_eq!(run.doc.cells[2].rows.len(), 1);
    let agg = run.doc.cells[0].aggregate.as_ref().unwrap();
    assert_eq!(agg.trials, 3);
    assert_eq!(agg.completed_trials, 3);
    // Distinct seeds must actually vary the workload (steps differ across
    // trials with overwhelming probability on a 10×10 permutation).
    let rows = &run.doc.cells[0].rows;
    assert!(
        rows.iter().any(|r| r[1] != rows[0][1]) || rows.iter().any(|r| r[2] != rows[0][2]),
        "trials look identical — derive_seed is not varying the workload"
    );
}

#[test]
fn reliable_experiment_json_is_byte_identical_across_thread_counts() {
    // The shipped `reliable` experiment adds two sources of nondeterminism
    // risk the mini fixture lacks: the transport's own seeded jitter RNG and
    // protocol-spawned packets growing the simulation mid-run. The emitted
    // JSON must still be a pure function of (experiment, trials).
    let render = |threads: usize| {
        let cfg = RunnerConfig { threads, trials: 2 };
        let exp = mesh_bench::experiments::build("reliable", false).unwrap();
        let run = run_experiment(exp, &cfg);
        serde_json::to_string_pretty(&run.doc).unwrap()
    };
    let serial = render(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            render(threads),
            "JSON diverged at {threads} threads"
        );
    }
}

#[test]
fn experiment_json_is_byte_identical_across_tile_threads() {
    // Tile-sharded execution of the simulation itself (SimConfig's
    // `tile_threads`, threaded through `--tile-threads`) is a pure
    // execution strategy: the deterministic document must not change by a
    // byte when the step pipeline runs across worker threads. Checked on
    // every experiment that constructs sims with it.
    for id in ["perf", "chaos", "reliable"] {
        let render = |tile_threads: usize| {
            let exp = mesh_bench::experiments::build_with(id, false, tile_threads).unwrap();
            let run = run_experiment(exp, &RunnerConfig::serial());
            serde_json::to_string_pretty(&run.doc).unwrap()
        };
        let serial = render(1);
        for tile_threads in [2, 4] {
            assert_eq!(
                serial,
                render(tile_threads),
                "{id} JSON diverged at tile_threads={tile_threads}"
            );
        }
    }
}

#[test]
fn table_equals_historical_serial_run() {
    // Trial 0 of every cell must reproduce the serial single-trial table
    // regardless of parallelism, so the recorded EXPERIMENTS.md values are
    // stable under the runner.
    let serial = run_experiment(mini_experiment(), &RunnerConfig::serial());
    let parallel = run_experiment(
        mini_experiment(),
        &RunnerConfig {
            threads: 8,
            trials: 5,
        },
    );
    assert_eq!(serial.table.markdown(), parallel.table.markdown());
}
