//! The four movement classes of the §6 algorithm.
//!
//! §6.1: "we assume that we are routing just packets that need to move either
//! northeast or directly north … The entire algorithm consists of sequential
//! applications of this algorithm, corresponding to the four kinds of packets
//! (NE, NW, SE, SW)."
//!
//! Packets whose remaining displacement is axis-aligned must belong to exactly
//! one class; we fix the convention: due north → NE, due east → SE,
//! due south → SW, due west → NW (each pure direction joins the class that
//! lists it first in the paper's "northeast or directly north" phrasing,
//! rotated consistently).

use mesh_topo::Coord;
use serde::{Deserialize, Serialize};

/// A diagonal movement class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// Needs to move north, and possibly east (`dx >= 0, dy > 0`).
    NE,
    /// Needs to move east, and possibly south (`dx > 0, dy <= 0`).
    SE,
    /// Needs to move south, and possibly west (`dx <= 0, dy < 0`).
    SW,
    /// Needs to move west, and possibly north (`dx < 0, dy >= 0`).
    NW,
}

/// All four quadrants in the order the §6 algorithm processes them.
pub const ALL_QUADRANTS: [Quadrant; 4] = [Quadrant::NE, Quadrant::NW, Quadrant::SE, Quadrant::SW];

impl Quadrant {
    /// The class of a packet currently at `from` destined for `to`, or `None`
    /// if it is already delivered (`from == to`).
    ///
    /// Every undelivered packet belongs to exactly one class.
    pub fn of(from: Coord, to: Coord) -> Option<Quadrant> {
        let dx = to.x as i64 - from.x as i64;
        let dy = to.y as i64 - from.y as i64;
        match (dx, dy) {
            (0, 0) => None,
            (dx, dy) if dx >= 0 && dy > 0 => Some(Quadrant::NE),
            (dx, dy) if dx > 0 && dy <= 0 => Some(Quadrant::SE),
            (dx, dy) if dx <= 0 && dy < 0 => Some(Quadrant::SW),
            _ => Some(Quadrant::NW),
        }
    }

    /// Signs `(sx, sy)` of this quadrant's movement: multiplying coordinates
    /// by these signs maps the quadrant onto NE, letting the §6 engine be
    /// written once for NE and reused by reflection.
    pub fn signs(self) -> (i64, i64) {
        match self {
            Quadrant::NE => (1, 1),
            Quadrant::NW => (-1, 1),
            Quadrant::SE => (1, -1),
            Quadrant::SW => (-1, -1),
        }
    }
}

impl core::fmt::Display for Quadrant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Quadrant::NE => "NE",
            Quadrant::NW => "NW",
            Quadrant::SE => "SE",
            Quadrant::SW => "SW",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivered_packet_has_no_quadrant() {
        assert_eq!(Quadrant::of(Coord::new(3, 3), Coord::new(3, 3)), None);
    }

    #[test]
    fn strict_diagonals() {
        let o = Coord::new(5, 5);
        assert_eq!(Quadrant::of(o, Coord::new(7, 8)), Some(Quadrant::NE));
        assert_eq!(Quadrant::of(o, Coord::new(2, 9)), Some(Quadrant::NW));
        assert_eq!(Quadrant::of(o, Coord::new(8, 1)), Some(Quadrant::SE));
        assert_eq!(Quadrant::of(o, Coord::new(0, 0)), Some(Quadrant::SW));
    }

    #[test]
    fn pure_directions_follow_convention() {
        let o = Coord::new(5, 5);
        assert_eq!(Quadrant::of(o, Coord::new(5, 9)), Some(Quadrant::NE)); // due north
        assert_eq!(Quadrant::of(o, Coord::new(9, 5)), Some(Quadrant::SE)); // due east
        assert_eq!(Quadrant::of(o, Coord::new(5, 1)), Some(Quadrant::SW)); // due south
        assert_eq!(Quadrant::of(o, Coord::new(1, 5)), Some(Quadrant::NW)); // due west
    }

    #[test]
    fn every_pair_has_exactly_one_class() {
        for fy in 0..6u32 {
            for fx in 0..6u32 {
                for ty in 0..6u32 {
                    for tx in 0..6u32 {
                        let from = Coord::new(fx, fy);
                        let to = Coord::new(tx, ty);
                        let q = Quadrant::of(from, to);
                        assert_eq!(q.is_none(), from == to);
                    }
                }
            }
        }
    }

    #[test]
    fn signs_map_to_ne() {
        for q in ALL_QUADRANTS {
            let (sx, sy) = q.signs();
            assert_eq!(sx.abs(), 1);
            assert_eq!(sy.abs(), 1);
        }
        // A SW packet reflected by its signs moves NE.
        let from = Coord::new(5, 5);
        let to = Coord::new(2, 1);
        assert_eq!(Quadrant::of(from, to), Some(Quadrant::SW));
        let (sx, sy) = Quadrant::SW.signs();
        let rdx = (to.x as i64 - from.x as i64) * sx;
        let rdy = (to.y as i64 - from.y as i64) * sy;
        assert!(rdx >= 0 && rdy >= 0);
    }
}
