//! The packet: the unit of routing.

use mesh_topo::Coord;
use serde::{Deserialize, Serialize};

/// Dense packet identifier; index into the simulator's packet table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Debug for PacketId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Dense identifier of an end-to-end *payload* in a reliable transport.
///
/// A payload is the unit a transport promises to deliver exactly once; the
/// network may carry it as several [`PacketId`]s over time (the original
/// transmission plus retransmissions, each a distinct packet). Kept here, next
/// to [`PacketId`], so the packet/payload distinction is part of the shared
/// traffic vocabulary rather than private to the transport crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PayloadId(pub u32);

impl PayloadId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Debug for PayloadId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "y{}", self.0)
    }
}

/// A packet.
///
/// Per §2 of the paper, a packet carries: a **source address** and
/// **destination address** (immutable identity — but note an adversarial
/// *exchange* swaps the destinations of two packets while leaving everything
/// else untouched), and a **state**: "information that can be modified by a
/// node when the packet is in the node … transmitted along with the packet".
/// We give the state a single 64-bit word, which is ample for every policy in
/// the paper (arrival times, direction flags, phase counters).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    pub id: PacketId,
    /// Where the packet originates.
    pub src: Coord,
    /// Where the packet must be delivered.
    pub dst: Coord,
    /// Step at the beginning of which the packet appears at `src`
    /// (0 for the static problems of §§3–6; later for dynamic problems, §5).
    pub inject_at: u64,
    /// The packet's mutable state word.
    pub state: u64,
}

impl Packet {
    /// Creates a static packet (injected at step 0, zero state).
    pub fn new(id: u32, src: Coord, dst: Coord) -> Packet {
        Packet {
            id: PacketId(id),
            src,
            dst,
            inject_at: 0,
            state: 0,
        }
    }

    /// Creates a packet injected at a given step (dynamic problems, §5).
    pub fn injected_at(id: u32, src: Coord, dst: Coord, step: u64) -> Packet {
        Packet {
            inject_at: step,
            ..Packet::new(id, src, dst)
        }
    }

    /// True if the packet starts at its own destination (trivially delivered).
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = Packet::new(7, Coord::new(1, 2), Coord::new(3, 4));
        assert_eq!(p.id, PacketId(7));
        assert_eq!(p.inject_at, 0);
        assert_eq!(p.state, 0);
        assert!(!p.is_trivial());

        let q = Packet::injected_at(8, Coord::new(5, 5), Coord::new(5, 5), 42);
        assert_eq!(q.inject_at, 42);
        assert!(q.is_trivial());
    }
}
