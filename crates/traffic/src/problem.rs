//! Routing problem containers and the problem classes studied in the paper.

use crate::packet::{Packet, PacketId};
use mesh_topo::Coord;
use serde::{Deserialize, Serialize};

/// The routing problem classes of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProblemClass {
    /// Each node sends at most one packet and receives at most one packet
    /// ("one-to-one" / partial permutation, §1).
    PartialPermutation,
    /// Each node sends exactly one and receives exactly one packet.
    Permutation,
    /// Each node sends at most `h` and receives at most `h` packets (§5).
    Hh(u32),
    /// No constraint (e.g. random-destination average-case problems, §1.1).
    Unconstrained,
}

/// A static or dynamic routing problem on a side-`n` grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingProblem {
    /// Grid side length.
    pub n: u32,
    /// The packets, indexed by their `PacketId`.
    pub packets: Vec<Packet>,
    /// A human-readable workload name for reports.
    pub label: String,
}

impl RoutingProblem {
    /// Builds a problem from `(src, dst)` pairs, assigning dense ids.
    pub fn from_pairs(
        n: u32,
        label: impl Into<String>,
        pairs: impl IntoIterator<Item = (Coord, Coord)>,
    ) -> RoutingProblem {
        let packets = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst))| Packet::new(i as u32, src, dst))
            .collect();
        let p = RoutingProblem {
            n,
            packets,
            label: label.into(),
        };
        p.validate_coords();
        p
    }

    /// Builds a problem from fully-specified packets (ids must be dense).
    pub fn from_packets(n: u32, label: impl Into<String>, packets: Vec<Packet>) -> RoutingProblem {
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(p.id, PacketId(i as u32), "packet ids must be dense");
        }
        let p = RoutingProblem {
            n,
            packets,
            label: label.into(),
        };
        p.validate_coords();
        p
    }

    fn validate_coords(&self) {
        for p in &self.packets {
            assert!(
                p.src.x < self.n && p.src.y < self.n && p.dst.x < self.n && p.dst.y < self.n,
                "packet {:?} out of the {}x{} grid",
                p,
                self.n,
                self.n
            );
        }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if the problem has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// True if every packet is injected at step 0.
    pub fn is_static(&self) -> bool {
        self.packets.iter().all(|p| p.inject_at == 0)
    }

    /// Per-node send counts (row-major).
    pub fn send_counts(&self) -> Vec<u32> {
        let mut c = vec![0u32; (self.n * self.n) as usize];
        for p in &self.packets {
            c[(p.src.y * self.n + p.src.x) as usize] += 1;
        }
        c
    }

    /// Per-node receive counts (row-major).
    pub fn recv_counts(&self) -> Vec<u32> {
        let mut c = vec![0u32; (self.n * self.n) as usize];
        for p in &self.packets {
            c[(p.dst.y * self.n + p.dst.x) as usize] += 1;
        }
        c
    }

    /// The most specific [`ProblemClass`] this problem satisfies.
    pub fn classify(&self) -> ProblemClass {
        let send = self.send_counts();
        let recv = self.recv_counts();
        let max_h = send.iter().chain(recv.iter()).copied().max().unwrap_or(0);
        if max_h <= 1 {
            if self.len() == (self.n * self.n) as usize {
                ProblemClass::Permutation
            } else {
                ProblemClass::PartialPermutation
            }
        } else {
            ProblemClass::Hh(max_h)
        }
    }

    /// True if the problem is a (possibly partial) permutation.
    pub fn is_partial_permutation(&self) -> bool {
        matches!(
            self.classify(),
            ProblemClass::Permutation | ProblemClass::PartialPermutation
        )
    }

    /// True if the problem is a full permutation.
    pub fn is_permutation(&self) -> bool {
        self.classify() == ProblemClass::Permutation
    }

    /// True if every node sends at most `h` and receives at most `h` packets.
    pub fn is_hh(&self, h: u32) -> bool {
        self.send_counts().iter().all(|&c| c <= h) && self.recv_counts().iter().all(|&c| c <= h)
    }

    /// The largest source→destination distance (mesh metric); a trivial lower
    /// bound on any mesh routing time.
    pub fn diameter_bound(&self) -> u32 {
        self.packets
            .iter()
            .map(|p| p.src.manhattan(p.dst))
            .max()
            .unwrap_or(0)
    }

    /// Total packet-hops required on minimal mesh paths.
    pub fn total_work(&self) -> u64 {
        self.packets
            .iter()
            .map(|p| p.src.manhattan(p.dst) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_perm() -> RoutingProblem {
        // 2x2 full permutation: each node sends to its transpose.
        let n = 2;
        let pairs = (0..n).flat_map(|y| (0..n).map(move |x| (Coord::new(x, y), Coord::new(y, x))));
        RoutingProblem::from_pairs(n, "transpose2", pairs)
    }

    #[test]
    fn classify_full_permutation() {
        let p = tiny_perm();
        assert!(p.is_permutation());
        assert!(p.is_partial_permutation());
        assert!(p.is_hh(1));
        assert_eq!(p.classify(), ProblemClass::Permutation);
    }

    #[test]
    fn classify_partial_permutation() {
        let p = RoutingProblem::from_pairs(4, "one packet", [(Coord::new(0, 0), Coord::new(3, 3))]);
        assert_eq!(p.classify(), ProblemClass::PartialPermutation);
        assert!(!p.is_permutation());
        assert_eq!(p.diameter_bound(), 6);
        assert_eq!(p.total_work(), 6);
    }

    #[test]
    fn classify_hh() {
        let p = RoutingProblem::from_pairs(
            2,
            "2-2",
            [
                (Coord::new(0, 0), Coord::new(1, 1)),
                (Coord::new(0, 0), Coord::new(1, 0)),
                (Coord::new(1, 1), Coord::new(1, 1)),
            ],
        );
        assert_eq!(p.classify(), ProblemClass::Hh(2));
        assert!(p.is_hh(2));
        assert!(!p.is_hh(1));
    }

    #[test]
    fn send_recv_counts() {
        let p = tiny_perm();
        assert!(p.send_counts().iter().all(|&c| c == 1));
        assert!(p.recv_counts().iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "out of the")]
    fn rejects_out_of_grid() {
        let _ = RoutingProblem::from_pairs(2, "bad", [(Coord::new(0, 0), Coord::new(2, 0))]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn rejects_non_dense_ids() {
        let pk = Packet::new(5, Coord::new(0, 0), Coord::new(1, 1));
        let _ = RoutingProblem::from_packets(2, "bad", vec![pk]);
    }

    #[test]
    fn static_detection() {
        let mut p = tiny_perm();
        assert!(p.is_static());
        p.packets[0].inject_at = 3;
        assert!(!p.is_static());
    }
}
