//! Deterministic, seeded workload generators.
//!
//! Every generator takes an explicit `u64` seed so experiments are exactly
//! reproducible. The adversarially *constructed* permutations of §§3 and 5
//! are not here — they depend on the routing algorithm under attack and live
//! in the `mesh-adversary` crate.

use crate::packet::Packet;
use crate::problem::RoutingProblem;
use mesh_topo::Coord;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn all_coords(n: u32) -> Vec<Coord> {
    (0..n)
        .flat_map(|y| (0..n).map(move |x| Coord::new(x, y)))
        .collect()
}

/// A uniformly random full permutation.
pub fn random_permutation(n: u32, seed: u64) -> RoutingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let srcs = all_coords(n);
    let mut dsts = all_coords(n);
    dsts.shuffle(&mut rng);
    RoutingProblem::from_pairs(
        n,
        format!("random-perm(n={n},seed={seed})"),
        srcs.into_iter().zip(dsts),
    )
}

/// A random partial permutation in which a `load` fraction of nodes send.
pub fn random_partial_permutation(n: u32, load: f64, seed: u64) -> RoutingProblem {
    assert!((0.0..=1.0).contains(&load), "load must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ((n as u64 * n as u64) as f64 * load).round() as usize;
    let mut srcs = all_coords(n);
    let mut dsts = all_coords(n);
    srcs.shuffle(&mut rng);
    dsts.shuffle(&mut rng);
    srcs.truncate(m);
    dsts.truncate(m);
    RoutingProblem::from_pairs(
        n,
        format!("random-partial(n={n},load={load},seed={seed})"),
        srcs.into_iter().zip(dsts),
    )
}

/// The transpose permutation `(x, y) → (y, x)`: the classic dimension-order
/// stress case (all traffic crosses the diagonal).
pub fn transpose(n: u32) -> RoutingProblem {
    RoutingProblem::from_pairs(
        n,
        format!("transpose(n={n})"),
        all_coords(n).into_iter().map(|c| (c, Coord::new(c.y, c.x))),
    )
}

/// The bit-reversal permutation (requires `n` to be a power of two):
/// `(x, y) → (rev(x), rev(y))` where `rev` reverses the `log2 n` bits.
pub fn bit_reversal(n: u32) -> RoutingProblem {
    assert!(
        n.is_power_of_two(),
        "bit reversal needs n to be a power of two"
    );
    let bits = n.trailing_zeros();
    let rev = |v: u32| v.reverse_bits() >> (32 - bits);
    RoutingProblem::from_pairs(
        n,
        format!("bit-reversal(n={n})"),
        all_coords(n)
            .into_iter()
            .map(move |c| (c, Coord::new(rev(c.x), rev(c.y)))),
    )
}

/// The bit-complement permutation `(x, y) → (n−1−x, n−1−y)`: every packet
/// crosses the centre of the mesh, the maximum-work permutation (classic
/// interconnect benchmark).
pub fn bit_complement(n: u32) -> RoutingProblem {
    RoutingProblem::from_pairs(
        n,
        format!("bit-complement(n={n})"),
        all_coords(n)
            .into_iter()
            .map(move |c| (c, Coord::new(n - 1 - c.x, n - 1 - c.y))),
    )
}

/// The tornado pattern: `(x, y) → ((x + ⌈n/2⌉ − 1) mod n, y)` — classic
/// adversarial pattern for ring/torus links (on the mesh it is a heavy
/// same-row shift).
pub fn tornado(n: u32) -> RoutingProblem {
    let shift = n.div_ceil(2) - 1;
    RoutingProblem::from_pairs(
        n,
        format!("tornado(n={n})"),
        all_coords(n)
            .into_iter()
            .map(move |c| (c, Coord::new((c.x + shift) % n, c.y))),
    )
}

/// The perfect-shuffle permutation on the node index (requires `n` to be a
/// power of two): the flattened node id's bits rotate left by one.
pub fn shuffle(n: u32) -> RoutingProblem {
    assert!(n.is_power_of_two(), "shuffle needs n to be a power of two");
    let bits = 2 * n.trailing_zeros();
    RoutingProblem::from_pairs(
        n,
        format!("shuffle(n={n})"),
        all_coords(n).into_iter().map(move |c| {
            let id = c.y * n + c.x;
            let rot = ((id << 1) | (id >> (bits - 1))) & ((1 << bits) - 1);
            (c, Coord::new(rot % n, rot / n))
        }),
    )
}

/// The cyclic rotation permutation `(x, y) → ((x+dx) mod n, (y+dy) mod n)`.
pub fn rotation(n: u32, dx: u32, dy: u32) -> RoutingProblem {
    RoutingProblem::from_pairs(
        n,
        format!("rotation(n={n},dx={dx},dy={dy})"),
        all_coords(n)
            .into_iter()
            .map(move |c| (c, Coord::new((c.x + dx) % n, (c.y + dy) % n))),
    )
}

/// A hotspot partial permutation: `side × side` random distinct sources all
/// send into the `side × side` square centred on the grid. Still one-to-one,
/// but all paths converge on one region — the "hot spot" scenario adaptive
/// routing is motivated by (§1 of the paper).
pub fn hotspot(n: u32, side: u32, seed: u64) -> RoutingProblem {
    assert!(side <= n, "hotspot side must fit in the grid");
    let mut rng = StdRng::seed_from_u64(seed);
    let x0 = (n - side) / 2;
    let y0 = (n - side) / 2;
    let dsts: Vec<Coord> = (0..side)
        .flat_map(|dy| (0..side).map(move |dx| Coord::new(x0 + dx, y0 + dy)))
        .collect();
    let mut srcs = all_coords(n);
    srcs.shuffle(&mut rng);
    srcs.truncate(dsts.len());
    RoutingProblem::from_pairs(
        n,
        format!("hotspot(n={n},side={side},seed={seed})"),
        srcs.into_iter().zip(dsts),
    )
}

/// The column-funnel partial permutation: every node of the southern row
/// sends to a distinct row of the centre column (`(i, 0) → (n/2, i)`).
/// Under greedy dimension-order routing all `n` packets turn at the single
/// node `(n/2, 0)`, arriving two per step but leaving one per step — the
/// classic witness that the `2n − 2` greedy algorithm needs `Θ(n)` queues
/// (§1.1 of the paper).
pub fn column_funnel(n: u32) -> RoutingProblem {
    let c = n / 2;
    RoutingProblem::from_pairs(
        n,
        format!("column-funnel(n={n})"),
        (0..n).map(move |i| (Coord::new(i, 0), Coord::new(c, i))),
    )
}

/// Every node sends one packet to an independently uniform destination —
/// the average-case setting of Leighton's analysis cited in §1.1 (routing
/// time `2n + O(log n)`, queues ≤ 4 w.h.p. under greedy dimension order).
/// *Not* a permutation in general.
pub fn random_destinations(n: u32, seed: u64) -> RoutingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    RoutingProblem::from_pairs(
        n,
        format!("random-dst(n={n},seed={seed})"),
        all_coords(n).into_iter().map(|c| {
            let d = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
            (c, d)
        }),
    )
}

/// A random h-h problem (§5): the union of `h` independent random
/// permutations, so every node sends exactly `h` and receives exactly `h`.
pub fn hh_random(n: u32, h: u32, seed: u64) -> RoutingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let srcs = all_coords(n);
    let mut pairs = Vec::with_capacity((n as usize * n as usize) * h as usize);
    for _ in 0..h {
        let mut dsts = all_coords(n);
        dsts.shuffle(&mut rng);
        pairs.extend(srcs.iter().copied().zip(dsts));
    }
    RoutingProblem::from_pairs(n, format!("hh-random(n={n},h={h},seed={seed})"), pairs)
}

/// A dynamic problem (§5): for `steps` steps, each node independently injects
/// a packet with probability `rate` per step, to a uniform destination.
/// Injection times do not depend on destinations, as §5's dynamic lower-bound
/// model requires.
pub fn dynamic_bernoulli(n: u32, rate: f64, steps: u64, seed: u64) -> RoutingProblem {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::new();
    for t in 0..steps {
        for src in all_coords(n) {
            if rng.gen_bool(rate) {
                let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                packets.push(Packet::injected_at(packets.len() as u32, src, dst, t));
            }
        }
    }
    RoutingProblem::from_packets(
        n,
        format!("dynamic(n={n},rate={rate},steps={steps},seed={seed})"),
        packets,
    )
}

/// Open-system continuous Bernoulli source over a fixed horizon: every
/// step `t in 0..horizon`, every node independently offers packets at
/// rate `lambda` toward uniformly random destinations. Unlike
/// [`dynamic_bernoulli`] the rate may exceed 1 — `floor(lambda)` packets
/// are offered per node per step unconditionally and the fractional
/// remainder by a Bernoulli trial — which is what lets overload sweeps
/// push λ past the network's saturation point λ*.
///
/// The horizon bounds memory, not semantics: a steady-state run measures
/// windows inside the horizon, and the source keeps offering through the
/// last step so the system never drains mid-measurement.
pub fn open_bernoulli(n: u32, lambda: f64, horizon: u64, seed: u64) -> RoutingProblem {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and non-negative"
    );
    let whole = lambda.floor() as u64;
    let frac = lambda - lambda.floor();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::new();
    for t in 0..horizon {
        for src in all_coords(n) {
            let count = whole + u64::from(frac > 0.0 && rng.gen_bool(frac));
            for _ in 0..count {
                let dst = Coord::new(rng.gen_range(0..n), rng.gen_range(0..n));
                packets.push(Packet::injected_at(packets.len() as u32, src, dst, t));
            }
        }
    }
    RoutingProblem::from_packets(
        n,
        format!("open-bernoulli(n={n},lambda={lambda},horizon={horizon},seed={seed})"),
        packets,
    )
}

/// Open-system source from an explicit trace of `(src, dst, inject_at)`
/// triples — recorded arrivals, replayed deterministically. Entries are
/// sorted by injection step (stable for equal steps), so any recording
/// order is accepted.
pub fn from_trace(
    n: u32,
    label: impl Into<String>,
    trace: impl IntoIterator<Item = (Coord, Coord, u64)>,
) -> RoutingProblem {
    let mut entries: Vec<(Coord, Coord, u64)> = trace.into_iter().collect();
    entries.sort_by_key(|&(_, _, t)| t);
    let packets = entries
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst, t))| Packet::injected_at(i as u32, src, dst, t))
        .collect();
    RoutingProblem::from_packets(n, label, packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_permutation_is_permutation_and_seeded() {
        let p1 = random_permutation(8, 1);
        let p2 = random_permutation(8, 1);
        let p3 = random_permutation(8, 2);
        assert!(p1.is_permutation());
        assert_eq!(
            p1.packets.iter().map(|p| p.dst).collect::<Vec<_>>(),
            p2.packets.iter().map(|p| p.dst).collect::<Vec<_>>()
        );
        assert_ne!(
            p1.packets.iter().map(|p| p.dst).collect::<Vec<_>>(),
            p3.packets.iter().map(|p| p.dst).collect::<Vec<_>>()
        );
    }

    #[test]
    fn partial_permutation_has_right_load() {
        let p = random_partial_permutation(10, 0.25, 7);
        assert_eq!(p.len(), 25);
        assert!(p.is_partial_permutation());
        assert!(!p.is_permutation());
    }

    #[test]
    fn transpose_is_permutation_and_involutive() {
        let p = transpose(6);
        assert!(p.is_permutation());
        for pk in &p.packets {
            assert_eq!(pk.dst, Coord::new(pk.src.y, pk.src.x));
        }
    }

    #[test]
    fn bit_reversal_is_permutation() {
        let p = bit_reversal(8);
        assert!(p.is_permutation());
        // rev(001) = 100 on 3 bits.
        let pk = p
            .packets
            .iter()
            .find(|pk| pk.src == Coord::new(1, 0))
            .unwrap();
        assert_eq!(pk.dst, Coord::new(4, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bit_reversal_rejects_non_power_of_two() {
        let _ = bit_reversal(6);
    }

    #[test]
    fn rotation_is_permutation() {
        let p = rotation(5, 2, 3);
        assert!(p.is_permutation());
        let pk = p
            .packets
            .iter()
            .find(|pk| pk.src == Coord::new(4, 4))
            .unwrap();
        assert_eq!(pk.dst, Coord::new(1, 2));
    }

    #[test]
    fn hotspot_targets_centre() {
        let p = hotspot(10, 3, 3);
        assert_eq!(p.len(), 9);
        assert!(p.is_partial_permutation());
        for pk in &p.packets {
            assert!(pk.dst.x >= 3 && pk.dst.x <= 5, "{:?}", pk.dst);
            assert!(pk.dst.y >= 3 && pk.dst.y <= 5, "{:?}", pk.dst);
        }
    }

    #[test]
    fn bit_complement_is_permutation_with_max_work() {
        let p = bit_complement(8);
        assert!(p.is_permutation());
        // Every packet travels (n-1-2x)+(n-1-2y)... total work is maximal
        // among involutions; check center-crossing property instead.
        for pk in &p.packets {
            assert_eq!(pk.dst, Coord::new(7 - pk.src.x, 7 - pk.src.y));
        }
        assert_eq!(p.diameter_bound(), 14);
    }

    #[test]
    fn tornado_is_row_local_permutation() {
        let p = tornado(9);
        assert!(p.is_permutation());
        assert!(p.packets.iter().all(|pk| pk.src.y == pk.dst.y));
        assert_eq!(p.packets[0].dst.x, 4); // shift = ceil(9/2)-1 = 4
    }

    #[test]
    fn shuffle_is_permutation() {
        let p = shuffle(8);
        assert!(p.is_permutation());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shuffle_rejects_odd() {
        let _ = shuffle(6);
    }

    #[test]
    fn column_funnel_is_partial_permutation() {
        let p = column_funnel(8);
        assert!(p.is_partial_permutation());
        assert_eq!(p.len(), 8);
        assert!(p.packets.iter().all(|pk| pk.dst.x == 4 && pk.src.y == 0));
    }

    #[test]
    fn random_destinations_sends_one_each() {
        let p = random_destinations(9, 5);
        assert_eq!(p.len(), 81);
        assert!(p.send_counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn hh_is_hh() {
        let p = hh_random(5, 3, 11);
        assert!(p.is_hh(3));
        assert_eq!(p.len(), 75);
        assert!(p.send_counts().iter().all(|&c| c == 3));
        assert!(p.recv_counts().iter().all(|&c| c == 3));
    }

    #[test]
    fn dynamic_has_increasing_inject_times() {
        let p = dynamic_bernoulli(6, 0.2, 10, 9);
        assert!(!p.is_static() || p.is_empty());
        let mut last = 0;
        for pk in &p.packets {
            assert!(pk.inject_at >= last);
            assert!(pk.inject_at < 10);
            last = pk.inject_at;
        }
    }

    #[test]
    fn dynamic_rate_zero_is_empty() {
        assert!(dynamic_bernoulli(6, 0.0, 10, 1).is_empty());
    }

    #[test]
    fn open_bernoulli_is_seeded_and_supports_overload_rates() {
        let p1 = open_bernoulli(6, 0.3, 20, 5);
        let p2 = open_bernoulli(6, 0.3, 20, 5);
        assert_eq!(
            p1.packets
                .iter()
                .map(|p| (p.src, p.dst, p.inject_at))
                .collect::<Vec<_>>(),
            p2.packets
                .iter()
                .map(|p| (p.src, p.dst, p.inject_at))
                .collect::<Vec<_>>()
        );
        // λ > 1: floor(λ) packets per node per step guaranteed.
        let p = open_bernoulli(4, 1.5, 10, 3);
        assert!(p.len() >= 16 * 10, "λ=1.5 must offer ≥ 1/node/step");
        assert!(p.packets.iter().all(|pk| pk.inject_at < 10));
        assert!(open_bernoulli(4, 0.0, 10, 1).is_empty());
    }

    #[test]
    fn from_trace_sorts_by_injection_step() {
        let p = from_trace(
            4,
            "trace-test",
            vec![
                (Coord::new(0, 0), Coord::new(3, 3), 7),
                (Coord::new(1, 1), Coord::new(2, 2), 2),
                (Coord::new(3, 0), Coord::new(0, 3), 2),
            ],
        );
        assert_eq!(p.len(), 3);
        let at: Vec<u64> = p.packets.iter().map(|pk| pk.inject_at).collect();
        assert_eq!(at, vec![2, 2, 7]);
        // Stable: equal steps keep trace order.
        assert_eq!(p.packets[0].src, Coord::new(1, 1));
    }
}
