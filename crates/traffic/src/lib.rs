//! # mesh-traffic
//!
//! The packet model and workload generators for the Chinn–Leighton–Tompa
//! routing reproduction.
//!
//! * [`Packet`] — the unit of routing: a source, a destination, an optional
//!   injection time (for the dynamic problems of §5), and a mutable state
//!   word (the paper's "state of a packet", §2).
//! * [`RoutingProblem`] — a set of packets on a side-`n` grid, with
//!   validators for the problem classes the paper studies: partial
//!   permutations, (full) permutations, and *h-h* problems.
//! * [`workloads`] — deterministic, seeded generators for every workload the
//!   benchmarks use: random (partial) permutations, transpose, bit-reversal,
//!   rotations, hotspots, random destinations, h-h, and dynamic injection.
//! * [`Quadrant`] — the NE/NW/SE/SW movement classes of the §6 algorithm.

pub mod packet;
pub mod problem;
pub mod quadrant;
pub mod workloads;

pub use packet::{Packet, PacketId, PayloadId};
pub use problem::{ProblemClass, RoutingProblem};
pub use quadrant::Quadrant;
