//! Directed-link identity.
//!
//! §2 models the network as a directed graph whose links come in
//! opposite-direction pairs. Fault injection needs to *name* individual
//! links, so this module gives every directed link a stable identity: the
//! node it leaves from plus its direction. On a side-`n` grid, links also
//! have a dense index (`4·node + dir`), used by fault tables.

use crate::coord::Coord;
use crate::dir::{Dir, ALL_DIRS};
use serde::{Deserialize, Serialize};

/// One directed link: the `dir` outlink of `from`.
///
/// A physical cable failure usually kills both directions; model that as the
/// pair `link` and [`Link::reverse`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    pub from: Coord,
    pub dir: Dir,
}

impl Link {
    /// The `dir` outlink of `from`.
    #[inline]
    pub const fn new(from: Coord, dir: Dir) -> Link {
        Link { from, dir }
    }

    /// Dense index on a side-`n` grid: `4 · (y·n + x) + dir`.
    #[inline]
    pub fn index(self, n: u32) -> usize {
        4 * (self.from.y * n + self.from.x) as usize + self.dir.index()
    }

    /// Rebuilds a link from its dense index.
    #[inline]
    pub fn from_index(i: usize, n: u32) -> Link {
        let node = (i / 4) as u32;
        Link {
            from: Coord::new(node % n, node / n),
            dir: Dir::from_index(i % 4),
        }
    }

    /// The node this link points at, ignoring grid bounds (mesh edges have
    /// no link there; callers that care should consult the topology).
    #[inline]
    pub fn to(self) -> Option<Coord> {
        let (dx, dy) = self.dir.delta();
        let x = self.from.x as i64 + dx;
        let y = self.from.y as i64 + dy;
        (x >= 0 && y >= 0).then(|| Coord::new(x as u32, y as u32))
    }

    /// The opposite-direction partner link (exists whenever `self` does, by
    /// the §2 pairing), or `None` when `self` points off the coordinate
    /// plane entirely.
    #[inline]
    pub fn reverse(self) -> Option<Link> {
        self.to().map(|t| Link::new(t, self.dir.opposite()))
    }

    /// Iterates every directed link of a side-`n` *mesh* (edge links that
    /// point off the grid are skipped).
    pub fn all_mesh(n: u32) -> impl Iterator<Item = Link> {
        (0..n).flat_map(move |y| {
            (0..n).flat_map(move |x| {
                ALL_DIRS.into_iter().filter_map(move |dir| {
                    let l = Link::new(Coord::new(x, y), dir);
                    match l.to() {
                        Some(t) if t.x < n && t.y < n => Some(l),
                        _ => None,
                    }
                })
            })
        })
    }
}

impl core::fmt::Display for Link {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}-{}", self.from, self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let n = 7;
        for y in 0..n {
            for x in 0..n {
                for d in ALL_DIRS {
                    let l = Link::new(Coord::new(x, y), d);
                    assert_eq!(Link::from_index(l.index(n), n), l);
                }
            }
        }
    }

    #[test]
    fn reverse_is_involutive_in_the_interior() {
        let l = Link::new(Coord::new(3, 3), Dir::East);
        let r = l.reverse().unwrap();
        assert_eq!(r.from, Coord::new(4, 3));
        assert_eq!(r.dir, Dir::West);
        assert_eq!(r.reverse().unwrap(), l);
    }

    #[test]
    fn mesh_link_count_is_4n_n_minus_1() {
        for n in [1u32, 2, 4, 8] {
            let count = Link::all_mesh(n).count() as u32;
            assert_eq!(count, 4 * n * (n.saturating_sub(1)));
        }
    }

    #[test]
    fn southwest_corner_has_no_west_reverse_target_confusion() {
        // A West link at x=0 points off the grid: `to()` is None.
        assert_eq!(Link::new(Coord::new(0, 5), Dir::West).to(), None);
        assert_eq!(Link::new(Coord::new(0, 0), Dir::South).reverse(), None);
    }
}
