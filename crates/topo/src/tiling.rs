//! The offset tilings of §6 (Lemma 19 of the paper).
//!
//! Lemma 19: there exist three tilings of the `n × n` mesh with `T × T` tiles
//! (`T = 9d` in the paper's notation) such that any two nodes within distance
//! `T/3` of each other in **both** dimensions are contained in a common tile
//! of at least one tiling. The construction displaces each successive tiling
//! by `T/3` rows *and* `T/3` columns.
//!
//! Tiles of the displaced tilings may extend beyond the physical grid; these
//! are the paper's "virtual tiles" and are represented as unclipped [`Rect`]s.

use crate::coord::Coord;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A single tiling of the plane by `tile × tile` squares whose origins lie at
/// `offset + i * tile` in both dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    /// Side length `T` of each tile.
    pub tile: u32,
    /// Displacement of tile origins (same in x and y, may be negative).
    pub offset: i64,
}

impl Tiling {
    /// Creates a tiling with the given tile side and diagonal displacement.
    pub fn new(tile: u32, offset: i64) -> Tiling {
        assert!(tile > 0, "tile side must be positive");
        Tiling { tile, offset }
    }

    /// The origin (southwest coordinate) of the tile containing position `v`
    /// in one dimension.
    #[inline]
    fn origin_1d(&self, v: i64) -> i64 {
        let t = self.tile as i64;
        (v - self.offset).div_euclid(t) * t + self.offset
    }

    /// The (possibly virtual) tile containing the node `c`.
    #[inline]
    pub fn tile_containing(&self, c: Coord) -> Rect {
        let t = self.tile as i64;
        let x0 = self.origin_1d(c.x as i64);
        let y0 = self.origin_1d(c.y as i64);
        Rect::new(x0, y0, x0 + t - 1, y0 + t - 1)
    }

    /// True if `a` and `b` lie in the same tile of this tiling.
    #[inline]
    pub fn same_tile(&self, a: Coord, b: Coord) -> bool {
        self.origin_1d(a.x as i64) == self.origin_1d(b.x as i64)
            && self.origin_1d(a.y as i64) == self.origin_1d(b.y as i64)
    }

    /// All (virtual) tiles that contain at least one physical node of the
    /// side-`n` grid, in row-major order of their origins.
    pub fn tiles_overlapping(&self, n: u32) -> Vec<Rect> {
        let t = self.tile as i64;
        let first = self.origin_1d(0);
        let last = self.origin_1d(n as i64 - 1);
        let mut out = Vec::new();
        let mut y = first;
        while y <= last {
            let mut x = first;
            while x <= last {
                let tile = Rect::new(x, y, x + t - 1, y + t - 1);
                if !tile.clip(n).is_empty() {
                    out.push(tile);
                }
                x += t;
            }
            y += t;
        }
        out
    }
}

/// The three diagonal tilings of Lemma 19 for a given tile side `T`
/// (which must be divisible by 3).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingSet {
    pub tilings: [Tiling; 3],
}

impl TilingSet {
    /// Builds the three tilings displaced by `0`, `T/3`, and `2T/3`.
    pub fn new(tile: u32) -> TilingSet {
        assert!(
            tile.is_multiple_of(3),
            "Lemma 19 needs the tile side divisible by 3"
        );
        let third = (tile / 3) as i64;
        TilingSet {
            tilings: [
                Tiling::new(tile, 0),
                Tiling::new(tile, -third),
                Tiling::new(tile, -2 * third),
            ],
        }
    }

    /// Tile side `T`.
    pub fn tile(&self) -> u32 {
        self.tilings[0].tile
    }

    /// Returns some tiling index whose tiling puts `a` and `b` in a common
    /// tile, if one exists. Lemma 19 guarantees `Some` whenever
    /// `|a.x - b.x| <= T/3` and `|a.y - b.y| <= T/3`.
    pub fn common_tile(&self, a: Coord, b: Coord) -> Option<usize> {
        (0..3).find(|&i| self.tilings[i].same_tile(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_containing_is_consistent() {
        let t = Tiling::new(9, -3);
        for x in 0..40u32 {
            for y in 0..40u32 {
                let c = Coord::new(x, y);
                let r = t.tile_containing(c);
                assert!(r.contains(c), "{c:?} not in its own tile {r:?}");
                assert_eq!(r.width(), 9);
                assert_eq!(r.height(), 9);
            }
        }
    }

    #[test]
    fn tiles_partition_the_grid() {
        // Every physical node is in exactly one tile of each tiling.
        let n = 27;
        for off in [0i64, -3, -6] {
            let t = Tiling::new(9, off);
            let tiles = t.tiles_overlapping(n);
            let mut count = vec![0u32; (n * n) as usize];
            for tile in &tiles {
                for c in tile.clip(n).coords() {
                    count[(c.y * n + c.x) as usize] += 1;
                }
            }
            assert!(
                count.iter().all(|&c| c == 1),
                "offset {off} not a partition"
            );
        }
    }

    #[test]
    fn lemma_19_coverage() {
        // Any two nodes within T/3 in both dimensions share a tile of one of
        // the three tilings. Exhaustive check on a 54x54 grid with T = 9.
        let n = 54u32;
        let set = TilingSet::new(9);
        let third = 3i64;
        for y in 0..n {
            for x in 0..n {
                let a = Coord::new(x, y);
                for dy in -third..=third {
                    for dx in -third..=third {
                        let (bx, by) = (x as i64 + dx, y as i64 + dy);
                        if bx < 0 || by < 0 || bx >= n as i64 || by >= n as i64 {
                            continue;
                        }
                        let b = Coord::new(bx as u32, by as u32);
                        assert!(
                            set.common_tile(a, b).is_some(),
                            "Lemma 19 violated for {a:?}, {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma_19_sharpness() {
        // The guarantee genuinely fails for some pairs at distance T/3 + 1,
        // confirming our check is not vacuous.
        // Note the failing pairs must be *off-diagonal*: the tilings are
        // displaced diagonally, so diagonal pairs fail the same tilings in
        // both dimensions and stay covered even at distance T/3 + 1.
        let set = TilingSet::new(9);
        let mut found_failure = false;
        'outer: for x in 0..30u32 {
            for y in 0..30u32 {
                let a = Coord::new(x, y);
                let b = Coord::new(x + 4, y + 4);
                if set.common_tile(a, b).is_none() {
                    found_failure = true;
                    break 'outer;
                }
            }
        }
        assert!(found_failure, "distance T/3+1 should not always be covered");
    }

    #[test]
    fn first_tiling_has_no_virtual_tiles() {
        let t = Tiling::new(27, 0);
        for tile in t.tiles_overlapping(81) {
            assert_eq!(tile.clip(81), tile, "aligned tiling should be physical");
        }
        assert_eq!(t.tiles_overlapping(81).len(), 9);
    }

    #[test]
    fn displaced_tiling_has_virtual_edge_tiles() {
        let t = Tiling::new(27, -9);
        let tiles = t.tiles_overlapping(81);
        // 4x4 tile grid once displaced.
        assert_eq!(tiles.len(), 16);
        assert!(tiles.iter().any(|r| r.x0 < 0 || r.y0 < 0));
        assert!(tiles.iter().any(|r| r.x1 >= 81 || r.y1 >= 81));
    }
}
