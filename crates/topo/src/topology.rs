//! The network model of §2: a directed graph whose links come in
//! opposite-direction pairs, instantiated as the `n × n` mesh and torus.

use crate::coord::{Coord, NodeId};
use crate::dir::{Dir, DirSet, ALL_DIRS};

/// A side-`n` grid network (mesh or torus).
///
/// This is the directed graph `G = (V, E)` of §2: `(u, v) ∈ E` iff
/// `(v, u) ∈ E`. The trait also captures *minimal routing* geometry:
///
/// * [`Topology::distance`] — shortest-path length between two nodes;
/// * [`Topology::profitable`] — the set of outlinks that strictly decrease
///   the distance to a destination. A packet follows a minimal path iff every
///   hop uses a profitable outlink.
pub trait Topology: Send + Sync {
    /// Side length `n` of the grid.
    fn side(&self) -> u32;

    /// The neighbor of `node` across its `dir` outlink, or `None` if that
    /// outlink does not exist (mesh edges).
    fn neighbor(&self, node: Coord, dir: Dir) -> Option<Coord>;

    /// Shortest-path (link) distance between two nodes.
    fn distance(&self, a: Coord, b: Coord) -> u32;

    /// The profitable outlinks of a packet at `from` destined for `to`:
    /// exactly those directions `d` with an existing neighbor `v` such that
    /// `distance(v, to) == distance(from, to) - 1`.
    fn profitable(&self, from: Coord, to: Coord) -> DirSet;

    /// Total number of nodes.
    fn num_nodes(&self) -> u32 {
        self.side() * self.side()
    }

    /// Dense id of a node.
    #[inline]
    fn id(&self, c: Coord) -> NodeId {
        NodeId::from_coord(c, self.side())
    }

    /// Coordinate of a dense id.
    #[inline]
    fn coord(&self, id: NodeId) -> Coord {
        id.coord(self.side())
    }

    /// Iterates all node coordinates in row-major order.
    fn coords(&self) -> Box<dyn Iterator<Item = Coord> + '_> {
        let n = self.side();
        Box::new((0..n).flat_map(move |y| (0..n).map(move |x| Coord::new(x, y))))
    }
}

/// The `n × n` mesh (Figure 1 of the paper): no wraparound links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh {
    n: u32,
}

impl Mesh {
    /// Creates a side-`n` mesh (`n >= 1`).
    pub fn new(n: u32) -> Mesh {
        assert!(n >= 1, "mesh side must be at least 1");
        Mesh { n }
    }
}

impl Topology for Mesh {
    #[inline]
    fn side(&self) -> u32 {
        self.n
    }

    #[inline]
    fn neighbor(&self, node: Coord, dir: Dir) -> Option<Coord> {
        let (dx, dy) = dir.delta();
        let x = node.x as i64 + dx;
        let y = node.y as i64 + dy;
        if x < 0 || y < 0 || x >= self.n as i64 || y >= self.n as i64 {
            None
        } else {
            Some(Coord::new(x as u32, y as u32))
        }
    }

    #[inline]
    fn distance(&self, a: Coord, b: Coord) -> u32 {
        a.manhattan(b)
    }

    #[inline]
    fn profitable(&self, from: Coord, to: Coord) -> DirSet {
        // Branchless: each coordinate comparison yields one mask bit
        // (N = bit 0, E = bit 1, S = bit 2, W = bit 3, matching `Dir as u8`).
        // The per-dimension comparisons are mutually exclusive, so this is
        // exactly the old if/else-if chain without the branches.
        let n = (to.y > from.y) as u8;
        let e = ((to.x > from.x) as u8) << 1;
        let s = ((to.y < from.y) as u8) << 2;
        let w = ((to.x < from.x) as u8) << 3;
        DirSet::from_bits(n | e | s | w)
    }
}

/// The `n × n` torus: the mesh plus wraparound links in both dimensions.
///
/// On the torus a dimension may have *two* profitable directions when the
/// destination is exactly `n/2` away in that dimension (both ways around are
/// minimal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    n: u32,
}

impl Torus {
    /// Creates a side-`n` torus (`n >= 2` so opposite links are distinct).
    pub fn new(n: u32) -> Torus {
        assert!(n >= 2, "torus side must be at least 2");
        Torus { n }
    }

    /// Signed shortest displacement from `a` to `b` in one dimension,
    /// in `-(n/2)..=(n/2)`; positive means the increasing direction is
    /// (weakly) shorter.
    #[inline]
    fn wrap_delta(&self, a: u32, b: u32) -> (u32, u32) {
        // (forward, backward) distances.
        let n = self.n;
        let fwd = (b + n - a) % n;
        (fwd, (n - fwd) % n)
    }
}

impl Topology for Torus {
    #[inline]
    fn side(&self) -> u32 {
        self.n
    }

    #[inline]
    fn neighbor(&self, node: Coord, dir: Dir) -> Option<Coord> {
        let n = self.n as i64;
        let (dx, dy) = dir.delta();
        let x = (node.x as i64 + dx).rem_euclid(n);
        let y = (node.y as i64 + dy).rem_euclid(n);
        Some(Coord::new(x as u32, y as u32))
    }

    #[inline]
    fn distance(&self, a: Coord, b: Coord) -> u32 {
        let (fx, bx) = self.wrap_delta(a.x, b.x);
        let (fy, by) = self.wrap_delta(a.y, b.y);
        fx.min(bx) + fy.min(by)
    }

    #[inline]
    fn profitable(&self, from: Coord, to: Coord) -> DirSet {
        // Branchless form of the wrap-distance comparisons. A dimension with
        // zero displacement has fwd == 0 (and bwd == 0 after the mod), so the
        // `fx != 0` guard folds into the comparisons: when fx == 0, bwd is
        // also 0 and both `<=` tests would fire, hence the explicit nonzero
        // factor. Ties (fwd == bwd == n/2) set both bits, as before.
        let (fx, bx) = self.wrap_delta(from.x, to.x);
        let (fy, by) = self.wrap_delta(from.y, to.y);
        let hx = (fx != 0) as u8;
        let hy = (fy != 0) as u8;
        let n = hy & (fy <= by) as u8;
        let e = (hx & (fx <= bx) as u8) << 1;
        let s = (hy & (by <= fy) as u8) << 2;
        let w = (hx & (bx <= fx) as u8) << 3;
        DirSet::from_bits(n | e | s | w)
    }
}

/// Checks the defining property of [`Topology::profitable`] against
/// [`Topology::distance`] by brute force; used by tests of both topologies
/// and available to downstream property tests.
pub fn validate_profitable<T: Topology>(topo: &T, from: Coord, to: Coord) -> bool {
    let claimed = topo.profitable(from, to);
    let d = topo.distance(from, to);
    for dir in ALL_DIRS {
        let is_profitable = match topo.neighbor(from, dir) {
            Some(v) => topo.distance(v, to) + 1 == d,
            None => false,
        };
        if claimed.contains(dir) != is_profitable {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_edges_have_no_neighbor() {
        let m = Mesh::new(4);
        assert_eq!(m.neighbor(Coord::new(0, 0), Dir::West), None);
        assert_eq!(m.neighbor(Coord::new(0, 0), Dir::South), None);
        assert_eq!(m.neighbor(Coord::new(3, 3), Dir::East), None);
        assert_eq!(m.neighbor(Coord::new(3, 3), Dir::North), None);
        assert_eq!(
            m.neighbor(Coord::new(1, 1), Dir::North),
            Some(Coord::new(1, 2))
        );
    }

    #[test]
    fn mesh_profitable_matches_distance_exhaustively() {
        let m = Mesh::new(6);
        for a in m.coords() {
            for b in Mesh::new(6).coords() {
                assert!(
                    validate_profitable(&m, a, b),
                    "mesh profitable wrong at {a:?}->{b:?}"
                );
            }
        }
    }

    #[test]
    fn torus_profitable_matches_distance_exhaustively() {
        for n in [2u32, 3, 4, 5, 6, 7] {
            let t = Torus::new(n);
            for a in t.coords() {
                for b in Torus::new(n).coords() {
                    assert!(
                        validate_profitable(&t, a, b),
                        "torus n={n} profitable wrong at {a:?}->{b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_wraps() {
        let t = Torus::new(5);
        assert_eq!(
            t.neighbor(Coord::new(0, 0), Dir::West),
            Some(Coord::new(4, 0))
        );
        assert_eq!(
            t.neighbor(Coord::new(4, 2), Dir::East),
            Some(Coord::new(0, 2))
        );
        assert_eq!(
            t.neighbor(Coord::new(2, 4), Dir::North),
            Some(Coord::new(2, 0))
        );
        assert_eq!(
            t.neighbor(Coord::new(2, 0), Dir::South),
            Some(Coord::new(2, 4))
        );
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let t = Torus::new(8);
        assert_eq!(t.distance(Coord::new(0, 0), Coord::new(7, 0)), 1);
        assert_eq!(t.distance(Coord::new(0, 0), Coord::new(4, 4)), 8);
        assert_eq!(t.distance(Coord::new(1, 1), Coord::new(1, 1)), 0);
    }

    #[test]
    fn torus_tie_gives_two_profitable_dirs() {
        let t = Torus::new(8);
        // Destination exactly n/2 away horizontally: both E and W profitable.
        let p = t.profitable(Coord::new(0, 0), Coord::new(4, 0));
        assert!(p.contains(Dir::East) && p.contains(Dir::West));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn mesh_profitable_empty_iff_delivered() {
        let m = Mesh::new(9);
        for a in m.coords() {
            assert!(m.profitable(a, a).is_empty());
        }
        assert!(!m.profitable(Coord::new(0, 0), Coord::new(0, 1)).is_empty());
    }

    #[test]
    fn distance_triangle_inequality_spot() {
        let t = Torus::new(9);
        let a = Coord::new(0, 0);
        let b = Coord::new(5, 7);
        let c = Coord::new(8, 3);
        assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    }

    #[test]
    fn coords_iterates_all_nodes() {
        let m = Mesh::new(5);
        assert_eq!(m.coords().count(), 25);
        let t = Torus::new(3);
        assert_eq!(t.coords().count(), 9);
    }
}
