//! # mesh-topo
//!
//! Topology and geometry substrate for the reproduction of
//! Chinn, Leighton & Tompa, *Minimal Adaptive Routing on the Mesh with
//! Bounded Queue Size* (SPAA 1994).
//!
//! This crate knows nothing about packets or routing policies. It provides:
//!
//! * [`Coord`] — a node position. The paper numbers columns 1..n west→east and
//!   rows 1..n south→north; we use the same orientation but 0-based indices
//!   (`x` = column − 1, `y` = row − 1), so `(0, 0)` is the **southwest** corner.
//! * [`Dir`] / [`DirSet`] — the four mesh directions and small sets of them.
//! * [`Topology`] — the directed-graph view of §2 of the paper, implemented by
//!   [`Mesh`] and [`Torus`]. Its key operation is [`Topology::profitable`]:
//!   the set of outlinks that move a packet strictly closer to a destination
//!   (the only destination information a *destination-exchangeable* routing
//!   algorithm may use).
//! * [`Link`] — directed-link identity (`node` × `Dir`, with a dense index),
//!   the naming scheme fault injection uses to point at individual links.
//! * [`Rect`] — inclusive axis-aligned node rectangles (submeshes, boxes,
//!   strips, tiles).
//! * [`tiling`] — the three 1/3-offset tilings of §6 (Lemma 19 of the paper).

pub mod coord;
pub mod dir;
pub mod link;
pub mod rect;
pub mod tiling;
pub mod topology;

pub use coord::{Coord, NodeId};
pub use dir::{Dir, DirIndexError, DirSet, ALL_DIRS};
pub use link::Link;
pub use rect::Rect;
pub use tiling::{Tiling, TilingSet};
pub use topology::{Mesh, Topology, Torus};
