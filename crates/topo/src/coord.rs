//! Node coordinates and identifiers.

use serde::{Deserialize, Serialize};

/// A node position on an `n × n` grid.
///
/// Orientation follows the paper (Figure 1): `x` grows **eastward**, `y` grows
/// **northward**, and `(0, 0)` is the southwest corner. The paper's 1-based
/// "column `c`" is `x = c - 1`; its "row `r`" is `y = r - 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index, 0 at the west edge.
    pub x: u32,
    /// Row index, 0 at the south edge.
    pub y: u32,
}

impl Coord {
    /// Creates a coordinate at column `x`, row `y`.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Coord { x, y }
    }

    /// Manhattan (L1) distance to `other`; the mesh shortest-path length.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Horizontal distance to `other` (number of column moves needed on a mesh).
    #[inline]
    pub fn dx(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x)
    }

    /// Vertical distance to `other` (number of row moves needed on a mesh).
    #[inline]
    pub fn dy(self, other: Coord) -> u32 {
        self.y.abs_diff(other.y)
    }
}

impl core::fmt::Debug for Coord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl core::fmt::Display for Coord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(u32, u32)> for Coord {
    fn from((x, y): (u32, u32)) -> Self {
        Coord { x, y }
    }
}

/// Dense node identifier: row-major index `y * n + x` for a side-`n` grid.
///
/// Using a `u32` index (rather than a `Coord`) for per-node arrays keeps the
/// simulator's hot data structures flat and small.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index, usable directly into per-node arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds the id of the node at `coord` on a side-`n` grid.
    #[inline]
    pub const fn from_coord(coord: Coord, n: u32) -> Self {
        NodeId(coord.y * n + coord.x)
    }

    /// Recovers the coordinate of this node on a side-`n` grid.
    #[inline]
    pub const fn coord(self, n: u32) -> Coord {
        Coord {
            x: self.0 % n,
            y: self.0 / n,
        }
    }
}

impl core::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Coord::new(3, 7);
        let b = Coord::new(10, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 7 + 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn dx_dy_decompose_manhattan() {
        let a = Coord::new(4, 9);
        let b = Coord::new(1, 12);
        assert_eq!(a.dx(b) + a.dy(b), a.manhattan(b));
        assert_eq!(a.dx(b), 3);
        assert_eq!(a.dy(b), 3);
    }

    #[test]
    fn node_id_roundtrip() {
        let n = 17;
        for y in 0..n {
            for x in 0..n {
                let c = Coord::new(x, y);
                assert_eq!(NodeId::from_coord(c, n).coord(n), c);
            }
        }
    }

    #[test]
    fn node_id_is_row_major() {
        assert_eq!(NodeId::from_coord(Coord::new(0, 0), 5), NodeId(0));
        assert_eq!(NodeId::from_coord(Coord::new(4, 0), 5), NodeId(4));
        assert_eq!(NodeId::from_coord(Coord::new(0, 1), 5), NodeId(5));
        assert_eq!(NodeId::from_coord(Coord::new(2, 3), 5), NodeId(17));
    }
}
