//! Inclusive axis-aligned rectangles of nodes.
//!
//! The paper's geometry is built from rectangles: the `cn × cn` corner
//! submesh, the *i-boxes* of the lower-bound construction, and the tiles and
//! strips of the §6 algorithm. [`Rect`] is the shared representation.
//!
//! A `Rect` is allowed to extend beyond the physical grid (coordinates are
//! `i64`): §6 uses "virtual tiles" that hang off the mesh edge. Use
//! [`Rect::clip`] to restrict to physical nodes.

use crate::coord::Coord;
use serde::{Deserialize, Serialize};

/// An inclusive rectangle `[x0, x1] × [y0, y1]` of (possibly virtual) nodes.
///
/// Empty rectangles are represented by `x0 > x1` or `y0 > y1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Rect {
    pub x0: i64,
    pub y0: i64,
    pub x1: i64,
    pub y1: i64,
}

impl Rect {
    /// Creates the rectangle `[x0, x1] × [y0, y1]` (inclusive).
    #[inline]
    pub const fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect { x0, y0, x1, y1 }
    }

    /// A canonical empty rectangle.
    pub const EMPTY: Rect = Rect {
        x0: 0,
        y0: 0,
        x1: -1,
        y1: -1,
    };

    /// The full side-`n` grid.
    #[inline]
    pub const fn full(n: u32) -> Rect {
        Rect::new(0, 0, n as i64 - 1, n as i64 - 1)
    }

    /// True if the rectangle contains no nodes.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.x0 > self.x1 || self.y0 > self.y1
    }

    /// Number of columns (0 if empty).
    #[inline]
    pub const fn width(self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.x1 - self.x0 + 1) as u64
        }
    }

    /// Number of rows (0 if empty).
    #[inline]
    pub const fn height(self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.y1 - self.y0 + 1) as u64
        }
    }

    /// Number of nodes.
    #[inline]
    pub const fn area(self) -> u64 {
        self.width() * self.height()
    }

    /// Membership test for a physical coordinate.
    #[inline]
    pub fn contains(self, c: Coord) -> bool {
        let (x, y) = (c.x as i64, c.y as i64);
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Membership test for a possibly-virtual `(x, y)` position.
    #[inline]
    pub const fn contains_xy(self, x: i64, y: i64) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Intersection with another rectangle.
    #[inline]
    pub fn intersect(self, other: Rect) -> Rect {
        Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        }
    }

    /// Restricts the rectangle to the physical side-`n` grid.
    #[inline]
    pub fn clip(self, n: u32) -> Rect {
        self.intersect(Rect::full(n))
    }

    /// Iterates the physical coordinates inside the rectangle, row-major from
    /// the southwest corner. The rectangle must already lie inside the grid
    /// (use [`Rect::clip`] first); virtual coordinates are skipped defensively.
    pub fn coords(self) -> impl Iterator<Item = Coord> {
        let r = self;
        (r.y0..=r.y1)
            .flat_map(move |y| (r.x0..=r.x1).map(move |x| (x, y)))
            .filter(|&(x, y)| x >= 0 && y >= 0)
            .map(|(x, y)| Coord::new(x as u32, y as u32))
    }

    /// The horizontal strip of this rectangle between rows `y0..=y1`
    /// (absolute coordinates), clipped to the rectangle.
    #[inline]
    pub fn rows(self, y0: i64, y1: i64) -> Rect {
        self.intersect(Rect::new(self.x0, y0, self.x1, y1))
    }

    /// The vertical strip of this rectangle between columns `x0..=x1`
    /// (absolute coordinates), clipped to the rectangle.
    #[inline]
    pub fn cols(self, x0: i64, x1: i64) -> Rect {
        self.intersect(Rect::new(x0, self.y0, x1, self.y1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_dims() {
        let r = Rect::new(2, 3, 5, 4);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 2);
        assert_eq!(r.area(), 8);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_rect() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0);
        assert_eq!(Rect::new(3, 0, 2, 10).area(), 0);
    }

    #[test]
    fn contains_is_inclusive() {
        let r = Rect::new(1, 1, 3, 3);
        assert!(r.contains(Coord::new(1, 1)));
        assert!(r.contains(Coord::new(3, 3)));
        assert!(!r.contains(Coord::new(0, 1)));
        assert!(!r.contains(Coord::new(4, 3)));
        assert!(!r.contains(Coord::new(2, 4)));
    }

    #[test]
    fn clip_virtual_tile() {
        // A virtual tile hanging off the southwest corner.
        let t = Rect::new(-3, -3, 5, 5);
        let c = t.clip(4);
        assert_eq!(c, Rect::new(0, 0, 3, 3));
        assert_eq!(c.area(), 16);
    }

    #[test]
    fn coords_row_major() {
        let r = Rect::new(1, 2, 2, 3);
        let v: Vec<Coord> = r.coords().collect();
        assert_eq!(
            v,
            vec![
                Coord::new(1, 2),
                Coord::new(2, 2),
                Coord::new(1, 3),
                Coord::new(2, 3)
            ]
        );
    }

    #[test]
    fn coords_count_matches_area() {
        let r = Rect::new(0, 0, 6, 9);
        assert_eq!(r.coords().count() as u64, r.area());
    }

    #[test]
    fn rows_and_cols_strips() {
        let tile = Rect::new(0, 0, 8, 8);
        let strip = tile.rows(3, 5);
        assert_eq!(strip, Rect::new(0, 3, 8, 5));
        let col_strip = tile.cols(6, 8);
        assert_eq!(col_strip, Rect::new(6, 0, 8, 8));
        // Strips are clipped to their parent.
        assert_eq!(tile.rows(-2, 100), tile);
    }

    #[test]
    fn intersect_commutative() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(3, 2, 9, 4);
        assert_eq!(a.intersect(b), b.intersect(a));
        assert_eq!(a.intersect(b), Rect::new(3, 2, 5, 4));
    }
}
