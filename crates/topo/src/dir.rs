//! The four mesh directions and compact sets of them.

use serde::{Deserialize, Serialize};

/// One of the four link directions on a mesh or torus.
///
/// Orientation follows the paper: north increases `y`, east increases `x`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dir {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

/// All four directions in a fixed canonical order (N, E, S, W).
///
/// Every per-direction array in the workspace is indexed by `Dir as usize`
/// in this order.
pub const ALL_DIRS: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

impl Dir {
    /// Index into 4-element per-direction arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Builds a direction from its canonical index.
    ///
    /// This is the infallible hot-loop path: callers must guarantee
    /// `i < 4` (the engine's queue-slot loops do so structurally). Untrusted
    /// indices go through `Dir::try_from(i)` instead, which returns a
    /// [`DirIndexError`] rather than panicking.
    #[inline]
    pub const fn from_index(i: usize) -> Dir {
        ALL_DIRS[i]
    }

    /// The opposite direction (the inlink matching this outlink).
    #[inline]
    pub const fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Unit displacement `(dx, dy)` of one hop in this direction.
    #[inline]
    pub const fn delta(self) -> (i64, i64) {
        match self {
            Dir::North => (0, 1),
            Dir::East => (1, 0),
            Dir::South => (0, -1),
            Dir::West => (-1, 0),
        }
    }

    /// True for North/South.
    #[inline]
    pub const fn is_vertical(self) -> bool {
        matches!(self, Dir::North | Dir::South)
    }

    /// True for East/West.
    #[inline]
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Dir::East | Dir::West)
    }
}

/// Error of `Dir::try_from(i)`: the index was not in `0..4`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirIndexError(pub usize);

impl core::fmt::Display for DirIndexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "direction index {} out of range (valid: 0..4)", self.0)
    }
}

impl std::error::Error for DirIndexError {}

impl TryFrom<usize> for Dir {
    type Error = DirIndexError;

    /// Fallible counterpart of [`Dir::from_index`] for untrusted indices.
    #[inline]
    fn try_from(i: usize) -> Result<Dir, DirIndexError> {
        ALL_DIRS.get(i).copied().ok_or(DirIndexError(i))
    }
}

impl core::fmt::Display for Dir {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::East => "E",
            Dir::South => "S",
            Dir::West => "W",
        };
        f.write_str(s)
    }
}

/// A set of directions, packed into one byte.
///
/// This is the "profitable outlinks" type: for a packet on a minimal route it
/// is the complete destination information a destination-exchangeable policy
/// is allowed to inspect (§2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DirSet(u8);

impl DirSet {
    /// The empty set (a delivered packet has no profitable outlinks).
    pub const EMPTY: DirSet = DirSet(0);

    /// The set of all four directions.
    pub const ALL: DirSet = DirSet(0b1111);

    /// Creates a set containing exactly `dir`.
    #[inline]
    pub const fn single(dir: Dir) -> DirSet {
        DirSet(1 << dir as u8)
    }

    /// Reconstitutes a set from its raw bit pattern (bit `d as u8` set means
    /// `d` is a member). Bits above the low four are discarded, so every
    /// input maps to a valid set. Inverse of [`DirSet::bits`].
    #[inline]
    pub const fn from_bits(bits: u8) -> DirSet {
        DirSet(bits & 0b1111)
    }

    /// The raw bit pattern of the set (low four bits, indexed by
    /// `Dir as u8`). Inverse of [`DirSet::from_bits`].
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Builds a set from an iterator of directions.
    pub fn from_dirs(dirs: impl IntoIterator<Item = Dir>) -> DirSet {
        let mut s = DirSet::EMPTY;
        for d in dirs {
            s.insert(d);
        }
        s
    }

    /// Inserts `dir` into the set.
    #[inline]
    pub fn insert(&mut self, dir: Dir) {
        self.0 |= 1 << dir as u8;
    }

    /// Removes `dir` from the set.
    #[inline]
    pub fn remove(&mut self, dir: Dir) {
        self.0 &= !(1 << dir as u8);
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, dir: Dir) -> bool {
        self.0 & (1 << dir as u8) != 0
    }

    /// Number of directions in the set (0..=4).
    #[inline]
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True if the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: DirSet) -> DirSet {
        DirSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: DirSet) -> DirSet {
        DirSet(self.0 & other.0)
    }

    /// Iterates the directions in canonical (N, E, S, W) order.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = Dir> {
        ALL_DIRS.into_iter().filter(move |d| self.contains(*d))
    }

    /// The first direction in canonical order, if any.
    #[inline]
    pub fn first(self) -> Option<Dir> {
        self.iter().next()
    }
}

impl FromIterator<Dir> for DirSet {
    fn from_iter<T: IntoIterator<Item = Dir>>(iter: T) -> Self {
        DirSet::from_dirs(iter)
    }
}

impl core::fmt::Debug for DirSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{{")?;
        for d in self.iter() {
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in ALL_DIRS {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn delta_cancels_with_opposite() {
        for d in ALL_DIRS {
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!(dx + ox, 0);
            assert_eq!(dy + oy, 0);
        }
    }

    #[test]
    fn index_roundtrip() {
        for d in ALL_DIRS {
            assert_eq!(Dir::from_index(d.index()), d);
        }
    }

    #[test]
    fn try_from_accepts_valid_and_rejects_invalid() {
        for d in ALL_DIRS {
            assert_eq!(Dir::try_from(d.index()), Ok(d));
        }
        for bad in [4usize, 5, 100, usize::MAX] {
            let err = Dir::try_from(bad).unwrap_err();
            assert_eq!(err, DirIndexError(bad));
            assert!(err.to_string().contains("out of range"));
        }
    }

    #[test]
    fn vertical_horizontal_partition() {
        for d in ALL_DIRS {
            assert!(d.is_vertical() ^ d.is_horizontal());
        }
    }

    #[test]
    fn dirset_basic_ops() {
        let mut s = DirSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Dir::North);
        s.insert(Dir::West);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Dir::North));
        assert!(s.contains(Dir::West));
        assert!(!s.contains(Dir::East));
        s.remove(Dir::North);
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(Dir::West));
    }

    #[test]
    fn dirset_iter_is_canonical_order() {
        let s = DirSet::from_dirs([Dir::West, Dir::North, Dir::East]);
        let v: Vec<Dir> = s.iter().collect();
        assert_eq!(v, vec![Dir::North, Dir::East, Dir::West]);
    }

    #[test]
    fn dirset_union_intersection() {
        let a = DirSet::from_dirs([Dir::North, Dir::East]);
        let b = DirSet::from_dirs([Dir::East, Dir::South]);
        assert_eq!(
            a.union(b),
            DirSet::from_dirs([Dir::North, Dir::East, Dir::South])
        );
        assert_eq!(a.intersection(b), DirSet::single(Dir::East));
    }

    #[test]
    fn dirset_all_contains_everything() {
        for d in ALL_DIRS {
            assert!(DirSet::ALL.contains(d));
        }
        assert_eq!(DirSet::ALL.len(), 4);
    }
}
