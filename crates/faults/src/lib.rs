//! # mesh-faults
//!
//! Deterministic fault injection for the CLT94 mesh simulator.
//!
//! The paper's model (§2) assumes a perfect synchronous network. This crate
//! supplies the *second* adversary the reproduction grows toward production
//! robustness with — not the §3 destination exchanger (that lives in the
//! engine's `StepHook`), but hardware-style failures:
//!
//! * **link faults** — a directed link carries nothing during an interval;
//! * **node stalls** — a node skips scheduling entirely for an interval: it
//!   neither sends, accepts, nor injects;
//! * **queue degradation** — a node loses queue slots for an interval: new
//!   acceptances are clamped to the reduced capacity (residents already over
//!   it are never evicted — they drain naturally);
//! * **lossy links** — a directed link *destroys* every packet transmitted
//!   across it during an interval. Where a down link blocks the move (the
//!   packet stays queued at its sender), a lossy link eats the packet — the
//!   failure mode `mesh-reliable`'s retransmission layer recovers from.
//!
//! Everything is specified up front in a [`FaultPlan`] — a pure value, built
//! by hand or drawn from a seed via [`FaultPlan::random`] — and compiled
//! once into [`CompiledFaults`], the query structure both the engine and the
//! `FaultAware` router wrapper consult. Identical plans produce identical
//! runs: fault injection never consults a clock, thread id, or global RNG,
//! so the PR-1 byte-identical-across-`--threads` invariant is preserved.
//!
//! Faults compose with the §3 exchange adversary: the engine filters faulted
//! transmissions *before* the hook observes the schedule, so the exchanger
//! only ever sees moves that can actually happen.

pub mod compiled;
pub mod error;
pub mod plan;

pub use compiled::{ActiveFault, CompiledFaults};
pub use error::FaultPlanError;
pub use plan::{FaultPlan, LinkFault, NodeStall, QueueDegrade};

/// SplitMix64 — the crate's only source of pseudo-randomness, kept local so
/// plan generation cannot drift with a vendored RNG's implementation.
#[inline]
pub(crate) fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
