//! Fault plans: declarative, seedable descriptions of what breaks when.

use crate::compiled::CompiledFaults;
use crate::error::FaultPlanError;
use crate::splitmix64;
use mesh_topo::{Coord, Dir, Link};
use serde::{Deserialize, Serialize};

/// A directed link carries nothing during `[from, until)` steps
/// (`until = None` means forever). Step numbering matches the engine's
/// 0-based step counter: a fault with `from = 0` is active from the first
/// simulated step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFault {
    pub link: Link,
    pub from: u64,
    pub until: Option<u64>,
}

/// A node skips scheduling during `[from, until)`: it neither sends,
/// accepts, nor injects. Packets it holds are frozen in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStall {
    pub node: Coord,
    pub from: u64,
    pub until: Option<u64>,
}

/// A node loses `slots` queue slots during `[from, until)`: every bounded
/// queue of the node accepts only while its occupancy is below
/// `capacity − slots` (floored at zero). Residents over the degraded
/// capacity are never evicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDegrade {
    pub node: Coord,
    pub slots: u32,
    pub from: u64,
    pub until: Option<u64>,
}

/// A complete fault schedule for one simulation on a side-`n` grid.
///
/// Plans are plain data: build them field by field, with the fluent helpers,
/// or from a seed with [`FaultPlan::random`] /
/// [`FaultPlan::random_outages`]. Compile with [`FaultPlan::compile`] (or
/// the non-panicking [`FaultPlan::try_compile`]) before handing to the
/// engine or to `FaultAware`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub n: u32,
    pub links: Vec<LinkFault>,
    pub stalls: Vec<NodeStall>,
    pub degrades: Vec<QueueDegrade>,
    /// Lossy links: a packet transmitted over the link during `[from, until)`
    /// is *destroyed* instead of arriving. Unlike a down link (which blocks
    /// the move, leaving the packet at its sender), a lossy link silently
    /// eats traffic — the failure mode the reliable-transport layer exists
    /// to recover from. Reuses [`LinkFault`] for the interval shape.
    pub losses: Vec<LinkFault>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fails. The engine treats it exactly like
    /// running without a fault layer (zero behavior change, test-enforced).
    pub fn none(n: u32) -> FaultPlan {
        FaultPlan {
            n,
            ..FaultPlan::default()
        }
    }

    /// True when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.stalls.is_empty()
            && self.degrades.is_empty()
            && self.losses.is_empty()
    }

    /// Adds a one-direction link fault over `[from, until)`.
    pub fn link_down(mut self, node: Coord, dir: Dir, from: u64, until: Option<u64>) -> Self {
        self.links.push(LinkFault {
            link: Link::new(node, dir),
            from,
            until,
        });
        self
    }

    /// Adds a both-directions (cable-cut) link fault over `[from, until)`.
    pub fn cable_cut(mut self, node: Coord, dir: Dir, from: u64, until: Option<u64>) -> Self {
        let link = Link::new(node, dir);
        self.links.push(LinkFault { link, from, until });
        if let Some(rev) = link.reverse() {
            self.links.push(LinkFault {
                link: rev,
                from,
                until,
            });
        }
        self
    }

    /// Adds a node stall over `[from, until)`.
    pub fn stall(mut self, node: Coord, from: u64, until: Option<u64>) -> Self {
        self.stalls.push(NodeStall { node, from, until });
        self
    }

    /// Adds a queue degradation of `slots` slots over `[from, until)`.
    pub fn degrade(mut self, node: Coord, slots: u32, from: u64, until: Option<u64>) -> Self {
        self.degrades.push(QueueDegrade {
            node,
            slots,
            from,
            until,
        });
        self
    }

    /// Makes the one-direction `dir` outlink of `node` lossy over
    /// `[from, until)`: packets transmitted across it are destroyed.
    pub fn lossy(mut self, node: Coord, dir: Dir, from: u64, until: Option<u64>) -> Self {
        self.losses.push(LinkFault {
            link: Link::new(node, dir),
            from,
            until,
        });
        self
    }

    /// Makes both directions of a cable lossy over `[from, until)`.
    pub fn lossy_cable(mut self, node: Coord, dir: Dir, from: u64, until: Option<u64>) -> Self {
        let link = Link::new(node, dir);
        self.losses.push(LinkFault { link, from, until });
        if let Some(rev) = link.reverse() {
            self.losses.push(LinkFault {
                link: rev,
                from,
                until,
            });
        }
        self
    }

    /// Draws a random plan: each *cable* (opposite-direction link pair) of
    /// the mesh fails independently with probability `density`, for a down
    /// interval starting uniformly in `[0, horizon)` and lasting between
    /// `horizon/8` and `horizon/2` steps; additionally, each node stalls
    /// with probability `density/4` for a `horizon/8`-to-`horizon/4`
    /// interval, and degrades one queue slot with probability `density/4`
    /// for an interval of the same shape.
    ///
    /// Fully determined by `(n, density, horizon, seed)` — no global RNG.
    pub fn random(n: u32, density: f64, horizon: u64, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::none(n);
        if density <= 0.0 || horizon == 0 {
            return plan;
        }
        // Distinct stream per fault class so adding classes never shifts
        // another class's draws.
        let mut s_link = seed ^ 0x11d3_a6fb_0a5c_4e97;
        let mut s_stall = seed ^ 0x5bd1_e995_7b42_d1c3;
        let mut s_deg = seed ^ 0xc2b2_ae3d_27d4_eb4f;
        let unit = |r: u64| (r >> 11) as f64 / (1u64 << 53) as f64;
        let interval = |s: &mut u64, lo_div: u64, hi_div: u64| {
            let from = splitmix64(s) % horizon;
            let lo = (horizon / lo_div).max(1);
            let hi = (horizon / hi_div).max(lo + 1);
            let len = lo + splitmix64(s) % (hi - lo);
            (from, Some(from + len))
        };
        for link in Link::all_mesh(n) {
            // One draw per cable: visit each undirected pair once, from its
            // East/North endpoint.
            if !matches!(link.dir, Dir::East | Dir::North) {
                continue;
            }
            if unit(splitmix64(&mut s_link)) < density {
                let (from, until) = interval(&mut s_link, 8, 2);
                plan = plan.cable_cut(link.from, link.dir, from, until);
            } else {
                // Keep the stream aligned regardless of the branch taken.
                let _ = splitmix64(&mut s_link);
                let _ = splitmix64(&mut s_link);
            }
        }
        for y in 0..n {
            for x in 0..n {
                let node = Coord::new(x, y);
                if unit(splitmix64(&mut s_stall)) < density / 4.0 {
                    let (from, until) = interval(&mut s_stall, 8, 4);
                    plan = plan.stall(node, from, until);
                } else {
                    let _ = splitmix64(&mut s_stall);
                    let _ = splitmix64(&mut s_stall);
                }
                if unit(splitmix64(&mut s_deg)) < density / 4.0 {
                    let (from, until) = interval(&mut s_deg, 8, 4);
                    plan = plan.degrade(node, 1, from, until);
                } else {
                    let _ = splitmix64(&mut s_deg);
                    let _ = splitmix64(&mut s_deg);
                }
            }
        }
        plan
    }

    /// Draws a transient-outage plan: every fault interval is finite, no
    /// node ever stalls or loses queue slots, and no link goes permanently
    /// down — the network always heals, but while an outage is active its
    /// cable silently *loses* every packet sent across it, and with
    /// probability `density/4` a cable additionally goes down (blocking,
    /// not lossy) for a shorter interval. This is the adversary the
    /// reliable-transport layer is built against: raw dynamic injection
    /// loses packets under it, while retransmission recovers them.
    ///
    /// Loss intervals start uniformly in `[0, horizon)` and last between
    /// `horizon/8` and `horizon/2` steps. Fully determined by
    /// `(n, density, horizon, seed)`; its draw streams are independent of
    /// [`FaultPlan::random`]'s, so existing recorded chaos tables never
    /// shift.
    pub fn random_outages(n: u32, density: f64, horizon: u64, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::none(n);
        if density <= 0.0 || horizon == 0 {
            return plan;
        }
        let mut s_loss = seed ^ 0x9f86_3ca1_5dd0_13b7;
        let mut s_down = seed ^ 0x37e4_91ab_64f2_0c55;
        let unit = |r: u64| (r >> 11) as f64 / (1u64 << 53) as f64;
        let interval = |s: &mut u64, lo_div: u64, hi_div: u64| {
            let from = splitmix64(s) % horizon;
            let lo = (horizon / lo_div).max(1);
            let hi = (horizon / hi_div).max(lo + 1);
            let len = lo + splitmix64(s) % (hi - lo);
            (from, Some(from + len))
        };
        for link in Link::all_mesh(n) {
            // One draw per cable, visited from its East/North endpoint.
            if !matches!(link.dir, Dir::East | Dir::North) {
                continue;
            }
            if unit(splitmix64(&mut s_loss)) < density {
                let (from, until) = interval(&mut s_loss, 8, 2);
                plan = plan.lossy_cable(link.from, link.dir, from, until);
            } else {
                let _ = splitmix64(&mut s_loss);
                let _ = splitmix64(&mut s_loss);
            }
            if unit(splitmix64(&mut s_down)) < density / 4.0 {
                let (from, until) = interval(&mut s_down, 8, 4);
                plan = plan.cable_cut(link.from, link.dir, from, until);
            } else {
                let _ = splitmix64(&mut s_down);
                let _ = splitmix64(&mut s_down);
            }
        }
        plan
    }

    /// Checks the plan for construction mistakes that `CompiledFaults`
    /// would otherwise accept silently: empty or inverted intervals,
    /// out-of-grid coordinates, duplicate link entries, and zero-slot
    /// degradations (a no-op that almost certainly meant `slots >= 1`).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let check_interval = |what: &'static str, from: u64, until: Option<u64>| match until {
            Some(u) if u <= from => Err(FaultPlanError::EmptyInterval {
                what,
                from,
                until: u,
            }),
            _ => Ok(()),
        };
        let check_node = |what: &'static str, node: Coord| {
            if node.x >= self.n || node.y >= self.n {
                Err(FaultPlanError::OutOfBounds {
                    what,
                    node,
                    n: self.n,
                })
            } else {
                Ok(())
            }
        };
        let check_links = |what: &'static str, faults: &[LinkFault]| {
            let mut seen = std::collections::HashSet::new();
            for lf in faults {
                check_interval(what, lf.from, lf.until)?;
                check_node(what, lf.link.from)?;
                match lf.link.to() {
                    Some(to) if to.x < self.n && to.y < self.n => {}
                    _ => {
                        return Err(FaultPlanError::OutOfBounds {
                            what,
                            node: lf.link.from,
                            n: self.n,
                        })
                    }
                }
                if !seen.insert((lf.link, lf.from, lf.until)) {
                    return Err(FaultPlanError::DuplicateLink {
                        what,
                        link: lf.link,
                        from: lf.from,
                        until: lf.until,
                    });
                }
            }
            Ok(())
        };
        check_links("link-down", &self.links)?;
        check_links("lossy-link", &self.losses)?;
        for st in &self.stalls {
            check_interval("stall", st.from, st.until)?;
            check_node("stall", st.node)?;
        }
        for dg in &self.degrades {
            check_interval("degrade", dg.from, dg.until)?;
            check_node("degrade", dg.node)?;
            if dg.slots == 0 {
                return Err(FaultPlanError::ZeroSlotDegrade { node: dg.node });
            }
        }
        Ok(())
    }

    /// Validates, then compiles the plan into the interval-query structure
    /// the engine and `FaultAware` consult.
    pub fn try_compile(&self) -> Result<CompiledFaults, FaultPlanError> {
        self.validate()?;
        Ok(CompiledFaults::new(self))
    }

    /// [`FaultPlan::try_compile`], panicking on an invalid plan (a
    /// construction bug, not a runtime condition).
    pub fn compile(&self) -> CompiledFaults {
        match self.try_compile() {
            Ok(c) => c,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(12, 0.1, 1000, 42);
        let b = FaultPlan::random(12, 0.1, 1000, 42);
        assert_eq!(a, b);
        let c = FaultPlan::random(12, 0.1, 1000, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn zero_density_is_empty() {
        assert!(FaultPlan::random(8, 0.0, 1000, 7).is_empty());
        assert!(FaultPlan::none(8).is_empty());
    }

    #[test]
    fn density_scales_fault_count() {
        let lo = FaultPlan::random(16, 0.02, 1000, 5);
        let hi = FaultPlan::random(16, 0.3, 1000, 5);
        assert!(hi.links.len() > lo.links.len());
    }

    #[test]
    fn cable_cut_adds_both_directions() {
        let p = FaultPlan::none(8).cable_cut(Coord::new(2, 3), Dir::East, 5, Some(10));
        assert_eq!(p.links.len(), 2);
        assert_eq!(p.links[0].link, Link::new(Coord::new(2, 3), Dir::East));
        assert_eq!(p.links[1].link, Link::new(Coord::new(3, 3), Dir::West));
    }

    #[test]
    fn plans_roundtrip_through_serde() {
        let p = FaultPlan::random(8, 0.2, 500, 9)
            .stall(Coord::new(1, 1), 3, None)
            .degrade(Coord::new(2, 2), 1, 0, Some(50))
            .lossy(Coord::new(3, 3), Dir::East, 2, Some(9));
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn random_ignores_losses_so_recorded_chaos_tables_never_shift() {
        // `random_outages` must not perturb `random`'s draw streams and
        // vice versa: `random` still produces zero loss faults.
        let p = FaultPlan::random(12, 0.3, 1000, 42);
        assert!(p.losses.is_empty());
        assert!(!p.links.is_empty());
    }

    #[test]
    fn random_outages_are_transient_and_lossy() {
        let p = FaultPlan::random_outages(16, 0.25, 128, 7);
        assert!(!p.losses.is_empty(), "density 0.25 must draw some outages");
        assert!(p.stalls.is_empty() && p.degrades.is_empty());
        for f in p.losses.iter().chain(p.links.iter()) {
            let until = f.until.expect("no permanent faults in an outage plan");
            assert!(until > f.from);
        }
        assert_eq!(p, FaultPlan::random_outages(16, 0.25, 128, 7));
        assert_ne!(p, FaultPlan::random_outages(16, 0.25, 128, 8));
        assert!(p.validate().is_ok());
        assert!(FaultPlan::random_outages(16, 0.0, 128, 7).is_empty());
    }

    #[test]
    fn validate_rejects_empty_and_inverted_intervals() {
        let p = FaultPlan::none(8).link_down(Coord::new(1, 1), Dir::East, 10, Some(10));
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::EmptyInterval {
                what: "link-down",
                from: 10,
                until: 10
            })
        ));
        let p = FaultPlan::none(8).stall(Coord::new(0, 0), 20, Some(5));
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::EmptyInterval { .. })
        ));
        assert!(p.try_compile().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_link_entries() {
        let p = FaultPlan::none(8)
            .link_down(Coord::new(2, 2), Dir::North, 0, Some(9))
            .link_down(Coord::new(2, 2), Dir::North, 0, Some(9));
        match p.validate() {
            Err(FaultPlanError::DuplicateLink { what, link, .. }) => {
                assert_eq!(what, "link-down");
                assert_eq!(link, Link::new(Coord::new(2, 2), Dir::North));
            }
            other => panic!("expected DuplicateLink, got {other:?}"),
        }
        // Same link with a *different* interval is fine (back-to-back outages).
        let p = FaultPlan::none(8)
            .lossy(Coord::new(2, 2), Dir::North, 0, Some(9))
            .lossy(Coord::new(2, 2), Dir::North, 20, Some(30));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_grid_faults() {
        // Node outside the grid.
        let p = FaultPlan::none(4).stall(Coord::new(7, 0), 0, None);
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::OutOfBounds { .. })
        ));
        // Link pointing off the grid edge can never carry anything.
        let p = FaultPlan::none(4).link_down(Coord::new(3, 0), Dir::East, 0, None);
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::OutOfBounds { .. })
        ));
        // Zero-slot degradation is a silent no-op: reject.
        let p = FaultPlan::none(4).degrade(Coord::new(1, 1), 0, 0, Some(5));
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::ZeroSlotDegrade { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn compile_panics_on_invalid_plans() {
        let _ = FaultPlan::none(8)
            .lossy(Coord::new(1, 1), Dir::East, 5, Some(5))
            .compile();
    }
}
