//! Fault plans: declarative, seedable descriptions of what breaks when.

use crate::compiled::CompiledFaults;
use crate::splitmix64;
use mesh_topo::{Coord, Dir, Link};
use serde::{Deserialize, Serialize};

/// A directed link carries nothing during `[from, until)` steps
/// (`until = None` means forever). Step numbering matches the engine's
/// 0-based step counter: a fault with `from = 0` is active from the first
/// simulated step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFault {
    pub link: Link,
    pub from: u64,
    pub until: Option<u64>,
}

/// A node skips scheduling during `[from, until)`: it neither sends,
/// accepts, nor injects. Packets it holds are frozen in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStall {
    pub node: Coord,
    pub from: u64,
    pub until: Option<u64>,
}

/// A node loses `slots` queue slots during `[from, until)`: every bounded
/// queue of the node accepts only while its occupancy is below
/// `capacity − slots` (floored at zero). Residents over the degraded
/// capacity are never evicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDegrade {
    pub node: Coord,
    pub slots: u32,
    pub from: u64,
    pub until: Option<u64>,
}

/// A complete fault schedule for one simulation on a side-`n` grid.
///
/// Plans are plain data: build them field by field, with the fluent helpers,
/// or from a seed with [`FaultPlan::random`]. Compile with
/// [`FaultPlan::compile`] before handing to the engine or to `FaultAware`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub n: u32,
    pub links: Vec<LinkFault>,
    pub stalls: Vec<NodeStall>,
    pub degrades: Vec<QueueDegrade>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fails. The engine treats it exactly like
    /// running without a fault layer (zero behavior change, test-enforced).
    pub fn none(n: u32) -> FaultPlan {
        FaultPlan {
            n,
            ..FaultPlan::default()
        }
    }

    /// True when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.stalls.is_empty() && self.degrades.is_empty()
    }

    /// Adds a one-direction link fault over `[from, until)`.
    pub fn link_down(mut self, node: Coord, dir: Dir, from: u64, until: Option<u64>) -> Self {
        self.links.push(LinkFault {
            link: Link::new(node, dir),
            from,
            until,
        });
        self
    }

    /// Adds a both-directions (cable-cut) link fault over `[from, until)`.
    pub fn cable_cut(mut self, node: Coord, dir: Dir, from: u64, until: Option<u64>) -> Self {
        let link = Link::new(node, dir);
        self.links.push(LinkFault { link, from, until });
        if let Some(rev) = link.reverse() {
            self.links.push(LinkFault {
                link: rev,
                from,
                until,
            });
        }
        self
    }

    /// Adds a node stall over `[from, until)`.
    pub fn stall(mut self, node: Coord, from: u64, until: Option<u64>) -> Self {
        self.stalls.push(NodeStall { node, from, until });
        self
    }

    /// Adds a queue degradation of `slots` slots over `[from, until)`.
    pub fn degrade(mut self, node: Coord, slots: u32, from: u64, until: Option<u64>) -> Self {
        self.degrades.push(QueueDegrade {
            node,
            slots,
            from,
            until,
        });
        self
    }

    /// Draws a random plan: each *cable* (opposite-direction link pair) of
    /// the mesh fails independently with probability `density`, for a down
    /// interval starting uniformly in `[0, horizon)` and lasting between
    /// `horizon/8` and `horizon/2` steps; additionally, each node stalls
    /// with probability `density/4` for a `horizon/8`-to-`horizon/4`
    /// interval, and degrades one queue slot with probability `density/4`
    /// for an interval of the same shape.
    ///
    /// Fully determined by `(n, density, horizon, seed)` — no global RNG.
    pub fn random(n: u32, density: f64, horizon: u64, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::none(n);
        if density <= 0.0 || horizon == 0 {
            return plan;
        }
        // Distinct stream per fault class so adding classes never shifts
        // another class's draws.
        let mut s_link = seed ^ 0x11d3_a6fb_0a5c_4e97;
        let mut s_stall = seed ^ 0x5bd1_e995_7b42_d1c3;
        let mut s_deg = seed ^ 0xc2b2_ae3d_27d4_eb4f;
        let unit = |r: u64| (r >> 11) as f64 / (1u64 << 53) as f64;
        let interval = |s: &mut u64, lo_div: u64, hi_div: u64| {
            let from = splitmix64(s) % horizon;
            let lo = (horizon / lo_div).max(1);
            let hi = (horizon / hi_div).max(lo + 1);
            let len = lo + splitmix64(s) % (hi - lo);
            (from, Some(from + len))
        };
        for link in Link::all_mesh(n) {
            // One draw per cable: visit each undirected pair once, from its
            // East/North endpoint.
            if !matches!(link.dir, Dir::East | Dir::North) {
                continue;
            }
            if unit(splitmix64(&mut s_link)) < density {
                let (from, until) = interval(&mut s_link, 8, 2);
                plan = plan.cable_cut(link.from, link.dir, from, until);
            } else {
                // Keep the stream aligned regardless of the branch taken.
                let _ = splitmix64(&mut s_link);
                let _ = splitmix64(&mut s_link);
            }
        }
        for y in 0..n {
            for x in 0..n {
                let node = Coord::new(x, y);
                if unit(splitmix64(&mut s_stall)) < density / 4.0 {
                    let (from, until) = interval(&mut s_stall, 8, 4);
                    plan = plan.stall(node, from, until);
                } else {
                    let _ = splitmix64(&mut s_stall);
                    let _ = splitmix64(&mut s_stall);
                }
                if unit(splitmix64(&mut s_deg)) < density / 4.0 {
                    let (from, until) = interval(&mut s_deg, 8, 4);
                    plan = plan.degrade(node, 1, from, until);
                } else {
                    let _ = splitmix64(&mut s_deg);
                    let _ = splitmix64(&mut s_deg);
                }
            }
        }
        plan
    }

    /// Compiles the plan into the interval-query structure the engine and
    /// `FaultAware` consult.
    pub fn compile(&self) -> CompiledFaults {
        CompiledFaults::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(12, 0.1, 1000, 42);
        let b = FaultPlan::random(12, 0.1, 1000, 42);
        assert_eq!(a, b);
        let c = FaultPlan::random(12, 0.1, 1000, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn zero_density_is_empty() {
        assert!(FaultPlan::random(8, 0.0, 1000, 7).is_empty());
        assert!(FaultPlan::none(8).is_empty());
    }

    #[test]
    fn density_scales_fault_count() {
        let lo = FaultPlan::random(16, 0.02, 1000, 5);
        let hi = FaultPlan::random(16, 0.3, 1000, 5);
        assert!(hi.links.len() > lo.links.len());
    }

    #[test]
    fn cable_cut_adds_both_directions() {
        let p = FaultPlan::none(8).cable_cut(Coord::new(2, 3), Dir::East, 5, Some(10));
        assert_eq!(p.links.len(), 2);
        assert_eq!(p.links[0].link, Link::new(Coord::new(2, 3), Dir::East));
        assert_eq!(p.links[1].link, Link::new(Coord::new(3, 3), Dir::West));
    }

    #[test]
    fn plans_roundtrip_through_serde() {
        let p = FaultPlan::random(8, 0.2, 500, 9)
            .stall(Coord::new(1, 1), 3, None)
            .degrade(Coord::new(2, 2), 1, 0, Some(50));
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
