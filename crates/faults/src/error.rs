//! Typed fault-plan construction errors.
//!
//! `CompiledFaults` happily answers point queries for any interval table,
//! including ones that can never match (`until <= from`) or that double-count
//! a link; [`FaultPlan::validate`](crate::FaultPlan::validate) rejects such
//! plans up front with one of these errors instead of letting the sweep run
//! with a silently inert (or doubled) fault.

use mesh_topo::{Coord, Link};

/// Why a [`FaultPlan`](crate::FaultPlan) failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// An interval with `until <= from` can never be active.
    EmptyInterval {
        /// Fault class ("link-down", "lossy-link", "stall", "degrade").
        what: &'static str,
        from: u64,
        until: u64,
    },
    /// The same link appears twice with the identical interval in one fault
    /// class — almost always a copy-paste bug, and for degradations-like
    /// summed semantics it would double the effect silently.
    DuplicateLink {
        what: &'static str,
        link: Link,
        from: u64,
        until: Option<u64>,
    },
    /// A coordinate (or a link endpoint) lies outside the side-`n` grid.
    OutOfBounds {
        what: &'static str,
        node: Coord,
        n: u32,
    },
    /// A queue degradation of zero slots is a no-op.
    ZeroSlotDegrade { node: Coord },
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPlanError::EmptyInterval { what, from, until } => {
                write!(f, "{what} fault has empty interval [{from}, {until})")
            }
            FaultPlanError::DuplicateLink {
                what,
                link,
                from,
                until,
            } => match until {
                Some(u) => write!(f, "duplicate {what} entry for {link} over [{from}, {u})"),
                None => write!(f, "duplicate {what} entry for {link} from step {from}"),
            },
            FaultPlanError::OutOfBounds { what, node, n } => {
                write!(f, "{what} fault at {node} is outside the {n}x{n} grid")
            }
            FaultPlanError::ZeroSlotDegrade { node } => {
                write!(f, "degrade of 0 slots at {node} is a no-op")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::Dir;

    #[test]
    fn display_names_the_problem() {
        let e = FaultPlanError::EmptyInterval {
            what: "stall",
            from: 10,
            until: 10,
        };
        assert_eq!(e.to_string(), "stall fault has empty interval [10, 10)");
        let d = FaultPlanError::DuplicateLink {
            what: "lossy-link",
            link: Link::new(Coord::new(1, 2), Dir::East),
            from: 0,
            until: Some(5),
        };
        assert!(d.to_string().contains("duplicate lossy-link entry"));
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(FaultPlanError::ZeroSlotDegrade {
            node: Coord::new(0, 0),
        });
        assert!(e.to_string().contains("no-op"));
    }
}
