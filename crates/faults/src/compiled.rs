//! The compiled form of a fault plan: per-entity interval tables with
//! O(log intervals) point queries, plus step-indexed enumeration of active
//! faults for diagnostics.

use crate::plan::FaultPlan;
use mesh_topo::{Coord, Dir, Link};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sorted, possibly-overlapping `[from, until)` intervals with a payload.
/// `u64::MAX` encodes "forever".
type Intervals = Vec<(u64, u64, u32)>;

fn push_interval(
    map: &mut HashMap<u32, Intervals>,
    key: u32,
    from: u64,
    until: Option<u64>,
    load: u32,
) {
    map.entry(key)
        .or_default()
        .push((from, until.unwrap_or(u64::MAX), load));
}

fn finish(map: &mut HashMap<u32, Intervals>) {
    for v in map.values_mut() {
        v.sort_unstable();
    }
}

/// Sum of payloads of intervals containing `step` (intervals are sorted by
/// start; entity fault lists are tiny, so a linear scan is fine and simpler
/// than interval trees).
fn active_load(intervals: Option<&Intervals>, step: u64) -> u32 {
    let Some(iv) = intervals else { return 0 };
    iv.iter()
        .take_while(|&&(from, _, _)| from <= step)
        .filter(|&&(_, until, _)| step < until)
        .map(|&(_, _, load)| load)
        .sum()
}

/// One fault active at a queried step — the diagnostic view embedded in the
/// engine's failure snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActiveFault {
    LinkDown(Link),
    NodeStalled(Coord),
    QueueDegraded { node: Coord, slots: u32 },
    LinkLossy(Link),
}

impl core::fmt::Display for ActiveFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ActiveFault::LinkDown(l) => write!(f, "link {l} down"),
            ActiveFault::NodeStalled(c) => write!(f, "node {c} stalled"),
            ActiveFault::QueueDegraded { node, slots } => {
                write!(f, "node {node} degraded by {slots} slot(s)")
            }
            ActiveFault::LinkLossy(l) => write!(f, "link {l} lossy"),
        }
    }
}

/// A [`FaultPlan`] compiled for point queries. Cheap to clone relative to a
/// simulation; share between a `Sim` and a `FaultAware` router by cloning
/// (or wrap in `Arc`).
#[derive(Clone, Debug, Default)]
pub struct CompiledFaults {
    n: u32,
    empty: bool,
    last_transition: u64,
    links: HashMap<u32, Intervals>,
    stalls: HashMap<u32, Intervals>,
    degrades: HashMap<u32, Intervals>,
    losses: HashMap<u32, Intervals>,
}

impl CompiledFaults {
    pub(crate) fn new(plan: &FaultPlan) -> CompiledFaults {
        let n = plan.n;
        let finite_ends = plan
            .links
            .iter()
            .filter_map(|f| f.until)
            .chain(plan.stalls.iter().filter_map(|f| f.until))
            .chain(plan.degrades.iter().filter_map(|f| f.until))
            .chain(plan.losses.iter().filter_map(|f| f.until));
        let mut c = CompiledFaults {
            n,
            empty: plan.is_empty(),
            last_transition: finite_ends.max().unwrap_or(0),
            links: HashMap::new(),
            stalls: HashMap::new(),
            degrades: HashMap::new(),
            losses: HashMap::new(),
        };
        for lf in &plan.links {
            push_interval(&mut c.links, lf.link.index(n) as u32, lf.from, lf.until, 1);
        }
        for lf in &plan.losses {
            push_interval(&mut c.losses, lf.link.index(n) as u32, lf.from, lf.until, 1);
        }
        for st in &plan.stalls {
            let key = st.node.y * n + st.node.x;
            push_interval(&mut c.stalls, key, st.from, st.until, 1);
        }
        for dg in &plan.degrades {
            let key = dg.node.y * n + dg.node.x;
            push_interval(&mut c.degrades, key, dg.from, dg.until, dg.slots);
        }
        finish(&mut c.links);
        finish(&mut c.stalls);
        finish(&mut c.degrades);
        finish(&mut c.losses);
        c
    }

    /// Grid side the plan was built for.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// True when the source plan had no faults: the engine's fast path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// The last step at which any *finite* fault interval lifts; from this
    /// step on, the fault state never changes again (permanent faults stay).
    /// Watchdogs use this to avoid declaring deadlock while a transient
    /// fault that might still lift is blocking traffic.
    #[inline]
    pub fn last_transition(&self) -> u64 {
        self.last_transition
    }

    /// Is the `dir` outlink of `node` down at `step`?
    #[inline]
    pub fn link_down(&self, step: u64, node: Coord, dir: Dir) -> bool {
        !self.empty
            && active_load(
                self.links.get(&(Link::new(node, dir).index(self.n) as u32)),
                step,
            ) > 0
    }

    /// Is `node` stalled at `step`?
    #[inline]
    pub fn node_stalled(&self, step: u64, node: Coord) -> bool {
        !self.empty && active_load(self.stalls.get(&(node.y * self.n + node.x)), step) > 0
    }

    /// Queue slots lost by `node` at `step` (0 = healthy).
    #[inline]
    pub fn degraded_slots(&self, step: u64, node: Coord) -> u32 {
        if self.empty {
            return 0;
        }
        active_load(self.degrades.get(&(node.y * self.n + node.x)), step)
    }

    /// Is the `dir` outlink of `node` lossy at `step`? A packet transmitted
    /// across a lossy link is destroyed by the engine instead of arriving.
    #[inline]
    pub fn link_lossy(&self, step: u64, node: Coord, dir: Dir) -> bool {
        !self.empty
            && !self.losses.is_empty()
            && active_load(
                self.losses
                    .get(&(Link::new(node, dir).index(self.n) as u32)),
                step,
            ) > 0
    }

    /// True when the plan contains no lossy links at all — lets the engine
    /// skip the per-move loss check entirely for loss-free plans.
    #[inline]
    pub fn has_losses(&self) -> bool {
        !self.losses.is_empty()
    }

    /// Every fault active at `step`, in a deterministic (index-sorted)
    /// order — the diagnostics view.
    pub fn active_at(&self, step: u64) -> Vec<ActiveFault> {
        let mut out = Vec::new();
        let mut link_keys: Vec<u32> = self.links.keys().copied().collect();
        link_keys.sort_unstable();
        for key in link_keys {
            if active_load(self.links.get(&key), step) > 0 {
                out.push(ActiveFault::LinkDown(Link::from_index(
                    key as usize,
                    self.n,
                )));
            }
        }
        let coord = |key: u32| Coord::new(key % self.n, key / self.n);
        let mut stall_keys: Vec<u32> = self.stalls.keys().copied().collect();
        stall_keys.sort_unstable();
        for key in stall_keys {
            if active_load(self.stalls.get(&key), step) > 0 {
                out.push(ActiveFault::NodeStalled(coord(key)));
            }
        }
        let mut deg_keys: Vec<u32> = self.degrades.keys().copied().collect();
        deg_keys.sort_unstable();
        for key in deg_keys {
            let slots = active_load(self.degrades.get(&key), step);
            if slots > 0 {
                out.push(ActiveFault::QueueDegraded {
                    node: coord(key),
                    slots,
                });
            }
        }
        let mut loss_keys: Vec<u32> = self.losses.keys().copied().collect();
        loss_keys.sort_unstable();
        for key in loss_keys {
            if active_load(self.losses.get(&key), step) > 0 {
                out.push(ActiveFault::LinkLossy(Link::from_index(
                    key as usize,
                    self.n,
                )));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_boundaries_are_half_open() {
        let c = FaultPlan::none(8)
            .link_down(Coord::new(1, 1), Dir::East, 10, Some(20))
            .compile();
        let node = Coord::new(1, 1);
        assert!(!c.link_down(9, node, Dir::East));
        assert!(c.link_down(10, node, Dir::East));
        assert!(c.link_down(19, node, Dir::East));
        assert!(!c.link_down(20, node, Dir::East));
        assert!(!c.link_down(10, node, Dir::West), "other dirs unaffected");
    }

    #[test]
    fn forever_faults_never_lift() {
        let c = FaultPlan::none(4)
            .stall(Coord::new(2, 2), 5, None)
            .compile();
        assert!(!c.node_stalled(4, Coord::new(2, 2)));
        assert!(c.node_stalled(u64::MAX - 1, Coord::new(2, 2)));
    }

    #[test]
    fn overlapping_degradations_sum() {
        let c = FaultPlan::none(4)
            .degrade(Coord::new(0, 0), 1, 0, Some(100))
            .degrade(Coord::new(0, 0), 2, 50, Some(60))
            .compile();
        assert_eq!(c.degraded_slots(10, Coord::new(0, 0)), 1);
        assert_eq!(c.degraded_slots(55, Coord::new(0, 0)), 3);
        assert_eq!(c.degraded_slots(60, Coord::new(0, 0)), 1);
    }

    #[test]
    fn active_at_is_sorted_and_complete() {
        let c = FaultPlan::none(8)
            .link_down(Coord::new(3, 0), Dir::North, 0, None)
            .stall(Coord::new(1, 1), 0, Some(10))
            .degrade(Coord::new(2, 2), 1, 0, None)
            .compile();
        let at0 = c.active_at(0);
        assert_eq!(at0.len(), 3);
        assert!(matches!(at0[0], ActiveFault::LinkDown(_)));
        let at50 = c.active_at(50);
        assert_eq!(at50.len(), 2, "stall lifted at step 10");
    }

    #[test]
    fn lossy_intervals_are_half_open_and_independent_of_down() {
        let node = Coord::new(1, 1);
        let c = FaultPlan::none(8)
            .lossy(node, Dir::East, 10, Some(20))
            .compile();
        assert!(c.has_losses());
        assert!(!c.link_lossy(9, node, Dir::East));
        assert!(c.link_lossy(10, node, Dir::East));
        assert!(c.link_lossy(19, node, Dir::East));
        assert!(!c.link_lossy(20, node, Dir::East));
        assert!(!c.link_down(15, node, Dir::East), "lossy is not down");
        assert_eq!(c.last_transition(), 20);
        let at15 = c.active_at(15);
        assert_eq!(
            at15,
            vec![ActiveFault::LinkLossy(Link::new(node, Dir::East))]
        );
        assert_eq!(at15[0].to_string(), "link (1,1)-E lossy");
    }

    #[test]
    fn empty_plan_compiles_to_empty_fast_path() {
        let c = FaultPlan::none(16).compile();
        assert!(c.is_empty());
        assert!(!c.link_down(0, Coord::new(0, 0), Dir::East));
        assert!(c.active_at(0).is_empty());
    }
}
