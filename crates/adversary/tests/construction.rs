//! End-to-end tests of the lower-bound constructions (Theorems 13/14 and the
//! §5 variants): construction invariants, bound certification, and Lemma 12
//! replay equivalence.

use mesh_adversary::dimorder::DimOrderConstruction;
use mesh_adversary::farthest::FarthestFirstConstruction;
use mesh_adversary::{verify_lower_bound, DimOrderParams, GeneralConstruction, GeneralParams};
use mesh_routers::{alt_adaptive, dim_order, theorem15, FarthestFirst};
use mesh_topo::Mesh;

#[test]
fn general_construction_beats_dim_order_k1() {
    let params = GeneralParams::new(216, 1).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, dim_order(1), true);
    assert!(outcome.undelivered_at_bound > 0, "Corollary 9");
    let report = verify_lower_bound(&topo, dim_order(1), &outcome, None);
    assert!(report.undelivered_at_bound > 0, "Theorem 13");
    assert!(report.replay_matches_construction, "Lemma 12");
}

#[test]
fn general_construction_beats_alt_adaptive_k1() {
    let params = GeneralParams::new(216, 1).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, alt_adaptive(1), true);
    assert!(outcome.undelivered_at_bound > 0);
    let report = verify_lower_bound(&topo, alt_adaptive(1), &outcome, None);
    assert!(report.undelivered_at_bound > 0);
    assert!(report.replay_matches_construction);
}

#[test]
fn general_construction_beats_theorem15_k1() {
    // Theorem 15's router is destination-exchangeable, so the Ω(n²/k²)
    // bound applies to it as well (k enters through its inlink queues).
    let params = GeneralParams::new(216, 1).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, theorem15(1), true);
    let report = verify_lower_bound(&topo, theorem15(1), &outcome, Some(2_000_000));
    assert!(report.undelivered_at_bound > 0);
    assert!(report.replay_matches_construction);
    // Theorem 15's router always completes; its time must respect both the
    // lower bound and the O(n²/k + n) upper bound.
    let total = report.completion_steps.expect("theorem15 completes");
    assert!(total >= outcome.bound_steps);
    let n = 216u64;
    assert!(total <= 8 * (n * n + n), "upper bound violated: {total}");
}

#[test]
fn general_construction_k2() {
    let params = GeneralParams::new(384, 2).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(384);
    let outcome = cons.run(&topo, dim_order(2), true);
    let report = verify_lower_bound(&topo, dim_order(2), &outcome, None);
    assert!(report.undelivered_at_bound > 0);
    assert!(report.replay_matches_construction);
}

#[test]
fn dimorder_construction_k1() {
    let params = DimOrderParams::new(216, 1).unwrap();
    let cons = DimOrderConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, dim_order(1));
    assert!(outcome.undelivered_at_bound > 0);
    let report = verify_lower_bound(&topo, dim_order(1), &outcome, None);
    assert!(
        report.undelivered_at_bound > 0,
        "Theorem: Ω(n²/k) for dim order"
    );
    assert!(report.replay_matches_construction);
}

#[test]
fn farthest_first_construction_k1() {
    let params = DimOrderParams::farthest_first(216, 1).unwrap();
    let cons = FarthestFirstConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, FarthestFirst::new(1));
    assert!(outcome.undelivered_at_bound > 0);
    let report = verify_lower_bound(&topo, FarthestFirst::new(1), &outcome, None);
    assert!(report.undelivered_at_bound > 0);
    assert!(
        report.replay_matches_construction,
        "farthest-first exchange commutation failed"
    );
}
