//! Packet classification by destination.
//!
//! A packet's class (`N_i` or `E_i`) is determined by its *current*
//! destination — exchanges move classes between packets, not packets between
//! classes. The map is keyed by destination coordinate (destinations are
//! unique within a class's problem), so classification survives any sequence
//! of exchanges.

use mesh_topo::Coord;
use mesh_traffic::PacketId;
use std::collections::HashMap;

/// A construction packet class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Class {
    /// `N_i`: destined for the N_i-column north of the E_i-row.
    N(u32),
    /// `E_i`: destined for the E_i-row east of the N_i-column.
    E(u32),
}

impl Class {
    /// The box index `i`.
    pub fn index(self) -> u32 {
        match self {
            Class::N(i) | Class::E(i) => i,
        }
    }

    /// True for N-classes.
    pub fn is_n(self) -> bool {
        matches!(self, Class::N(_))
    }
}

/// Destination → class table plus per-class membership lists, maintained
/// under exchanges.
pub struct ClassMap {
    by_dst: HashMap<Coord, Class>,
    /// Current class of each packet (`None` for filler packets).
    class_of: Vec<Option<Class>>,
    /// Packets currently holding each class, keyed `(is_n, i)`.
    members: HashMap<(bool, u32), Vec<PacketId>>,
}

impl ClassMap {
    /// Builds the map from the initial assignment `dst(packet) → class`.
    ///
    /// `dsts[p]` is packet `p`'s initial destination; `classify` gives the
    /// class of each construction destination (or `None` for fillers).
    pub fn new(dsts: &[Coord], classify: impl Fn(Coord) -> Option<Class>) -> ClassMap {
        let mut by_dst = HashMap::new();
        let mut class_of = Vec::with_capacity(dsts.len());
        let mut members: HashMap<(bool, u32), Vec<PacketId>> = HashMap::new();
        for (idx, &d) in dsts.iter().enumerate() {
            let cls = classify(d);
            if let Some(c) = cls {
                // h-h problems send up to h packets to one destination; all
                // share the class of that destination.
                let prev = by_dst.insert(d, c);
                assert!(
                    prev.is_none_or(|p| p == c),
                    "destination {d:?} claimed by two classes"
                );
                members
                    .entry((c.is_n(), c.index()))
                    .or_default()
                    .push(PacketId(idx as u32));
            }
            class_of.push(cls);
        }
        ClassMap {
            by_dst,
            class_of,
            members,
        }
    }

    /// Current class of a packet.
    #[inline]
    pub fn class_of(&self, p: PacketId) -> Option<Class> {
        self.class_of[p.index()]
    }

    /// The class owning destination `d`, if it is a construction destination.
    #[inline]
    pub fn class_of_dst(&self, d: Coord) -> Option<Class> {
        self.by_dst.get(&d).copied()
    }

    /// Packets currently holding class `c`.
    pub fn members(&self, c: Class) -> &[PacketId] {
        self.members
            .get(&(c.is_n(), c.index()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Records that packets `a` and `b` exchanged destinations.
    pub fn record_exchange(&mut self, a: PacketId, b: PacketId) {
        let ca = self.class_of[a.index()];
        let cb = self.class_of[b.index()];
        self.class_of[a.index()] = cb;
        self.class_of[b.index()] = ca;
        if ca != cb {
            if let Some(c) = ca {
                let v = self.members.get_mut(&(c.is_n(), c.index())).unwrap();
                let pos = v.iter().position(|&p| p == a).unwrap();
                v[pos] = b;
            }
            if let Some(c) = cb {
                let v = self.members.get_mut(&(c.is_n(), c.index())).unwrap();
                let pos = v.iter().position(|&p| p == b).unwrap();
                v[pos] = a;
            }
        }
    }

    /// Number of packets with any class.
    pub fn classified_count(&self) -> usize {
        self.class_of.iter().filter(|c| c.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_map() -> ClassMap {
        // Packets 0,1 are N_1/N_2; packet 2 is E_1; packet 3 is a filler.
        let dsts = [
            Coord::new(10, 20),
            Coord::new(11, 21),
            Coord::new(20, 10),
            Coord::new(0, 0),
        ];
        ClassMap::new(&dsts, |d| {
            if d == Coord::new(10, 20) {
                Some(Class::N(1))
            } else if d == Coord::new(11, 21) {
                Some(Class::N(2))
            } else if d == Coord::new(20, 10) {
                Some(Class::E(1))
            } else {
                None
            }
        })
    }

    #[test]
    fn initial_classes() {
        let m = toy_map();
        assert_eq!(m.class_of(PacketId(0)), Some(Class::N(1)));
        assert_eq!(m.class_of(PacketId(1)), Some(Class::N(2)));
        assert_eq!(m.class_of(PacketId(2)), Some(Class::E(1)));
        assert_eq!(m.class_of(PacketId(3)), None);
        assert_eq!(m.members(Class::N(1)), &[PacketId(0)]);
        assert_eq!(m.classified_count(), 3);
    }

    #[test]
    fn exchange_moves_classes_between_packets() {
        let mut m = toy_map();
        m.record_exchange(PacketId(0), PacketId(1));
        assert_eq!(m.class_of(PacketId(0)), Some(Class::N(2)));
        assert_eq!(m.class_of(PacketId(1)), Some(Class::N(1)));
        assert_eq!(m.members(Class::N(1)), &[PacketId(1)]);
        assert_eq!(m.members(Class::N(2)), &[PacketId(0)]);
        // Exchange back restores.
        m.record_exchange(PacketId(1), PacketId(0));
        assert_eq!(m.class_of(PacketId(0)), Some(Class::N(1)));
    }

    #[test]
    fn class_by_destination_is_stable() {
        let mut m = toy_map();
        m.record_exchange(PacketId(0), PacketId(2));
        // The destinations still map to the same classes.
        assert_eq!(m.class_of_dst(Coord::new(10, 20)), Some(Class::N(1)));
        assert_eq!(m.class_of_dst(Coord::new(20, 10)), Some(Class::E(1)));
        // But the packets holding them swapped.
        assert_eq!(m.class_of(PacketId(0)), Some(Class::E(1)));
        assert_eq!(m.class_of(PacketId(2)), Some(Class::N(1)));
    }
}
