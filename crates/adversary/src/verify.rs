//! Replay verification: Theorem 13 and Lemma 12, empirically.

use crate::general::ConstructionOutcome;
use mesh_engine::{Router, Sim, SimReport};
use mesh_topo::Topology;
use serde::{Deserialize, Serialize};

/// Result of replaying a constructed permutation without the adversary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LowerBoundReport {
    /// The proven bound `⌊l⌋·dn`.
    pub bound_steps: u64,
    /// Packets undelivered after `bound_steps` replay steps (> 0 certifies
    /// Theorem 13 empirically).
    pub undelivered_at_bound: usize,
    /// Whether the replay's configuration at `bound_steps` matches the
    /// construction's exactly (Lemma 12 with an empty pending-exchange set).
    pub replay_matches_construction: bool,
    /// Steps to deliver everything when allowed to continue (`None` if the
    /// cap was hit — e.g. the victim deadlocks, which only strengthens the
    /// bound).
    pub completion_steps: Option<u64>,
    /// Full report of the replay run.
    pub replay: SimReport,
}

/// Replays `outcome.constructed` under a fresh router for `bound_steps`
/// steps, checks Theorem 13 and Lemma 12, then (optionally) runs on to
/// completion under `completion_cap` extra steps.
pub fn verify_lower_bound<T: Topology, R: Router>(
    topo: &T,
    router: R,
    outcome: &ConstructionOutcome,
    completion_cap: Option<u64>,
) -> LowerBoundReport {
    let mut sim = Sim::new(topo, router, &outcome.constructed);
    for _ in 0..outcome.bound_steps {
        if sim.step() {
            break;
        }
    }
    let undelivered = sim.num_packets() - sim.delivered();
    let matches = sim.packet_snapshot() == outcome.final_snapshot;
    let completion_steps = match completion_cap {
        Some(cap) => sim.run(outcome.bound_steps + cap).ok(),
        None => None,
    };
    LowerBoundReport {
        bound_steps: outcome.bound_steps,
        undelivered_at_bound: undelivered,
        replay_matches_construction: matches,
        completion_steps,
        replay: sim.report(),
    }
}
