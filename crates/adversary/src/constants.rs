//! Constant selection, following §4.3 of the paper exactly.
//!
//! All arithmetic is exact: `c` and `d` are represented by the integers
//! `cn` and `dn` (the paper requires `cn` and `dn` to be integers), and the
//! quantity `c²n = (cn)²/n` is handled as an exact rational.

use serde::{Deserialize, Serialize};

/// Why parameters could not be chosen for a given `(n, k)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// `n < 24(k+2)²` (the paper's Case 2): the construction's guarantees
    /// need the mesh at least this large; below it the diameter bound
    /// `2n − 2 = Ω(n²/k²)` already holds.
    MeshTooSmall { required: u32 },
    /// The derived `⌊l⌋` is zero — no boxes, nothing to construct.
    Degenerate,
    /// A feasibility constraint failed (should not happen when
    /// `n ≥ 24(k+2)²`; reported with a description for diagnostics).
    Infeasible(String),
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParamError::MeshTooSmall { required } => {
                write!(f, "mesh too small: need n >= {required}")
            }
            ParamError::Degenerate => write!(f, "degenerate parameters (l < 1)"),
            ParamError::Infeasible(s) => write!(f, "infeasible: {s}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Parameters of the §3 general construction (and its §5 h-h extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneralParams {
    /// Mesh side (for the torus extension, the side of the submesh used).
    pub n: u32,
    /// Queue capacity of the algorithm under attack.
    pub k: u32,
    /// Packets per node (1 for permutations; §5's h-h extension otherwise).
    pub h: u32,
    /// `cn` (so `c = cn / n`).
    pub cn: u32,
    /// `dn` (so `d = dn / n`).
    pub dn: u32,
    /// `p = ⌊(k+1)(cn + c²n) + dn⌋`: packets per class.
    pub p: u32,
    /// `⌊l⌋` where `l = h·(cn)²/(2p)`: number of boxes.
    pub l: u32,
}

impl GeneralParams {
    /// §4.3 constants for the permutation (h = 1) construction:
    /// the largest `c ≤ 1/(2(k+2))` and `d ≤ 2/5` with `cn`, `dn` integers.
    pub fn new(n: u32, k: u32) -> Result<GeneralParams, ParamError> {
        assert!(k >= 1, "queue size k must be at least 1");
        let required = 24 * (k + 2) * (k + 2);
        if n < required {
            return Err(ParamError::MeshTooSmall { required });
        }
        let cn = n / (2 * (k + 2));
        let dn = 2 * n / 5;
        Self::finish(n, k, 1, cn, dn)
    }

    /// §5 h-h constants: `c ≤ h/(3(k+1+h))`, `d ≤ 5h/9` (for `h = 1` use
    /// [`GeneralParams::new`]). Requires `h ≤ k` so the initial placement of
    /// `h` packets per node fits the queues.
    pub fn hh(n: u32, k: u32, h: u32) -> Result<GeneralParams, ParamError> {
        assert!(k >= 1 && h >= 1);
        if h == 1 {
            return Self::new(n, k);
        }
        if h > k {
            return Err(ParamError::Infeasible(format!(
                "h = {h} > k = {k}: static placement needs h <= k"
            )));
        }
        // Generous size requirement mirroring the h = 1 case.
        let required = 24 * (k + 1 + h) * (k + 1 + h) / h;
        if n < required {
            return Err(ParamError::MeshTooSmall { required });
        }
        let cn = (h as u64 * n as u64 / (3 * (k + 1 + h) as u64)) as u32;
        let dn_raw = 5 * h as u64 * n as u64 / 9;
        // d is a time constant; dn may exceed n for large h, which is fine.
        Self::finish(n, k, h, cn, dn_raw as u32)
    }

    fn finish(n: u32, k: u32, h: u32, cn: u32, dn: u32) -> Result<GeneralParams, ParamError> {
        let (n64, k64, h64, cn64, dn64) = (n as u64, k as u64, h as u64, cn as u64, dn as u64);
        if cn < 2 {
            return Err(ParamError::Degenerate);
        }
        // p = floor((k+1)(cn + cn²/n) + dn), computed exactly over /n.
        let p = ((k64 + 1) * (cn64 * n64 + cn64 * cn64) + dn64 * n64) / n64;
        // l = floor(h (cn)² / (2p)).
        let l = h64 * cn64 * cn64 / (2 * p);
        if l < 1 {
            return Err(ParamError::Degenerate);
        }
        // First §4.3 constraint: p ≤ h((1−c)n − l) — destinations fit.
        let l_ceil = (h64 * cn64 * cn64).div_ceil(2 * p);
        if p > h64 * (n64 - cn64 - l_ceil) {
            return Err(ParamError::Infeasible(format!(
                "p = {p} exceeds h((1-c)n - l) = {}",
                h64 * (n64 - cn64 - l_ceil)
            )));
        }
        // Third §4.3 constraint: l ≤ c²n (= (cn)²/n), used by Lemmas 3 and 4.
        if l * n64 > cn64 * cn64 * h64 {
            return Err(ParamError::Infeasible(format!(
                "l = {l} exceeds h·c²n = {}",
                h64 * cn64 * cn64 / n64
            )));
        }
        Ok(GeneralParams {
            n,
            k,
            h,
            cn,
            dn,
            p: p as u32,
            l: l as u32,
        })
    }

    /// The proven lower bound: `⌊l⌋ · dn` steps (Theorem 13).
    pub fn bound_steps(&self) -> u64 {
        self.l as u64 * self.dn as u64
    }

    /// Total construction packets: `2p` per box (`p` N-packets, `p`
    /// E-packets).
    pub fn total_packets(&self) -> u64 {
        2 * self.p as u64 * self.l as u64
    }
}

/// Parameters of the §5 dimension-order and farthest-first constructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimOrderParams {
    pub n: u32,
    pub k: u32,
    pub cn: u32,
    pub dn: u32,
    /// Packets per class.
    pub p: u32,
    /// `⌊l⌋`: number of N-columns attacked.
    pub l: u32,
}

impl DimOrderParams {
    /// §5 dimension-order constants.
    ///
    /// Feasibility pins the constants exactly: the construction needs `l`
    /// N-columns inside the `cn` easternmost columns (`l ≤ cn`) *and* `p`
    /// destination rows among the northernmost `(1−c)n` (`p ≤ (1−c)n`).
    /// With `p = (k+1)cn + dn` and `l = (1−c)c n²/p`, both hold iff
    /// `(k+2)c + d = 1`. We therefore take the paper's maximal
    /// `c ≤ 1/(2(k+2))` and set `dn = n − (k+2)·cn` (so `d ≈ 1/2`, the top
    /// of the paper's `2/5 ≤ d ≤ 1/2` window; the `2n/5` appearing in the
    /// paper's final bound is a conservative lower estimate of `dn`). Then
    /// `p = (1−c)n` and `l = cn` exactly: every source node sends exactly
    /// one packet and the classes tile the source region perfectly.
    pub fn new(n: u32, k: u32) -> Result<DimOrderParams, ParamError> {
        assert!(k >= 1);
        // Unlike §4.3, this variant's counting works whenever the geometry
        // is non-degenerate: the per-class budget p = (k+1)cn + dn exactly
        // covers dn − 1 departures + k·cn queue positions + cn entrants.
        let required = 8 * (k + 2);
        if n < required {
            return Err(ParamError::MeshTooSmall { required });
        }
        let cn = n / (2 * (k + 2));
        if cn < 2 {
            return Err(ParamError::Degenerate);
        }
        let dn = n - (k + 2) * cn;
        let p = n - cn; // = (k+1)cn + dn
        debug_assert_eq!(p, (k + 1) * cn + dn);
        let l = cn; // = (1-c)c n² / p exactly
        Ok(DimOrderParams { n, k, cn, dn, p, l })
    }

    /// §5 farthest-first constants: `c ≤ 1/(4(k+1))`, `d ≤ 1/2`,
    /// `p = (2k+1)cn + dn`, `l = c n² / p`.
    pub fn farthest_first(n: u32, k: u32) -> Result<DimOrderParams, ParamError> {
        assert!(k >= 1);
        // As for `new`, the variant's counting argument holds whenever the
        // geometry is non-degenerate (exchange availability is additionally
        // checked at run time).
        let required = 16 * (k + 1);
        if n < required {
            return Err(ParamError::MeshTooSmall { required });
        }
        let cn = n / (4 * (k + 1));
        let dn = 2 * n / 5;
        let (n64, k64, cn64, dn64) = (n as u64, k as u64, cn as u64, dn as u64);
        if cn < 2 {
            return Err(ParamError::Degenerate);
        }
        let p = (2 * k64 + 1) * cn64 + dn64;
        // l = c n² / p = cn · n / p.
        let l = cn64 * n64 / p;
        if l < 1 {
            return Err(ParamError::Degenerate);
        }
        if p > n64 - cn64 {
            return Err(ParamError::Infeasible(format!(
                "p = {p} > (1-c)n = {}",
                n64 - cn64
            )));
        }
        Ok(DimOrderParams {
            n,
            k,
            cn,
            dn,
            p: p as u32,
            l: l as u32,
        })
    }

    /// The proven lower bound: `⌊l⌋ · dn` steps.
    pub fn bound_steps(&self) -> u64 {
        self.l as u64 * self.dn as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_small_mesh() {
        assert_eq!(
            GeneralParams::new(100, 1),
            Err(ParamError::MeshTooSmall { required: 216 })
        );
        assert_eq!(
            GeneralParams::new(300, 2),
            Err(ParamError::MeshTooSmall { required: 384 })
        );
    }

    #[test]
    fn k1_n216_matches_hand_calculation() {
        let p = GeneralParams::new(216, 1).unwrap();
        // c = 1/(2*3) = 1/6 → cn = 36; dn = floor(2*216/5) = 86.
        assert_eq!(p.cn, 36);
        assert_eq!(p.dn, 86);
        // p = floor(2*(36 + 36²/216) + 86) = floor(2*42 + 86) = 170.
        assert_eq!(p.p, 170);
        // l = floor(36² / 340) = floor(3.81) = 3.
        assert_eq!(p.l, 3);
        assert_eq!(p.bound_steps(), 3 * 86);
        assert_eq!(p.total_packets(), 2 * 170 * 3);
    }

    #[test]
    fn paper_inequality_1_holds_for_many_nk() {
        // (k+2)c + (k+1)c² + d + c²/(2((k+1)(c+c²)+d)) ≤ 1 — Inequality (1)
        // of §4.3, evaluated in f64 for the chosen integer constants.
        for k in 1..=6u32 {
            let n = 24 * (k + 2) * (k + 2);
            for n in [n, n + 1, 2 * n, 3 * n + 17] {
                let p = GeneralParams::new(n, k).unwrap();
                let c = p.cn as f64 / n as f64;
                let d = p.dn as f64 / n as f64;
                let kk = k as f64;
                let lhs = (kk + 2.0) * c
                    + (kk + 1.0) * c * c
                    + d
                    + c * c / (2.0 * ((kk + 1.0) * (c + c * c) + d));
                assert!(lhs <= 1.0, "inequality (1) fails for n={n} k={k}: {lhs}");
            }
        }
    }

    #[test]
    fn c_d_are_within_paper_windows() {
        for k in 1..=4u32 {
            let n = 24 * (k + 2) * (k + 2);
            let p = GeneralParams::new(n, k).unwrap();
            let c = p.cn as f64 / n as f64;
            let d = p.dn as f64 / n as f64;
            // §4.3: 2/(5(k+2)) ≤ c ≤ 1/(2(k+2)) and 1/3 ≤ d ≤ 2/5.
            assert!(c <= 1.0 / (2.0 * (k as f64 + 2.0)) + 1e-12);
            assert!(c >= 2.0 / (5.0 * (k as f64 + 2.0)) - 1e-12, "c too small");
            assert!(d <= 0.4 + 1e-12);
            assert!(d >= 1.0 / 3.0 - 1e-12);
        }
    }

    #[test]
    fn bound_grows_quadratically_in_n() {
        let k = 1;
        let b1 = GeneralParams::new(432, k).unwrap().bound_steps();
        let b2 = GeneralParams::new(864, k).unwrap().bound_steps();
        let ratio = b2 as f64 / b1 as f64;
        assert!(
            (3.0..=5.5).contains(&ratio),
            "doubling n should ~quadruple the bound, ratio {ratio}"
        );
    }

    #[test]
    fn bound_shrinks_with_k() {
        // At fixed (large) n the bound scales like 1/k².
        let n = 24 * 6 * 6; // valid for k ≤ 4
        let b1 = GeneralParams::new(n, 1).unwrap().bound_steps();
        let b4 = GeneralParams::new(n, 4).unwrap().bound_steps();
        assert!(b1 > 3 * b4, "k=1 bound {b1} should dwarf k=4 bound {b4}");
    }

    #[test]
    fn hh_params_valid() {
        let p = GeneralParams::hh(600, 4, 2).unwrap();
        assert!(p.l >= 1);
        assert_eq!(p.h, 2);
        // h = 1 delegates to the permutation constants.
        assert_eq!(
            GeneralParams::hh(216, 1, 1).unwrap(),
            GeneralParams::new(216, 1).unwrap()
        );
        // h > k refused.
        assert!(matches!(
            GeneralParams::hh(600, 1, 2),
            Err(ParamError::Infeasible(_))
        ));
    }

    #[test]
    fn dimorder_params_k1() {
        let p = DimOrderParams::new(216, 1).unwrap();
        assert_eq!(p.cn, 36);
        // dn = n - (k+2)cn = 216 - 108 = 108, so d = 1/2 exactly here.
        assert_eq!(p.dn, 108);
        // p = (k+1)cn + dn = 72 + 108 = 180 = (1-c)n.
        assert_eq!(p.p, 180);
        // l = cn exactly: the classes tile the source region.
        assert_eq!(p.l, 36);
        assert_eq!(p.p * p.l, p.cn * (p.n - p.cn), "classes tile all sources");
        // The Ω(n²/k) bound beats the Ω(n²/k²) general bound at k = 1? No —
        // at k = 1 they are the same order; but this specific construction
        // yields more steps than the general one.
        assert!(p.bound_steps() > GeneralParams::new(216, 1).unwrap().bound_steps());
    }

    #[test]
    fn dimorder_bound_scales_inverse_k() {
        let n = 24 * 6 * 6;
        let b1 = DimOrderParams::new(n, 1).unwrap().bound_steps();
        let b4 = DimOrderParams::new(n, 4).unwrap().bound_steps();
        let ratio = b1 as f64 / b4 as f64;
        assert!((1.5..=5.0).contains(&ratio), "Ω(n²/k): ratio {ratio}");
    }

    #[test]
    fn farthest_first_params() {
        let p = DimOrderParams::farthest_first(216, 1).unwrap();
        assert_eq!(p.cn, 216 / 8);
        assert_eq!(p.p, 3 * 27 + 86);
        assert!(p.l >= 1);
    }
}
