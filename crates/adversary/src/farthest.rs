//! The §5 construction against dimension-order routing with the
//! **farthest-first** outqueue policy: `Ω(n²/k)` — even though that policy
//! reads full destination addresses and is *not* destination-exchangeable.
//!
//! "Define the N_i-column to be the (n+1−i)-th column and the i-box to be
//! the nodes west of and including the N_i-column and south of and
//! including row cn. Each of the nodes in the southernmost cn rows will send
//! one packet. The initial arrangement … no N_i-packet, for i ≥ 2, is in
//! the N_i-column and … no N_j-packet is further east in its row than any
//! N_i-packet in that row for j > i. The only exchange rule … for i ≥ 1,
//! j > i, if an N_j-packet is scheduled … to enter the N_j-column during
//! steps 1 to i·dn, then exchange that packet with an N_{j−1}-packet in the
//! (j+1)-box not scheduled to enter the N_j-column … one that is westernmost
//! in its row."
//!
//! Exchanging N_j with N_{j−1} shifts both packets' remaining horizontal
//! distances by exactly one column. The paper sketches ("it is not hard to
//! see") that the construction behaves identically to the algorithm run on
//! the constructed permutation. Our step-exact implementation confirms the
//! exact replay equivalence at k = 1 (where no farthest-first comparison
//! ever arises). At k ≥ 2 we observe that strict comparisons taken during
//! the construction can become ties in the replay (a packet's construction-
//! time class differs from its final class by pending demotions), so exact
//! commutation depends on tie-breaking details the paper does not specify —
//! the replay then diverges from the construction. **The theorem's content
//! is unaffected**: the replay itself still leaves packets undelivered at
//! `⌊l⌋·dn` steps on every instance we generate, which is what
//! `verify_lower_bound` certifies.

use crate::classify::{Class, ClassMap};
use crate::constants::DimOrderParams;
use crate::general::ConstructionOutcome;
use mesh_engine::{HookCtx, Router, Sim, StepHook};
use mesh_topo::{Coord, Topology};
use mesh_traffic::{PacketId, RoutingProblem};

/// The §5 farthest-first construction.
#[derive(Clone, Debug)]
pub struct FarthestFirstConstruction {
    pub params: DimOrderParams,
}

impl FarthestFirstConstruction {
    /// Creates the construction; use [`DimOrderParams::farthest_first`].
    pub fn new(params: DimOrderParams) -> FarthestFirstConstruction {
        FarthestFirstConstruction { params }
    }

    /// `x` coordinate of the N_i-column: the `(n+1−i)`-th column, 1-based.
    #[inline]
    pub fn n_col(&self, i: u32) -> u32 {
        self.params.n - i
    }

    /// The i-box: `x ≤ n − i`, `y ≤ cn − 1`.
    #[inline]
    pub fn in_box(&self, c: Coord, i: u32) -> bool {
        c.y < self.params.cn && c.x + i <= self.params.n
    }

    /// Class of a construction destination (N_i lives in column `n − i`,
    /// `y ≥ cn`).
    pub fn classify_dst(&self, d: Coord) -> Option<Class> {
        let DimOrderParams { n, cn, l, .. } = self.params;
        if d.y < cn || d.x >= n {
            return None;
        }
        let i = n - d.x;
        (1..=l).contains(&i).then_some(Class::N(i))
    }

    /// Step 1: the initial placement. Cells are filled column-major from the
    /// **east** (column `n−1` southward, then `n−2`, …), assigning classes
    /// in order N_1 × p, N_2 × p, …; this guarantees both required
    /// properties: classes never decrease westward within a row, and N_i
    /// (i ≥ 2) starts strictly west of its own column.
    pub fn initial_problem(&self) -> RoutingProblem {
        let DimOrderParams { n, cn, p, l, .. } = self.params;
        let n_dst = |i: u32, m: u32| Coord::new(self.n_col(i), n - 1 - m);
        let mut pairs: Vec<(Coord, Coord)> = Vec::with_capacity((p * l) as usize);
        let mut cells = (0..n)
            .rev()
            .flat_map(|x| (0..cn).map(move |y| Coord::new(x, y)));
        for i in 1..=l {
            for m in 0..p {
                let cell = cells.next().expect("source region too small");
                if i >= 2 {
                    assert!(
                        cell.x < self.n_col(i),
                        "N_{i} placement reached its own column — parameters too tight"
                    );
                }
                pairs.push((cell, n_dst(i, m)));
            }
        }
        RoutingProblem::from_pairs(
            n,
            format!(
                "clt-farthest-initial(n={n},k={},cn={cn},p={p},l={l})",
                self.params.k
            ),
            pairs,
        )
    }

    /// Runs the construction for `⌊l⌋·dn` steps against `router` (intended:
    /// the farthest-first dimension-order router).
    pub fn run<T: Topology, R: Router>(&self, topo: &T, router: R) -> ConstructionOutcome {
        assert_eq!(topo.side(), self.params.n);
        let pb = self.initial_problem();
        let mut sim = Sim::new(topo, router, &pb);
        let dsts: Vec<Coord> = pb.packets.iter().map(|p| p.dst).collect();
        let classes = ClassMap::new(&dsts, |d| self.classify_dst(d));
        let mut hook = FarthestHook {
            cons: self.clone(),
            classes,
            scheduled: vec![false; pb.len()],
        };
        let bound = self.params.bound_steps();
        for _ in 1..=bound {
            sim.step_with_hook(&mut hook);
        }
        ConstructionOutcome {
            constructed: sim.current_problem(format!(
                "clt-farthest-constructed(n={},k={})",
                self.params.n, self.params.k
            )),
            final_snapshot: sim.packet_snapshot(),
            exchanges: sim.report().exchanges,
            undelivered_at_bound: sim.num_packets() - sim.delivered(),
            bound_steps: bound,
        }
    }
}

struct FarthestHook {
    cons: FarthestFirstConstruction,
    classes: ClassMap,
    scheduled: Vec<bool>,
}

impl FarthestHook {
    /// The N_{j−1} partner: in the (j+1)-box, not scheduled to enter the
    /// N_j-column, westernmost (globally — hence westernmost in its row).
    fn find_partner(&self, ctx: &HookCtx<'_>, j: u32) -> PacketId {
        let col_j = self.cons.n_col(j);
        let mut best: Option<(Coord, PacketId)> = None;
        for &cand in self.classes.members(Class::N(j - 1)) {
            let Some(c) = ctx.node_of(cand) else { continue };
            if !self.cons.in_box(c, j + 1) {
                continue;
            }
            let enters = ctx
                .moves
                .iter()
                .any(|m| m.pkt == cand && m.to.x == col_j && m.from.x != col_j);
            if enters {
                continue;
            }
            let better = match best {
                None => true,
                Some((bc, _)) => (c.x, c.y) < (bc.x, bc.y),
            };
            if better {
                best = Some((c, cand));
            }
        }
        best.map(|(_, p)| p).unwrap_or_else(|| {
            panic!(
                "no eligible N_{} exchange partner at step {} (construction bug)",
                j - 1,
                ctx.t
            )
        })
    }
}

impl StepHook for FarthestHook {
    #[allow(clippy::while_let_loop)]
    fn on_scheduled(&mut self, ctx: &mut HookCtx<'_>) {
        let t = ctx.t;
        self.scheduled.iter_mut().for_each(|b| *b = false);
        for m in ctx.moves {
            self.scheduled[m.pkt.index()] = true;
        }
        let dn = self.cons.params.dn as u64;
        let mut passes = 0;
        loop {
            let before = ctx.exchange_count();
            for mi in 0..ctx.moves.len() {
                let m = ctx.moves[mi];
                loop {
                    let Some(Class::N(j)) = self.classes.class_of(m.pkt) else {
                        break;
                    };
                    // Scheduled to enter its OWN column, while some i < j is
                    // still protected (t ≤ i·dn for some i < j ⇔ t ≤ (j−1)dn)?
                    if j >= 2
                        && m.to.x == self.cons.n_col(j)
                        && m.from.x != m.to.x
                        && t <= (j as u64 - 1) * dn
                    {
                        let partner = self.find_partner(ctx, j);
                        ctx.exchange(m.pkt, partner);
                        self.classes.record_exchange(m.pkt, partner);
                        continue; // the packet is now N_{j-1}; re-check.
                    }
                    break;
                }
            }
            if ctx.exchange_count() == before {
                break;
            }
            passes += 1;
            assert!(passes < 64, "exchange fixpoint did not converge");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::DimOrderParams;

    fn cons(n: u32, k: u32) -> FarthestFirstConstruction {
        FarthestFirstConstruction::new(DimOrderParams::farthest_first(n, k).unwrap())
    }

    #[test]
    fn placement_satisfies_the_two_stated_invariants() {
        let c = cons(216, 1);
        let pb = c.initial_problem();
        assert!(pb.is_partial_permutation());
        // Build per-row class sequences by x.
        let mut rows: std::collections::HashMap<u32, Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for pk in &pb.packets {
            let i = c.classify_dst(pk.dst).unwrap().index();
            // (a) no N_i (i >= 2) starts in its own column.
            if i >= 2 {
                assert_ne!(pk.src.x, c.n_col(i), "N_{i} in its own column");
            }
            rows.entry(pk.src.y).or_default().push((pk.src.x, i));
        }
        // (b) within each row, class indices never decrease westward
        // (equivalently: never increase eastward).
        for (y, mut v) in rows {
            v.sort_unstable();
            for w in v.windows(2) {
                assert!(
                    w[0].1 >= w[1].1,
                    "row {y}: class {} at x={} east of class {} at x={}",
                    w[1].1,
                    w[1].0,
                    w[0].1,
                    w[0].0
                );
            }
        }
    }

    #[test]
    fn classes_decode() {
        let c = cons(216, 1);
        assert_eq!(c.classify_dst(Coord::new(215, 215)), Some(Class::N(1)));
        let l = c.params.l;
        assert_eq!(c.classify_dst(Coord::new(216 - l, 215)), Some(Class::N(l)));
        // Below row cn: not a destination.
        assert_eq!(c.classify_dst(Coord::new(215, 0)), None);
    }
}
