//! # mesh-adversary
//!
//! Executable versions of the lower-bound constructions of Chinn, Leighton &
//! Tompa (SPAA 1994), §§3–5.
//!
//! Each construction runs a given routing algorithm for `⌊l⌋·dn` steps while
//! performing the paper's destination *exchanges* through the engine's step
//! hook, then emits the **constructed permutation** — a concrete routing
//! problem on which that algorithm provably (and, here, measurably) needs at
//! least `⌊l⌋·dn` steps:
//!
//! * [`general`] — the §3 construction against any destination-exchangeable
//!   minimal adaptive algorithm: `Ω(n²/k²)` (Theorem 14), with the h-h
//!   (`Ω(h³n²/(k+h)²)`) and torus extensions of §5.
//! * [`dimorder`] — the §5 construction against destination-exchangeable
//!   *dimension-order* algorithms: `Ω(n²/k)`.
//! * [`farthest`] — the §5 construction against dimension order with the
//!   farthest-first outqueue policy (not destination-exchangeable): `Ω(n²/k)`.
//!
//! [`constants`] picks the constants `c` and `d` exactly as §4.3 does;
//! [`invariants`] machine-checks Lemmas 1–8 at every step of the
//! construction; [`verify`] replays the constructed permutation without
//! exchanges and confirms Theorem 13 (undelivered packets at the bound) and
//! Lemma 12 (replay reaches the construction's exact final configuration).

pub mod classify;
pub mod constants;
pub mod dimorder;
pub mod farthest;
pub mod general;
pub mod geometry;
pub mod invariants;
pub mod verify;

pub use classify::{Class, ClassMap};
pub use constants::{DimOrderParams, GeneralParams, ParamError};
pub use general::GeneralConstruction;
pub use geometry::BoxGeometry;
pub use verify::{verify_lower_bound, LowerBoundReport};
