//! The §3 construction: an adversary that builds, for **any**
//! destination-exchangeable minimal adaptive routing algorithm, a
//! permutation requiring `⌊l⌋·dn = Ω(n²/k²)` steps.
//!
//! The adversary runs the algorithm on an initial placement (step 1 of §3),
//! watching every scheduled transmission. Whenever a packet of a
//! too-high class is about to cross a protected column or row, the adversary
//! *exchanges* destinations per rules EX1–EX4 (step 3), which the algorithm —
//! being destination-exchangeable — cannot detect (Lemma 10). After
//! `⌊l⌋·dn` steps the packets' current destinations define the **constructed
//! permutation** (step 4); replaying the algorithm on it without exchanges
//! reproduces the exact same execution (Lemma 12) and therefore still has
//! undelivered packets at step `⌊l⌋·dn` (Theorem 13).

use crate::classify::{Class, ClassMap};
use crate::constants::GeneralParams;
use crate::geometry::BoxGeometry;
use crate::invariants::InvariantChecker;
use mesh_engine::{HookCtx, Loc, Router, Sim, StepHook};
use mesh_topo::{Coord, Topology};
use mesh_traffic::{PacketId, RoutingProblem};

/// The §3 general construction (one instance per `(n, k, h)`).
///
/// For the torus extension (§5) build the parameters for the submesh side
/// `m` and run on a torus of side `≥ 2m`: all construction traffic stays in
/// the southwest `m × m` submesh, where torus and mesh profitable outlinks
/// coincide.
#[derive(Clone, Debug)]
pub struct GeneralConstruction {
    pub params: GeneralParams,
    pub geom: BoxGeometry,
    /// Side of the full grid the problem is defined on (= `params.n` for the
    /// mesh; `≥ 2·params.n` for the torus extension).
    pub grid_n: u32,
}

/// Everything the construction produces.
pub struct ConstructionOutcome {
    /// The constructed (partial) permutation — the paper's hard instance.
    pub constructed: RoutingProblem,
    /// Exact per-packet configuration after `⌊l⌋·dn` construction steps,
    /// for the Lemma 12 replay-equivalence check.
    pub final_snapshot: Vec<(Loc, Coord, u64)>,
    /// Destination exchanges performed.
    pub exchanges: u64,
    /// Packets still undelivered at the bound (Corollary 9 demands > 0).
    pub undelivered_at_bound: usize,
    /// The proven bound `⌊l⌋·dn`.
    pub bound_steps: u64,
}

impl GeneralConstruction {
    /// Construction on the `n × n` mesh.
    pub fn new(params: GeneralParams) -> GeneralConstruction {
        GeneralConstruction {
            geom: BoxGeometry { cn: params.cn },
            grid_n: params.n,
            params,
        }
    }

    /// Construction embedded in the southwest corner of a larger grid
    /// (the §5 torus extension: `grid_n ≥ 2·params.n`).
    pub fn embedded(params: GeneralParams, grid_n: u32) -> GeneralConstruction {
        assert!(grid_n >= params.n);
        GeneralConstruction {
            geom: BoxGeometry { cn: params.cn },
            grid_n,
            params,
        }
    }

    /// The class of a construction destination (`None` for other coords).
    ///
    /// N_i destinations sit in the N_i-column strictly north of the E_i-row,
    /// so `dst.y > dst.x`; E_i destinations mirror (`dst.x > dst.y`).
    pub fn classify_dst(&self, d: Coord) -> Option<Class> {
        let cn = self.params.cn;
        let l = self.params.l;
        if d.y > d.x && d.x + 2 >= cn && d.x + 2 <= cn + l + 1 {
            let i = d.x + 2 - cn;
            (1..=l).contains(&i).then_some(Class::N(i))
        } else if d.x > d.y && d.y + 2 >= cn && d.y + 2 <= cn + l + 1 {
            let i = d.y + 2 - cn;
            (1..=l).contains(&i).then_some(Class::E(i))
        } else {
            None
        }
    }

    /// Step 1 of §3: the initial placement.
    ///
    /// * the N_1-column within the 1-box (east edge of the `cn × cn`
    ///   submesh) holds only N_1-packets;
    /// * the E_1-row west of the N_1-column (north edge) holds only
    ///   E_1-packets;
    /// * everything else — including all N_2/E_2 packets, which Lemma 5/6
    ///   require to start inside the 0-box — goes into the 0-box, which is
    ///   exactly the remainder of the 1-box;
    /// * `h` packets per node (`h = 1` for permutations);
    /// * N_i-packet `m` is destined for `(n_col(i), n − 1 − ⌊m/h⌋)`;
    ///   E_i-packet `m` for `(n − 1 − ⌊m/h⌋, e_row(i))` — unique
    ///   destinations outside the `⌊l⌋`-box.
    pub fn initial_problem(&self) -> RoutingProblem {
        let GeneralParams { n, cn, p, l, h, .. } = self.params;
        let g = &self.geom;
        let mut pairs: Vec<(Coord, Coord)> = Vec::with_capacity((2 * p * l) as usize);

        // Destination allocators per class.
        let n_dst = |i: u32, m: u32| Coord::new(g.n_col(i), n - 1 - m / h);
        let e_dst = |i: u32, m: u32| Coord::new(n - 1 - m / h, g.e_row(i));

        // East edge: N_1 packets.
        let mut n1_used = 0u32;
        for y in 0..cn {
            for _ in 0..h {
                pairs.push((Coord::new(cn - 1, y), n_dst(1, n1_used)));
                n1_used += 1;
            }
        }
        // North edge (west of the corner): E_1 packets.
        let mut e1_used = 0u32;
        for x in 0..cn - 1 {
            for _ in 0..h {
                pairs.push((Coord::new(x, cn - 1), e_dst(1, e1_used)));
                e1_used += 1;
            }
        }
        assert!(n1_used <= p && e1_used <= p, "edges need p >= h*cn");

        // Remaining assignments, in class order, into 0-box cells row-major.
        let mut todo: Vec<(Class, u32)> = Vec::new();
        for m in n1_used..p {
            todo.push((Class::N(1), m));
        }
        for m in e1_used..p {
            todo.push((Class::E(1), m));
        }
        for i in 2..=l {
            for m in 0..p {
                todo.push((Class::N(i), m));
            }
            for m in 0..p {
                todo.push((Class::E(i), m));
            }
        }
        let mut cell_iter = (0..cn - 1)
            .flat_map(|y| (0..cn - 1).map(move |x| Coord::new(x, y)))
            .flat_map(|c| std::iter::repeat_n(c, h as usize));
        for (cls, m) in todo {
            let cell = cell_iter
                .next()
                .expect("0-box too small for the construction placement");
            let dst = match cls {
                Class::N(i) => n_dst(i, m),
                Class::E(i) => e_dst(i, m),
            };
            pairs.push((cell, dst));
        }

        let pb = RoutingProblem::from_pairs(
            self.grid_n,
            format!(
                "clt-initial(n={n},k={},h={h},cn={cn},p={p},l={l})",
                self.params.k
            ),
            pairs,
        );
        debug_assert!(pb.is_hh(h));
        pb
    }

    /// Runs the full construction (steps 1–4 of §3) against `router`.
    ///
    /// With `check_invariants`, Lemmas 1–8 are machine-verified after every
    /// step (a panic means either the construction or the engine is wrong —
    /// never the router).
    pub fn run<T: Topology, R: Router>(
        &self,
        topo: &T,
        router: R,
        check_invariants: bool,
    ) -> ConstructionOutcome {
        assert_eq!(topo.side(), self.grid_n);
        let pb = self.initial_problem();
        let mut sim = Sim::new(topo, router, &pb);
        let dsts: Vec<Coord> = pb.packets.iter().map(|p| p.dst).collect();
        let classes = ClassMap::new(&dsts, |d| self.classify_dst(d));
        let mut hook = GeneralHook {
            geom: self.geom,
            dn: self.params.dn,
            l: self.params.l,
            classes,
            scheduled: vec![false; pb.len()],
        };
        let mut checker = check_invariants.then(|| InvariantChecker::new(&self.params));
        let bound = self.params.bound_steps();
        for t in 1..=bound {
            sim.step_with_hook(&mut hook);
            if let Some(ch) = checker.as_mut() {
                ch.check_after_step(t, &self.geom, &hook.classes, |p| sim.loc(p))
                    .unwrap_or_else(|e| panic!("invariant violated at step {t}: {e}"));
            }
        }
        ConstructionOutcome {
            constructed: sim.current_problem(format!(
                "clt-constructed(n={},k={},h={})",
                self.params.n, self.params.k, self.params.h
            )),
            final_snapshot: sim.packet_snapshot(),
            exchanges: sim.report().exchanges,
            undelivered_at_bound: sim.num_packets() - sim.delivered(),
            bound_steps: bound,
        }
    }
}

/// The per-step adversary implementing EX1–EX4.
struct GeneralHook {
    geom: BoxGeometry,
    dn: u32,
    l: u32,
    classes: ClassMap,
    scheduled: Vec<bool>,
}

impl GeneralHook {
    /// Finds an exchange partner: a packet of class `want` (`N_i` or `E_i`),
    /// located in the `(i−1)`-box, and *not scheduled to enter* the protected
    /// N_i-column / E_i-row (the paper's exact eligibility; Lemmas 3/4
    /// guarantee existence). We prefer partners that are not scheduled at
    /// all — they cannot cascade into further violations this step — and
    /// fall back to the paper's weaker condition otherwise.
    fn find_partner(&self, ctx: &HookCtx<'_>, want: Class) -> PacketId {
        let i = want.index();
        let g = &self.geom;
        let in_prev_box = |cand: PacketId| match ctx.node_of(cand) {
            Some(c) => g.in_box(c, i - 1),
            None => false,
        };
        // Pass 1: unscheduled partners.
        for &cand in self.classes.members(want) {
            if !self.scheduled[cand.index()] && in_prev_box(cand) {
                return cand;
            }
        }
        // Pass 2: scheduled, but not into the protected column/row.
        for &cand in self.classes.members(want) {
            if !in_prev_box(cand) {
                continue;
            }
            let enters_protected = ctx.moves.iter().any(|m| {
                m.pkt == cand
                    && match want {
                        Class::N(_) => m.to.x == g.n_col(i) && m.to.y < g.e_row(i),
                        Class::E(_) => m.to.y == g.e_row(i) && m.to.x < g.n_col(i),
                    }
            });
            if !enters_protected {
                return cand;
            }
        }
        panic!(
            "no eligible exchange partner of class {want:?} at step {} — \
             Lemma 3/4 violated (construction bug)",
            ctx.t
        );
    }
}

impl StepHook for GeneralHook {
    #[allow(clippy::while_let_loop)]
    fn on_scheduled(&mut self, ctx: &mut HookCtx<'_>) {
        let t = ctx.t;
        // Mark which packets are scheduled (partners must not be).
        self.scheduled.iter_mut().for_each(|b| *b = false);
        for m in ctx.moves {
            self.scheduled[m.pkt.index()] = true;
        }

        let g = self.geom;
        let cn = g.cn;
        // Exchanging with a partner that is itself scheduled (pass 2 of
        // find_partner) can create a new violation on an earlier move, so
        // iterate the whole schedule to a fixpoint.
        let mut passes = 0;
        loop {
            let exchanges_before = ctx.exchange_count();
            self.scan_moves(ctx, g, cn, t);
            if ctx.exchange_count() == exchanges_before {
                break;
            }
            passes += 1;
            assert!(passes < 64, "exchange fixpoint did not converge");
        }
    }
}

impl GeneralHook {
    #[allow(clippy::while_let_loop)]
    fn scan_moves(&mut self, ctx: &mut HookCtx<'_>, g: BoxGeometry, cn: u32, t: u64) {
        for mi in 0..ctx.moves.len() {
            let m = ctx.moves[mi];
            // A move may trip a column rule and a row rule (corner targets);
            // re-evaluate after each exchange. Two passes suffice, but loop
            // defensively until clean.
            loop {
                let Some(cls) = self.classes.class_of(m.pkt) else {
                    break;
                };
                let j = cls.index();
                let mut exchanged = false;

                // Entering the N_i-column south of the E_i-row?
                if m.to.x + 2 >= cn && m.to.x + 2 <= cn + self.l + 1 {
                    let i = m.to.x + 2 - cn;
                    if (1..=self.l).contains(&i)
                        && m.to.y < g.e_row(i)
                        && t <= i as u64 * self.dn as u64
                    {
                        let violates = match cls {
                            Class::N(_) => j > i,  // EX2
                            Class::E(_) => j >= i, // EX3
                        };
                        if violates {
                            let partner = self.find_partner(ctx, Class::N(i));
                            ctx.exchange(m.pkt, partner);
                            self.classes.record_exchange(m.pkt, partner);
                            exchanged = true;
                        }
                    }
                }
                if exchanged {
                    continue;
                }
                // Entering the E_i-row west of the N_i-column?
                if m.to.y + 2 >= cn && m.to.y + 2 <= cn + self.l + 1 {
                    let i = m.to.y + 2 - cn;
                    if (1..=self.l).contains(&i)
                        && m.to.x < g.n_col(i)
                        && t <= i as u64 * self.dn as u64
                    {
                        let violates = match cls {
                            Class::E(_) => j > i,  // EX1
                            Class::N(_) => j >= i, // EX4
                        };
                        if violates {
                            let partner = self.find_partner(ctx, Class::E(i));
                            ctx.exchange(m.pkt, partner);
                            self.classes.record_exchange(m.pkt, partner);
                            exchanged = true;
                        }
                    }
                }
                if !exchanged {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::GeneralParams;

    fn cons(n: u32, k: u32) -> GeneralConstruction {
        GeneralConstruction::new(GeneralParams::new(n, k).unwrap())
    }

    #[test]
    fn classify_matches_destination_layout() {
        let c = cons(216, 1);
        let g = &c.geom;
        // N_i destinations: in the N_i-column strictly north of the E_i-row.
        for i in 1..=c.params.l {
            let d = Coord::new(g.n_col(i), g.e_row(i) + 5);
            assert_eq!(c.classify_dst(d), Some(Class::N(i)));
            let d = Coord::new(g.n_col(i) + 5, g.e_row(i));
            assert_eq!(c.classify_dst(d), Some(Class::E(i)));
        }
        // Outside the class columns/rows: none.
        assert_eq!(c.classify_dst(Coord::new(0, 0)), None);
        assert_eq!(c.classify_dst(Coord::new(215, 215)), None);
        // On the diagonal (would be both): impossible by construction.
        let diag = Coord::new(c.geom.n_col(1), c.geom.e_row(1));
        assert_eq!(c.classify_dst(diag), None);
    }

    #[test]
    fn initial_placement_satisfies_the_paper_preconditions() {
        for (n, k) in [(216u32, 1u32), (384, 2)] {
            let c = cons(n, k);
            let pb = c.initial_problem();
            let g = &c.geom;
            assert!(pb.is_partial_permutation());
            assert_eq!(pb.len() as u64, c.params.total_packets());
            let mut per_class = std::collections::HashMap::new();
            for pk in &pb.packets {
                let cls = c.classify_dst(pk.dst).expect("every packet classed");
                *per_class.entry(cls).or_insert(0u32) += 1;
                // Everything starts in the 1-box.
                assert!(g.in_box(pk.src, 1), "{:?} outside the 1-box", pk.src);
                match cls {
                    Class::N(1) => {}
                    Class::E(1) => {
                        // Lemma 8 basis: not at/east of the N_1-column south
                        // of the E_1-row.
                        assert!(
                            !(pk.src.x >= g.n_col(1) && pk.src.y < g.e_row(1)),
                            "E_1 packet at {:?}",
                            pk.src
                        );
                    }
                    // Lemma 5/6 basis: classes >= 2 start inside the 0-box.
                    _ => assert!(g.in_box(pk.src, 0), "{cls:?} at {:?}", pk.src),
                }
                // The N_1-column (in-box part) holds only N_1 packets;
                // the E_1-row west of it holds only E_1 packets.
                if g.in_n_col_south(pk.src, 1) {
                    assert_eq!(cls, Class::N(1));
                }
                if g.in_e_row_west(pk.src, 1) {
                    assert_eq!(cls, Class::E(1));
                }
                // Destinations lie strictly outside the l-box.
                assert!(
                    !g.in_box(pk.dst, c.params.l),
                    "dst {:?} inside l-box",
                    pk.dst
                );
            }
            // Exactly p packets per class.
            for i in 1..=c.params.l {
                assert_eq!(per_class[&Class::N(i)], c.params.p, "N_{i} count");
                assert_eq!(per_class[&Class::E(i)], c.params.p, "E_{i} count");
            }
            // At most one packet per node (h = 1).
            assert!(pb.send_counts().iter().all(|&s| s <= 1));
        }
    }

    #[test]
    fn hh_placement_puts_h_packets_per_node() {
        let params = GeneralParams::hh(600, 4, 2).unwrap();
        let c = GeneralConstruction::new(params);
        let pb = c.initial_problem();
        assert!(pb.is_hh(2));
        let max_send = pb.send_counts().into_iter().max().unwrap();
        assert_eq!(max_send, 2, "h = 2 packets on loaded nodes");
    }

    #[test]
    fn embedded_construction_offsets_nothing_but_the_grid() {
        let params = GeneralParams::new(216, 1).unwrap();
        let c = GeneralConstruction::embedded(params, 432);
        let pb = c.initial_problem();
        assert_eq!(pb.n, 432);
        // All construction traffic confined to the 216x216 corner.
        for pk in &pb.packets {
            assert!(pk.src.x < 216 && pk.src.y < 216);
            assert!(pk.dst.x < 216 && pk.dst.y < 216);
        }
    }
}
