//! Geometry of the constructions: N_i-columns, E_i-rows, and i-boxes.
//!
//! All coordinates are 0-based (the paper's column `c` is `x = c − 1`).

use mesh_topo::Coord;
use serde::{Deserialize, Serialize};

/// The box geometry of the §3 general construction for a given `cn`.
///
/// * N_i-column (paper: the `(cn − 1 + i)`-th column): `x = cn + i − 2`;
/// * E_i-row: `y = cn + i − 2`;
/// * i-box: `x ≤ cn + i − 2` and `y ≤ cn + i − 2` (for `i ≥ 1`);
/// * 0-box: `x < cn − 1` and `y < cn − 1` (strictly inside both).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxGeometry {
    pub cn: u32,
}

impl BoxGeometry {
    /// The `x` coordinate of the N_i-column (`i ≥ 1`).
    #[inline]
    pub fn n_col(&self, i: u32) -> u32 {
        debug_assert!(i >= 1);
        self.cn + i - 2
    }

    /// The `y` coordinate of the E_i-row (`i ≥ 1`).
    #[inline]
    pub fn e_row(&self, i: u32) -> u32 {
        debug_assert!(i >= 1);
        self.cn + i - 2
    }

    /// True if `c` is in the i-box. `i = 0` is the paper's (strict) 0-box.
    #[inline]
    pub fn in_box(&self, c: Coord, i: u32) -> bool {
        if i == 0 {
            c.x + 1 < self.cn && c.y + 1 < self.cn
        } else {
            c.x <= self.n_col(i) && c.y <= self.e_row(i)
        }
    }

    /// True if `c` lies in the N_i-column at or south of the E_i-row
    /// (the part of the column inside the i-box).
    #[inline]
    pub fn in_n_col_south(&self, c: Coord, i: u32) -> bool {
        c.x == self.n_col(i) && c.y <= self.e_row(i)
    }

    /// True if `c` lies in the E_i-row strictly west of the N_i-column.
    #[inline]
    pub fn in_e_row_west(&self, c: Coord, i: u32) -> bool {
        c.y == self.e_row(i) && c.x < self.n_col(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_nesting() {
        let g = BoxGeometry { cn: 36 };
        // The 1-box is exactly the cn × cn corner submesh.
        assert_eq!(g.n_col(1), 35);
        assert!(g.in_box(Coord::new(35, 35), 1));
        assert!(!g.in_box(Coord::new(36, 0), 1));
        assert!(!g.in_box(Coord::new(0, 36), 1));
        // Boxes nest: i-box ⊂ (i+1)-box.
        for i in 1..10u32 {
            let corner = Coord::new(g.n_col(i), g.e_row(i));
            assert!(g.in_box(corner, i));
            assert!(g.in_box(corner, i + 1));
            assert!(!g.in_box(Coord::new(g.n_col(i + 1), 0), i));
        }
    }

    #[test]
    fn zero_box_is_strict() {
        let g = BoxGeometry { cn: 10 };
        // 0-box: x < 9 and y < 9 (west of N_1-column x=9, south of E_1-row y=9).
        assert!(g.in_box(Coord::new(8, 8), 0));
        assert!(!g.in_box(Coord::new(9, 0), 0));
        assert!(!g.in_box(Coord::new(0, 9), 0));
        // 1-box partitions into 0-box ∪ N_1-column-south ∪ E_1-row-west.
        for x in 0..10u32 {
            for y in 0..10u32 {
                let c = Coord::new(x, y);
                let parts = [
                    g.in_box(c, 0),
                    g.in_n_col_south(c, 1),
                    g.in_e_row_west(c, 1),
                ];
                assert_eq!(
                    parts.iter().filter(|&&b| b).count(),
                    1,
                    "{c:?} must be in exactly one part"
                );
                assert!(g.in_box(c, 1));
            }
        }
    }

    #[test]
    fn column_and_row_predicates() {
        let g = BoxGeometry { cn: 10 };
        // N_2-column is x = 10; in-box part is y ≤ 10.
        assert!(g.in_n_col_south(Coord::new(10, 10), 2));
        assert!(g.in_n_col_south(Coord::new(10, 0), 2));
        assert!(!g.in_n_col_south(Coord::new(10, 11), 2));
        assert!(!g.in_n_col_south(Coord::new(9, 5), 2));
        assert!(g.in_e_row_west(Coord::new(9, 10), 2));
        assert!(!g.in_e_row_west(Coord::new(10, 10), 2));
    }
}
