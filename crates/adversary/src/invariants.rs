//! Machine-checked versions of Lemmas 1–8 (§4.1).
//!
//! The checker runs after every construction step and verifies, from the
//! packets' current classes and locations:
//!
//! * **Lemma 1** — no packet of class `N_j`/`E_j` with `j ≥ i` has left the
//!   i-box while `t ≤ (i−1)·dn`;
//! * **Lemma 2** — at most one N_i-packet and one E_i-packet leave the i-box
//!   per step while `(i−1)·dn < t ≤ i·dn`;
//! * **Lemmas 5/6** — packets of class `N_j`/`E_j` stay inside the
//!   `(i−2)`-box while `t ≤ (i−1)·dn`, for every applicable `1 < i ≤ j`;
//! * **Lemmas 7/8** — while `t ≤ i·dn`, no N_i-packet is at-or-north of the
//!   E_i-row and west of the N_i-column (resp. for E_i-packets);
//! * and the §4.1 corollary that an N_i-packet is never east of its
//!   N_i-column nor an E_i-packet north of its E_i-row.

use crate::classify::{Class, ClassMap};
use crate::constants::GeneralParams;
use crate::geometry::BoxGeometry;
use mesh_engine::Loc;
use mesh_traffic::PacketId;

/// Stateful checker (Lemma 2 needs the previous step's departure counts).
pub struct InvariantChecker {
    dn: u64,
    l: u32,
    num_packets: usize,
    /// Per class (N then E, index i-1): packets outside the i-box (or
    /// delivered) at the previous step.
    prev_out: Vec<u32>,
}

impl InvariantChecker {
    /// Creates a checker for a construction with the given parameters.
    pub fn new(params: &GeneralParams) -> InvariantChecker {
        InvariantChecker {
            dn: params.dn as u64,
            l: params.l,
            num_packets: (2 * params.p * params.l) as usize,
            prev_out: vec![0; 2 * params.l as usize],
        }
    }

    /// Verifies all lemmas after (1-based) step `t`.
    pub fn check_after_step(
        &mut self,
        t: u64,
        geom: &BoxGeometry,
        classes: &ClassMap,
        loc_of: impl Fn(PacketId) -> Loc,
    ) -> Result<(), String> {
        let l = self.l;
        let mut out = vec![0u32; 2 * l as usize];

        for idx in 0..self.num_packets {
            let p = PacketId(idx as u32);
            let Some(cls) = classes.class_of(p) else {
                continue;
            };
            let j = cls.index();
            let loc = loc_of(p);
            let coord = match loc {
                Loc::At(c) => Some(c),
                Loc::Delivered => None,
                Loc::Pending => return Err(format!("packet {p:?} pending mid-construction")),
                // The adversary constructions run without fault plans or
                // admission control, so a destroyed/shed/expired packet
                // means the harness was miswired.
                Loc::Lost => return Err(format!("packet {p:?} lost mid-construction")),
                Loc::Shed | Loc::Expired => {
                    return Err(format!("packet {p:?} shed/expired mid-construction"))
                }
            };

            // Departure counting for Lemmas 1/2: outside the j-box or gone.
            let outside_own = match coord {
                Some(c) => !geom.in_box(c, j),
                None => true,
            };
            if outside_own {
                let slot = if cls.is_n() { j - 1 } else { l + j - 1 } as usize;
                out[slot] += 1;
            }

            if let Some(c) = coord {
                // §4.1 note: never east of the N_j-column / north of E_j-row.
                match cls {
                    Class::N(_) => {
                        if c.x > geom.n_col(j) {
                            return Err(format!("N_{j} packet {p:?} east of its column at {c:?}"));
                        }
                    }
                    Class::E(_) => {
                        if c.y > geom.e_row(j) {
                            return Err(format!("E_{j} packet {p:?} north of its row at {c:?}"));
                        }
                    }
                }

                // Lemmas 5/6: inside the (i0−2)-box where i0 is the smallest
                // applicable i (1 < i ≤ j, t ≤ (i−1)·dn) — the tightest box.
                let i0 = (t.div_ceil(self.dn) + 1).max(2);
                if i0 <= j as u64 {
                    let b = i0 as u32 - 2;
                    if !geom.in_box(c, b) {
                        return Err(format!(
                            "Lemma 5/6: {cls:?} packet {p:?} outside the {b}-box at {c:?} (t={t})"
                        ));
                    }
                }

                // Lemmas 7/8: while t ≤ j·dn.
                if t <= j as u64 * self.dn {
                    match cls {
                        Class::N(_) => {
                            if c.y >= geom.e_row(j) && c.x < geom.n_col(j) {
                                return Err(format!(
                                    "Lemma 7: N_{j} packet {p:?} at {c:?} (t={t})"
                                ));
                            }
                        }
                        Class::E(_) => {
                            if c.x >= geom.n_col(j) && c.y < geom.e_row(j) {
                                return Err(format!(
                                    "Lemma 8: E_{j} packet {p:?} at {c:?} (t={t})"
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Lemmas 1/2 via departure counts.
        for i in 1..=l {
            for (kind, slot) in [("N", (i - 1) as usize), ("E", (l + i - 1) as usize)] {
                let now = out[slot];
                let before = self.prev_out[slot];
                if t <= (i as u64 - 1) * self.dn {
                    if now != 0 {
                        return Err(format!(
                            "Lemma 1: {now} {kind}_{i} packets outside the {i}-box at t={t}"
                        ));
                    }
                } else if t <= i as u64 * self.dn && now > before + 1 {
                    return Err(format!(
                        "Lemma 2: {} {kind}_{i} packets left the {i}-box in one step (t={t})",
                        now - before
                    ));
                }
            }
        }
        self.prev_out = out;
        Ok(())
    }
}
