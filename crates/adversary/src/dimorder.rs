//! The §5 construction against destination-exchangeable **dimension-order**
//! routers: `Ω(n²/k)`.
//!
//! "Consider the westernmost (1−c)n nodes in each of the cn southernmost
//! rows of the mesh. Each of these nodes will send a packet to some node in
//! the northernmost (1−c)n nodes of the cn easternmost columns. Define the
//! N_i-column to be the ((1−c)n − 1 + i)-th column, and the i-box to be the
//! set of nodes west of and including the N_i-column and south of and
//! including row cn. … there is only one exchange rule: for i ≥ 1, j > i, if
//! an N_j-packet is scheduled by the outqueue policy of a node to enter the
//! N_i-column during steps 1 to i·dn, then exchange that packet with an
//! N_i-packet in the (i−1)-box that is not scheduled to enter the
//! N_i-column."

use crate::classify::{Class, ClassMap};
use crate::constants::DimOrderParams;
use crate::general::ConstructionOutcome;
use mesh_engine::{HookCtx, Router, Sim, StepHook};
use mesh_topo::{Coord, Topology};
use mesh_traffic::{PacketId, RoutingProblem};

/// The §5 dimension-order construction.
#[derive(Clone, Debug)]
pub struct DimOrderConstruction {
    pub params: DimOrderParams,
}

impl DimOrderConstruction {
    /// Creates the construction for the given parameters.
    pub fn new(params: DimOrderParams) -> DimOrderConstruction {
        DimOrderConstruction { params }
    }

    /// `x` coordinate of the N_i-column: `(1−c)n − 1 + i` 1-based.
    #[inline]
    pub fn n_col(&self, i: u32) -> u32 {
        self.params.n - self.params.cn + i - 2
    }

    /// The i-box: `x ≤ n_col(i)`, `y ≤ cn − 1`. The 0-box is everything
    /// strictly west of the N_1-column within the same rows.
    #[inline]
    pub fn in_box(&self, c: Coord, i: u32) -> bool {
        if c.y >= self.params.cn {
            return false;
        }
        if i == 0 {
            c.x < self.n_col(1)
        } else {
            c.x <= self.n_col(i)
        }
    }

    /// Class of a construction destination: N_i destinations live in the
    /// N_i-column at `y ≥ cn`.
    pub fn classify_dst(&self, d: Coord) -> Option<Class> {
        let DimOrderParams { n, cn, l, .. } = self.params;
        if d.y < cn {
            return None;
        }
        // d.x = n - cn + i - 2  =>  i = d.x + cn + 2 - n.
        let i64v = d.x as i64 + cn as i64 + 2 - n as i64;
        (1..=l as i64)
            .contains(&i64v)
            .then_some(Class::N(i64v as u32))
    }

    /// Step 1: the initial placement. The easternmost source column — which
    /// *is* the N_1-column — holds only N_1-packets; all other classes fill
    /// the remaining source cells (row-major) west of it, which keeps every
    /// N_j (j ≥ 2) inside the (j−2)-box initially.
    pub fn initial_problem(&self) -> RoutingProblem {
        let DimOrderParams { n, cn, p, l, .. } = self.params;
        let edge = self.n_col(1);
        let n_dst = |i: u32, m: u32| Coord::new(self.n_col(i), n - 1 - m);
        let mut pairs: Vec<(Coord, Coord)> = Vec::with_capacity((p * l) as usize);

        let mut n1_used = 0u32;
        for y in 0..cn {
            pairs.push((Coord::new(edge, y), n_dst(1, n1_used)));
            n1_used += 1;
        }
        assert!(n1_used <= p);

        let mut todo: Vec<(u32, u32)> = Vec::new();
        for m in n1_used..p {
            todo.push((1, m));
        }
        for i in 2..=l {
            for m in 0..p {
                todo.push((i, m));
            }
        }
        let mut cells = (0..cn).flat_map(|y| (0..edge).map(move |x| Coord::new(x, y)));
        for (i, m) in todo {
            let cell = cells.next().expect("source region too small");
            pairs.push((cell, n_dst(i, m)));
        }

        RoutingProblem::from_pairs(
            n,
            format!(
                "clt-dimorder-initial(n={n},k={},cn={cn},p={p},l={l})",
                self.params.k
            ),
            pairs,
        )
    }

    /// Runs the construction for `⌊l⌋·dn` steps against `router`.
    pub fn run<T: Topology, R: Router>(&self, topo: &T, router: R) -> ConstructionOutcome {
        assert_eq!(topo.side(), self.params.n);
        let pb = self.initial_problem();
        let mut sim = Sim::new(topo, router, &pb);
        let dsts: Vec<Coord> = pb.packets.iter().map(|p| p.dst).collect();
        let classes = ClassMap::new(&dsts, |d| self.classify_dst(d));
        let mut hook = DimOrderHook {
            cons: self.clone(),
            classes,
            scheduled: vec![false; pb.len()],
        };
        let bound = self.params.bound_steps();
        for _ in 1..=bound {
            sim.step_with_hook(&mut hook);
        }
        ConstructionOutcome {
            constructed: sim.current_problem(format!(
                "clt-dimorder-constructed(n={},k={})",
                self.params.n, self.params.k
            )),
            final_snapshot: sim.packet_snapshot(),
            exchanges: sim.report().exchanges,
            undelivered_at_bound: sim.num_packets() - sim.delivered(),
            bound_steps: bound,
        }
    }
}

struct DimOrderHook {
    cons: DimOrderConstruction,
    classes: ClassMap,
    scheduled: Vec<bool>,
}

impl DimOrderHook {
    fn find_partner(&self, ctx: &HookCtx<'_>, i: u32) -> PacketId {
        let col = self.cons.n_col(i);
        let in_prev_box = |cand: PacketId| match ctx.node_of(cand) {
            Some(c) => self.cons.in_box(c, i - 1),
            None => false,
        };
        for &cand in self.classes.members(Class::N(i)) {
            if !self.scheduled[cand.index()] && in_prev_box(cand) {
                return cand;
            }
        }
        for &cand in self.classes.members(Class::N(i)) {
            if !in_prev_box(cand) {
                continue;
            }
            let enters = ctx
                .moves
                .iter()
                .any(|m| m.pkt == cand && m.to.x == col && m.from.x != col);
            if !enters {
                return cand;
            }
        }
        panic!(
            "no eligible N_{i} exchange partner at step {} (construction bug)",
            ctx.t
        );
    }
}

impl StepHook for DimOrderHook {
    #[allow(clippy::while_let_loop)]
    fn on_scheduled(&mut self, ctx: &mut HookCtx<'_>) {
        let t = ctx.t;
        self.scheduled.iter_mut().for_each(|b| *b = false);
        for m in ctx.moves {
            self.scheduled[m.pkt.index()] = true;
        }
        let dn = self.cons.params.dn as u64;
        let l = self.cons.params.l;
        let mut passes = 0;
        loop {
            let before = ctx.exchange_count();
            for mi in 0..ctx.moves.len() {
                let m = ctx.moves[mi];
                loop {
                    let Some(Class::N(j)) = self.classes.class_of(m.pkt) else {
                        break;
                    };
                    // Entering some N_i-column (from outside it)?
                    let to_i =
                        m.to.x as i64 + self.cons.params.cn as i64 + 2 - self.cons.params.n as i64;
                    if !(1..=l as i64).contains(&to_i) || m.from.x == m.to.x {
                        break;
                    }
                    let i = to_i as u32;
                    if j > i && t <= i as u64 * dn {
                        let partner = self.find_partner(ctx, i);
                        ctx.exchange(m.pkt, partner);
                        self.classes.record_exchange(m.pkt, partner);
                        // Re-evaluate this move with its new class.
                        continue;
                    }
                    break;
                }
            }
            if ctx.exchange_count() == before {
                break;
            }
            passes += 1;
            assert!(passes < 64, "exchange fixpoint did not converge");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::DimOrderParams;

    fn cons(n: u32, k: u32) -> DimOrderConstruction {
        DimOrderConstruction::new(DimOrderParams::new(n, k).unwrap())
    }

    #[test]
    fn geometry_and_classes() {
        let c = cons(216, 1);
        // N_1-column is the easternmost source column.
        assert_eq!(c.n_col(1), 216 - 36 - 1);
        assert_eq!(c.n_col(c.params.l), 216 - 2);
        // Classes decode from destinations.
        for i in 1..=c.params.l {
            let d = Coord::new(c.n_col(i), 216 - 1);
            assert_eq!(c.classify_dst(d), Some(Class::N(i)));
        }
        // South of row cn: never a destination.
        assert_eq!(c.classify_dst(Coord::new(c.n_col(1), 0)), None);
    }

    #[test]
    fn boxes_nest_and_zero_box_is_strict() {
        let c = cons(216, 1);
        let edge = c.n_col(1);
        assert!(c.in_box(Coord::new(edge, 0), 1));
        assert!(!c.in_box(Coord::new(edge, 0), 0));
        assert!(c.in_box(Coord::new(edge - 1, 35), 0));
        // Above row cn-1: outside every box.
        assert!(!c.in_box(Coord::new(0, 36), 1));
    }

    #[test]
    fn placement_preconditions() {
        let c = cons(216, 1);
        let pb = c.initial_problem();
        assert!(pb.is_partial_permutation());
        assert_eq!(pb.len(), (c.params.p * c.params.l) as usize);
        for pk in &pb.packets {
            let cls = c.classify_dst(pk.dst).unwrap();
            // Sources in the cn southern rows, west of or on the N_1-column.
            assert!(pk.src.y < c.params.cn);
            assert!(pk.src.x <= c.n_col(1));
            // Only N_1 packets on the N_1-column.
            if pk.src.x == c.n_col(1) {
                assert_eq!(cls, Class::N(1));
            }
            // Classes >= 2 start strictly west (0-box).
            if cls.index() >= 2 {
                assert!(pk.src.x < c.n_col(1));
            }
            // Destinations in the northernmost (1-c)n rows.
            assert!(pk.dst.y >= c.params.cn);
        }
    }
}
