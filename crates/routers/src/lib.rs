//! # mesh-routers
//!
//! The routing algorithms of Chinn, Leighton & Tompa (SPAA 1994), minus the
//! §6 tiling algorithm (which needs its own phased engine and lives in the
//! `mesh-routing` core crate):
//!
//! | Router | Paper reference | Information | Queues |
//! |---|---|---|---|
//! | [`DimOrder`] | §1.1, §2 ("dimension order … FIFO queues and round-robin inqueue policy") | destination-exchangeable | central, size `k` |
//! | [`AltAdaptive`] | §2's adaptive example ("moves in one profitable direction until it is blocked by congestion, then moves in its other profitable direction") | destination-exchangeable | central, size `k` |
//! | [`WestFirst`] | §2's cited turn-model family (Chien–Kim, Cypher–Gravano) | destination-exchangeable | central, size `k` |
//! | [`Theorem15`] | Theorem 15: `O(n²/k + n)` dimension order | destination-exchangeable | four inlink queues, size `k` |
//! | [`FarthestFirst`] | §1.1 greedy (2n−2 with unbounded queues) and §5's farthest-first lower-bound target | full destination | central, size `k` |
//! | [`HotPotato`] | §5 nonminimal discussion (deflection; escapes Theorem 14) | destination-exchangeable, nonminimal | one slot per inlink |
//! | [`BoundedDeflect`] | §5 "within δ of the shortest-path rectangle" class | destination-exchangeable, δ-nonminimal | central, size `k` |
//!
//! All are deterministic. The destination-exchangeable ones implement
//! [`mesh_engine::DxRouter`] and therefore *cannot* consult destinations —
//! the trait's views contain none.
//!
//! Any of them can be made fault-tolerant by wrapping in [`FaultAware`],
//! which masks currently-down outlinks from the inner router's view so its
//! ordinary direction fallback routes around injected faults.

pub mod alt_adaptive;
pub mod bounded_deflect;
pub mod common;
pub mod dimorder;
pub mod farthest;
pub mod fault_aware;
pub mod hotpotato;
pub mod theorem15;
pub mod west_first;

pub use alt_adaptive::AltAdaptive;
pub use bounded_deflect::{within_delta_of_rectangle, BoundedDeflect};
pub use common::{dim_order_dir, Axis};
pub use dimorder::DimOrder;
pub use farthest::FarthestFirst;
pub use fault_aware::FaultAware;
pub use hotpotato::HotPotato;
pub use theorem15::Theorem15;
pub use west_first::WestFirst;

use mesh_engine::Dx;

/// Convenience constructors wrapping the Dx routers for execution.
pub fn dim_order(k: u32) -> Dx<DimOrder> {
    Dx::new(DimOrder::new(k))
}

/// Column-first (YX) dimension order, central queue of size `k`.
pub fn dim_order_yx(k: u32) -> Dx<DimOrder> {
    Dx::new(DimOrder::yx(k))
}

/// The §2 alternating minimal-adaptive example, central queue of size `k`.
pub fn alt_adaptive(k: u32) -> Dx<AltAdaptive> {
    Dx::new(AltAdaptive::new(k))
}

/// The Theorem 15 router with four inlink queues of size `k`.
pub fn theorem15(k: u32) -> Dx<Theorem15> {
    Dx::new(Theorem15::new(k))
}

/// The hot-potato deflection router (nonminimal, unit buffers) for a
/// side-`n` grid.
pub fn hot_potato(n: u32) -> Dx<HotPotato> {
    Dx::new(HotPotato::new(n))
}
