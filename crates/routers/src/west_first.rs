//! West-first turn-model routing: a minimal adaptive router in the spirit
//! of the planar-adaptive/turn-model family the paper cites in §2 as
//! implementable destination-exchangeable algorithms (Chien–Kim [6],
//! Cypher–Gravano [7]).
//!
//! Rule: if the packet needs to move west at all, it moves **fully west
//! first** (no adaptivity — westward packets turn only after finishing the
//! west leg). Packets with no westward component route fully adaptively
//! among their profitable {east, north, south} directions. On minimal paths
//! this is precisely the classic *west-first* turn restriction, and every
//! decision depends only on the profitable-outlink set — destination-
//! exchangeable by construction.
//!
//! Like the other central-queue routers here it uses conservative
//! acceptance, so it is subject to the same Theorem 14 lower bound (and the
//! same practical stalls) — it exists to show the bound's universality
//! across the §2-cited adaptive family.

use crate::common::{round_robin_accept, RoundRobin};
use mesh_engine::{Arrival, DxRouter, DxView, PackedArrival, PackedView, QueueArch};
use mesh_topo::{Coord, Dir, DirSet, ALL_DIRS};

/// West-first minimal adaptive router on a central queue of capacity `k`.
#[derive(Clone, Debug)]
pub struct WestFirst {
    k: u32,
}

impl WestFirst {
    /// Creates the router with central queues of capacity `k`.
    pub fn new(k: u32) -> WestFirst {
        WestFirst { k }
    }
}

/// The west-first turn restriction as a mask: while a west leg remains,
/// only West is permitted; otherwise the packet is fully adaptive over its
/// profitable set.
fn allowed_mask(profitable: DirSet) -> DirSet {
    if profitable.contains(Dir::West) {
        DirSet::single(Dir::West)
    } else {
        profitable
    }
}

/// Directions this packet may take, in preference order.
fn choices(p: &DxView) -> impl Iterator<Item = Dir> + '_ {
    allowed_mask(p.profitable).iter()
}

impl DxRouter for WestFirst {
    type NodeState = RoundRobin;

    fn name(&self) -> String {
        format!("west-first(k={})", self.k)
    }

    fn queue_arch(&self) -> QueueArch {
        QueueArch::Central { k: self.k }
    }

    fn outqueue(
        &self,
        step: u64,
        _node: Coord,
        _state: &mut RoundRobin,
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    ) {
        // FIFO order. Adaptive packets rotate their first choice by step
        // parity so contention spreads over the allowed directions.
        let mut order: Vec<usize> = (0..pkts.len()).collect();
        order.sort_by_key(|&i| pkts[i].pos);
        for i in order {
            let opts: Vec<Dir> = choices(&pkts[i]).collect();
            if opts.is_empty() {
                continue;
            }
            let start = (step as usize) % opts.len();
            for off in 0..opts.len() {
                let d = opts[(start + off) % opts.len()];
                if out[d.index()].is_none() {
                    out[d.index()] = Some(i);
                    break;
                }
            }
        }
    }

    fn inqueue(
        &self,
        _step: u64,
        _node: Coord,
        state: &mut RoundRobin,
        residents: &[DxView],
        arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    ) {
        let mut room = (self.k as usize).saturating_sub(residents.len());
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| state.rank(arrivals[i].travel.opposite()));
        for i in order {
            if room == 0 {
                break;
            }
            accept[i] = true;
            room -= 1;
        }
        state.advance();
    }

    // Bit-packed fast path: identical decisions, no allocation. The view
    // outqueue sorts by pos, but on the Central arch packets live in one
    // queue and are offered in queue order, so pos *is* the index — the
    // sort was the identity permutation.

    fn mask_capable(&self) -> bool {
        true
    }

    fn outqueue_packed(
        &self,
        step: u64,
        _node: Coord,
        _state: &mut RoundRobin,
        pkts: &[PackedView],
        out: &mut [Option<usize>; 4],
    ) {
        for (i, p) in pkts.iter().enumerate() {
            debug_assert_eq!(p.pos() as usize, i, "central queue offers in pos order");
            let mask = allowed_mask(p.profitable());
            let mut opts = [Dir::North; 4];
            let mut cnt = 0;
            for d in ALL_DIRS {
                if mask.contains(d) {
                    opts[cnt] = d;
                    cnt += 1;
                }
            }
            if cnt == 0 {
                continue;
            }
            // Adaptive packets rotate their first choice by step parity so
            // contention spreads over the allowed directions.
            let start = (step as usize) % cnt;
            for off in 0..cnt {
                let d = opts[(start + off) % cnt];
                if out[d.index()].is_none() {
                    out[d.index()] = Some(i);
                    break;
                }
            }
        }
    }

    fn inqueue_packed(
        &self,
        _step: u64,
        _node: Coord,
        state: &mut RoundRobin,
        queue_lens: &[u32],
        arrivals: &[PackedArrival],
        accept: &mut [bool],
    ) {
        round_robin_accept(self.k, queue_lens[0], state, arrivals, accept);
    }

    fn uses_end_of_step(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::{Dx, Loc, Sim};
    use mesh_topo::{DirSet, Mesh};
    use mesh_traffic::{workloads, PacketId, RoutingProblem};

    #[test]
    fn west_leg_comes_first() {
        let mk = |prof: DirSet| DxView {
            id: PacketId(0),
            src: Coord::new(0, 0),
            state: 0,
            profitable: prof,
            queue: mesh_engine::QueueKind::Central,
            pos: 0,
        };
        // Needs west and north: only west allowed.
        let v = mk(DirSet::from_dirs([Dir::West, Dir::North]));
        assert_eq!(choices(&v).collect::<Vec<_>>(), vec![Dir::West]);
        // Needs east and north: both allowed (adaptive).
        let v = mk(DirSet::from_dirs([Dir::East, Dir::North]));
        assert_eq!(choices(&v).collect::<Vec<_>>(), vec![Dir::North, Dir::East]);
    }

    #[test]
    fn westbound_packet_routes_west_then_turns() {
        let topo = Mesh::new(8);
        let pb = RoutingProblem::from_pairs(8, "wf", [(Coord::new(6, 1), Coord::new(2, 5))]);
        let mut sim = Sim::new(&topo, Dx::new(WestFirst::new(2)), &pb);
        for _ in 0..4 {
            sim.step();
        }
        // After 4 steps the west leg (4 hops) must be complete.
        assert_eq!(sim.loc(PacketId(0)), Loc::At(Coord::new(2, 1)));
        let steps = sim.run(100).unwrap();
        assert_eq!(steps, 8, "minimal path overall");
    }

    #[test]
    fn routes_permutations_with_ample_queues() {
        let topo = Mesh::new(12);
        for seed in 0..3 {
            let pb = workloads::random_permutation(12, seed);
            let mut sim = Sim::new(&topo, Dx::new(WestFirst::new(144)), &pb);
            let steps = sim.run(10_000).unwrap();
            assert!(sim.report().completed);
            assert!(steps <= 100, "seed {seed}: {steps}");
            assert_eq!(sim.report().total_moves, pb.total_work());
        }
    }
}
