//! Fault-tolerant wrapper: route around what is broken.
//!
//! [`FaultAware`] wraps any [`Router`] and masks outlinks that the shared
//! [`CompiledFaults`] table says are down *right now* out of every packet
//! view the inner router sees. The inner algorithm needs no changes: to
//! dimension order, west-first, or the Theorem 15 router, a faulted East
//! link simply looks like East not being profitable, and their ordinary
//! direction fallback does the rerouting.
//!
//! Two properties make the mask sound:
//!
//! * **Minimality is preserved** — the masked set is a subset of the true
//!   profitable set, so every move the inner router schedules from it still
//!   passes the engine's minimality validation.
//! * **Destination-exchangeability is preserved** — the mask depends only on
//!   the step, the node, and the fault table, never on a destination, so a
//!   wrapped `Dx` router is still destination-exchangeable.
//!
//! The wrapper is advisory, not load-bearing: the engine independently drops
//! transmissions over down links, so an inner router that schedules onto a
//! faulted link anyway (e.g. a nonminimal one whose choices the mask cannot
//! steer) loses the move but stays correct. Masking merely lets the router
//! spend its step on a link that works.

use mesh_engine::{Arrival, FullView, PackedArrival, PackedView, QueueArch, Router};
use mesh_faults::CompiledFaults;
use mesh_topo::Coord;
use std::cell::Cell;
use std::sync::Arc;

/// A [`Router`] adapter that hides faulted outlinks from the inner router.
///
/// Share one compiled fault table between the wrapper and
/// [`Sim::with_faults`](mesh_engine::Sim::with_faults) so the router's view
/// of the network and the engine's enforcement always agree.
pub struct FaultAware<R> {
    inner: R,
    faults: Arc<CompiledFaults>,
}

// Masking scratch is per thread, not per wrapper: `Router` is `Sync` so the
// tile-sharded engine can share one wrapper across workers. Take/set on a
// `Cell` (rather than `RefCell` borrows) stays reentrant under nesting — an
// inner wrapper just sees an empty buffer.
thread_local! {
    static FA_RESIDENTS: Cell<Vec<FullView>> = const { Cell::new(Vec::new()) };
    static FA_ARRIVALS: Cell<Vec<Arrival<FullView>>> = const { Cell::new(Vec::new()) };
}

impl<R> FaultAware<R> {
    /// Wraps `inner`, masking against `faults`.
    pub fn new(inner: R, faults: Arc<CompiledFaults>) -> FaultAware<R> {
        FaultAware { inner, faults }
    }

    /// The wrapped router.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// A resident view with the node's down outlinks masked out.
    fn mask_at(&self, step: u64, node: Coord, mut view: FullView) -> FullView {
        for d in view.profitable.iter() {
            if self.faults.link_down(step, node, d) {
                view.profitable.remove(d);
            }
        }
        view
    }

    /// An arrival view, masked at the node it is coming *from* (§2 measures
    /// a scheduled packet's profitable outlinks from its sender).
    fn mask_arrival(
        &self,
        step: u64,
        node: Coord,
        arrival: Arrival<FullView>,
    ) -> Arrival<FullView> {
        let (dx, dy) = arrival.travel.delta();
        let from = Coord::new((node.x as i64 - dx) as u32, (node.y as i64 - dy) as u32);
        Arrival {
            view: self.mask_at(step, from, arrival.view),
            travel: arrival.travel,
        }
    }
}

impl<R: Router> Router for FaultAware<R> {
    type NodeState = R::NodeState;

    fn name(&self) -> String {
        format!("fault-aware({})", self.inner.name())
    }

    fn queue_arch(&self) -> QueueArch {
        self.inner.queue_arch()
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn outqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[FullView],
        out: &mut [Option<usize>; 4],
    ) {
        if self.faults.is_empty() {
            return self.inner.outqueue(step, node, state, pkts, out);
        }
        {
            let mut buf = FA_RESIDENTS.take();
            buf.clear();
            buf.extend(pkts.iter().map(|&v| self.mask_at(step, node, v)));
            self.inner.outqueue(step, node, state, &buf, out);
            FA_RESIDENTS.set(buf);
        }
        // Belt and braces: a nonminimal inner router may still have picked a
        // down link (the mask only edits *profitable* sets). Clear it — the
        // engine would drop the move anyway.
        for (di, slot) in out.iter_mut().enumerate() {
            if slot.is_some() && self.faults.link_down(step, node, mesh_topo::ALL_DIRS[di]) {
                *slot = None;
            }
        }
    }

    fn inqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[FullView],
        arrivals: &[Arrival<FullView>],
        accept: &mut [bool],
    ) {
        if self.faults.is_empty() {
            return self
                .inner
                .inqueue(step, node, state, residents, arrivals, accept);
        }
        let mut rbuf = FA_RESIDENTS.take();
        rbuf.clear();
        rbuf.extend(residents.iter().map(|&v| self.mask_at(step, node, v)));
        let mut abuf = FA_ARRIVALS.take();
        abuf.clear();
        abuf.extend(arrivals.iter().map(|&a| self.mask_arrival(step, node, a)));
        self.inner.inqueue(step, node, state, &rbuf, &abuf, accept);
        FA_RESIDENTS.set(rbuf);
        FA_ARRIVALS.set(abuf);
        // Capacity guard: some acceptance rules assume fault-free progress
        // invariants (e.g. Theorem 15's vertical queues always accept
        // because a vertical packet always departs next step). Faults void
        // such guarantees, so veto anything that would overflow a bounded
        // queue — the sender keeps the packet and backpressure replaces
        // overflow.
        let arch = self.inner.queue_arch();
        let mut extra = [0usize; 5];
        for (i, a) in arrivals.iter().enumerate() {
            if !accept[i] || a.view.dst == node {
                continue; // rejected, or delivered on arrival (no slot used)
            }
            let kind = arch.arrival_queue(a.travel);
            if let Some(cap) = arch.capacity(kind) {
                let len = residents.iter().filter(|r| r.queue == kind).count() + extra[kind.slot()];
                if len < cap as usize {
                    extra[kind.slot()] += 1;
                } else {
                    accept[i] = false;
                }
            }
        }
    }

    fn end_of_step(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[FullView],
        states: &mut [u64],
    ) {
        if self.faults.is_empty() {
            return self.inner.end_of_step(step, node, state, residents, states);
        }
        let mut rbuf = FA_RESIDENTS.take();
        rbuf.clear();
        rbuf.extend(residents.iter().map(|&v| self.mask_at(step, node, v)));
        self.inner.end_of_step(step, node, state, &rbuf, states);
        FA_RESIDENTS.set(rbuf);
    }

    /// An empty fault table makes every view method a pure pass-through
    /// (the masks and guards above are all behind `is_empty` early
    /// returns), so the packed fast path can be forwarded verbatim. With
    /// faults present the wrapper must edit views, which the packed path
    /// cannot express — it stays off and the view path masks as before.
    fn mask_capable(&self) -> bool {
        self.faults.is_empty() && self.inner.mask_capable()
    }

    fn outqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[PackedView],
        out: &mut [Option<usize>; 4],
    ) {
        self.inner.outqueue_packed(step, node, state, pkts, out);
    }

    fn inqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        queue_lens: &[u32],
        arrivals: &[PackedArrival],
        accept: &mut [bool],
    ) {
        self.inner
            .inqueue_packed(step, node, state, queue_lens, arrivals, accept);
    }

    /// Masking never changes whether the *inner* end-of-step does anything:
    /// if it is the no-op, masked views feed a no-op all the same.
    fn uses_end_of_step(&self) -> bool {
        self.inner.uses_end_of_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DimOrder;
    use mesh_engine::{Dx, Sim, SimConfig, SimError};
    use mesh_faults::FaultPlan;
    use mesh_topo::{Dir, Mesh};
    use mesh_traffic::{workloads, RoutingProblem};

    fn wrapped_dim_order(k: u32, faults: &Arc<CompiledFaults>) -> FaultAware<Dx<DimOrder>> {
        FaultAware::new(Dx::new(DimOrder::new(k)), Arc::clone(faults))
    }

    /// With no faults the wrapper is a pure pass-through: identical steps
    /// and identical packet trajectories.
    #[test]
    fn no_faults_is_transparent() {
        let topo = Mesh::new(8);
        let pb = workloads::random_permutation(8, 4);
        let faults = Arc::new(FaultPlan::none(8).compile());
        let mut plain = Sim::new(&topo, Dx::new(DimOrder::new(8)), &pb);
        let mut wrapped = Sim::new(&topo, wrapped_dim_order(8, &faults), &pb);
        let a = plain.run(100_000).unwrap();
        let b = wrapped.run(100_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.packet_snapshot(), wrapped.packet_snapshot());
    }

    /// A single packet whose row is cut reroutes around the fault and still
    /// arrives, two steps later than the L1 distance.
    #[test]
    fn reroutes_around_a_cut_row() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_pairs(4, "one", [(Coord::new(0, 0), Coord::new(3, 2))]);
        let faults = Arc::new(
            FaultPlan::none(4)
                .link_down(Coord::new(1, 0), Dir::East, 0, None)
                .compile(),
        );
        let mut sim = Sim::with_faults(
            &topo,
            wrapped_dim_order(4, &faults),
            &pb,
            SimConfig::default(),
            faults.as_ref().clone(),
        );
        let steps = sim.run(100).expect("fault-aware must deliver");
        // Path: E to (1,0), N (east is masked), E E along row 1, N to (3,2):
        // same L1 distance — the detour is even free here because the packet
        // needed to go north anyway.
        assert_eq!(steps, 5);
    }

    /// The acceptance scenario: a random partial permutation on n = 16 and
    /// one persistent East link fault, chosen so that (a) at least one
    /// packet's row leg crosses the link, and (b) no packet *terminates*
    /// east of the fault on that row after crossing it (such a packet would
    /// be unroutable by any XY strategy confined to minimal paths).
    ///
    /// Plain dimension order must be reported deadlocked by the watchdog —
    /// not panic, not hit the step cap — while the fault-aware wrapper
    /// delivers 100%.
    #[test]
    fn acceptance_partial_permutation_single_link_fault() {
        let n: u32 = 16;
        let topo = Mesh::new(n);
        let pb = workloads::random_partial_permutation(n, 0.5, 2024);

        // Deterministically pick the faulted link per the criteria above.
        let mut fault_at = None;
        'search: for y in 0..n {
            for x in 0..n - 1 {
                let crossing = |src: Coord, dst: Coord| src.y == y && src.x <= x && x < dst.x;
                let crossers = pb.packets.iter().filter(|p| crossing(p.src, p.dst)).count();
                let doomed = pb
                    .packets
                    .iter()
                    .filter(|p| crossing(p.src, p.dst) && p.dst.y == y)
                    .count();
                if crossers > 0 && doomed == 0 {
                    fault_at = Some(Coord::new(x, y));
                    break 'search;
                }
            }
        }
        let at = fault_at.expect("workload must admit a suitable fault");
        let faults = Arc::new(
            FaultPlan::none(n)
                .link_down(at, Dir::East, 0, None)
                .compile(),
        );
        let config = SimConfig {
            watchdog: Some(200),
            ..SimConfig::default()
        };

        // Unwrapped dimension order: stuck packets pile up at the fault and
        // the watchdog reports it (k is ample, so it is the link, not
        // capacity, that wedges the run).
        let mut plain = Sim::with_faults(
            &topo,
            Dx::new(DimOrder::new(n * n)),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        let err = plain.run(1_000_000).unwrap_err();
        assert!(
            matches!(err, SimError::Deadlock(_) | SimError::Livelock(_)),
            "expected watchdog verdict, got {err}"
        );
        assert!(!err.snapshot().stuck.is_empty());
        assert_eq!(err.snapshot().active_faults.len(), 1);

        // Fault-aware wrapper over the same router, same faults: 100%.
        let mut wrapped = Sim::with_faults(
            &topo,
            wrapped_dim_order(n * n, &faults),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        let steps = wrapped
            .run(1_000_000)
            .expect("fault-aware dimension order must deliver everything");
        assert!(wrapped.done());
        assert_eq!(wrapped.delivered(), pb.len());
        assert!(steps < 1_000_000);
    }

    /// Wrapped name advertises the wrapper.
    #[test]
    fn name_reflects_wrapping() {
        let faults = Arc::new(FaultPlan::none(4).compile());
        let r = wrapped_dim_order(2, &faults);
        assert_eq!(r.name(), "fault-aware(dim-order-xy(k=2))");
    }
}
