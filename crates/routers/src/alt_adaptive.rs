//! The §2 minimal-adaptive example router.
//!
//! "An adaptive example might be similar, except that each packet moves in
//! one profitable direction until it is blocked by congestion, and then
//! moves in its other profitable direction, continuing this alternation
//! until it reaches its destination."
//!
//! The packet's preferred axis lives in bit 0 of its state word; the rest of
//! the word caches the packet's position at the end of the previous step so
//! the end-of-step update can tell "moved" from "blocked" (a node may use its
//! own identity in state updates — doing so never lets a policy distinguish
//! exchanged packets, which is all destination-exchangeability requires).

use crate::common::{Axis, RoundRobin};
use mesh_engine::{Arrival, DxRouter, DxView, QueueArch};
use mesh_topo::{Coord, ALL_DIRS};

/// Alternating minimal-adaptive router on a central queue of capacity `k`.
#[derive(Clone, Debug)]
pub struct AltAdaptive {
    k: u32,
}

impl AltAdaptive {
    /// Creates the router with central queues of capacity `k`.
    pub fn new(k: u32) -> AltAdaptive {
        AltAdaptive { k }
    }
}

fn preferred_axis(state: u64) -> Axis {
    if state & 1 == 0 {
        Axis::Horizontal
    } else {
        Axis::Vertical
    }
}

fn position_key(node: Coord) -> u64 {
    // Shifted so that the key is never 0 (0 = "no position recorded yet").
    (((node.y as u64) << 24 | node.x as u64) + 1) << 1
}

/// The direction this packet wants: its preferred axis if profitable there,
/// otherwise the other axis.
fn desired_dir(p: &DxView) -> Option<mesh_topo::Dir> {
    let axis = preferred_axis(p.state);
    axis.profitable_dir(p.profitable)
        .or_else(|| axis.other().profitable_dir(p.profitable))
}

impl DxRouter for AltAdaptive {
    type NodeState = RoundRobin;

    fn name(&self) -> String {
        format!("alt-adaptive(k={})", self.k)
    }

    fn queue_arch(&self) -> QueueArch {
        QueueArch::Central { k: self.k }
    }

    fn outqueue(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut RoundRobin,
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    ) {
        for d in ALL_DIRS {
            let mut best: Option<usize> = None;
            for (i, p) in pkts.iter().enumerate() {
                if desired_dir(p) == Some(d) && best.is_none_or(|b| pkts[b].pos > p.pos) {
                    best = Some(i);
                }
            }
            out[d.index()] = best;
        }
    }

    fn inqueue(
        &self,
        _step: u64,
        _node: Coord,
        state: &mut RoundRobin,
        residents: &[DxView],
        arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    ) {
        let mut room = (self.k as usize).saturating_sub(residents.len());
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| state.rank(arrivals[i].travel.opposite()));
        for i in order {
            if room == 0 {
                break;
            }
            accept[i] = true;
            room -= 1;
        }
        state.advance();
    }

    fn end_of_step(
        &self,
        _step: u64,
        node: Coord,
        _state: &mut RoundRobin,
        residents: &[DxView],
        states: &mut [u64],
    ) {
        let here = position_key(node);
        for (p, s) in residents.iter().zip(states.iter_mut()) {
            // A fresh packet (state 0) is "at its source": the model lets the
            // initial packet state encode the source address (§2).
            let was = if *s == 0 {
                position_key(p.src)
            } else {
                *s & !1
            };
            let axis_bit = *s & 1;
            if was == here && !p.profitable.is_empty() {
                // Same node as last step with somewhere profitable to go:
                // the packet was blocked — alternate its preferred axis.
                *s = here | (axis_bit ^ 1);
            } else {
                *s = here | axis_bit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::{Dx, Loc, Sim};
    use mesh_topo::{Dir, DirSet, Mesh};
    use mesh_traffic::{workloads, PacketId, RoutingProblem};

    #[test]
    fn desired_dir_prefers_state_axis() {
        let mk = |state| DxView {
            id: PacketId(0),
            src: Coord::new(0, 0),
            state,
            profitable: DirSet::from_dirs([Dir::East, Dir::North]),
            queue: mesh_engine::QueueKind::Central,
            pos: 0,
        };
        assert_eq!(desired_dir(&mk(0)), Some(Dir::East));
        assert_eq!(desired_dir(&mk(1)), Some(Dir::North));
    }

    #[test]
    fn lone_packet_follows_minimal_path() {
        let topo = Mesh::new(8);
        let pb = RoutingProblem::from_pairs(8, "one", [(Coord::new(1, 1), Coord::new(6, 5))]);
        let mut sim = Sim::new(&topo, Dx::new(AltAdaptive::new(2)), &pb);
        let steps = sim.run(100).unwrap();
        assert_eq!(steps, 9); // manhattan distance: minimal despite adaptivity
    }

    #[test]
    fn blocked_packet_switches_axis() {
        // Packet A occupies (1,0) (its destination is far east so it stays
        // put only if blocked — instead park a packet that never moves by
        // giving it k=1 and a blocker...). Simpler: two packets, one heading
        // east into a node the other occupies; k=1 forces a block and the
        // blocked packet should then move north instead.
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_pairs(
            4,
            "block",
            [
                (Coord::new(1, 0), Coord::new(3, 0)), // slow packet ahead
                (Coord::new(0, 0), Coord::new(2, 1)), // wants east, will divert north
            ],
        );
        let mut sim = Sim::new(&topo, Dx::new(AltAdaptive::new(1)), &pb);
        // Step 1: packet 0 moves to (2,0). Packet 1 wants east into (1,0),
        // but with k = 1 the conservative inqueue policy rejects it ((1,0)
        // was full at the beginning of the step), so packet 1 is blocked and
        // flips its preferred axis to vertical.
        sim.step();
        assert_eq!(sim.loc(PacketId(1)), Loc::At(Coord::new(0, 0)));
        // Step 2: packet 1 moves north instead (adaptive diversion).
        sim.step();
        assert_eq!(sim.loc(PacketId(1)), Loc::At(Coord::new(0, 1)));
        // Both packets are delivered on minimal paths: moves == total work.
        let steps = sim.run(20).unwrap();
        assert!(steps <= 6, "took {steps}");
        assert_eq!(sim.report().total_moves, 2 + 3);
    }

    #[test]
    fn routes_random_permutation_with_ample_queues() {
        let topo = Mesh::new(10);
        let pb = workloads::random_permutation(10, 5);
        let mut sim = Sim::new(&topo, Dx::new(AltAdaptive::new(100)), &pb);
        let steps = sim.run(10_000).unwrap();
        assert!(sim.report().completed);
        assert!(steps <= 60, "took {steps}");
    }

    #[test]
    fn minimality_holds_on_hotspot() {
        let topo = Mesh::new(12);
        let pb = workloads::hotspot(12, 3, 2);
        let mut sim = Sim::new(&topo, Dx::new(AltAdaptive::new(4)), &pb);
        let _ = sim.run(2_000);
        // The engine panics on any non-minimal move; completing (or even
        // just running) without panic certifies minimality. Total moves of
        // delivered packets equals total work when all delivered.
        if sim.report().completed {
            assert_eq!(sim.report().total_moves, pb.total_work());
        }
    }
}
