//! Destination-exchangeable dimension-order routing (§1.1, §2).
//!
//! "A packet first travels along its row until it reaches its destination
//! column. It then moves in that column until it reaches its destination
//! row." With a central queue, FIFO outqueue arbitration, and the
//! round-robin inqueue policy, this is the paper's canonical example of a
//! destination-exchangeable algorithm (§2) and the target of the §5
//! `Ω(n²/k)` dimension-order lower bound.

use crate::common::{dim_order_dir, round_robin_accept, Axis, RoundRobin};
use mesh_engine::{Arrival, DxRouter, DxView, PackedArrival, PackedView, QueueArch};
use mesh_topo::{Coord, ALL_DIRS};

/// Dimension-order router on a central queue of capacity `k`.
#[derive(Clone, Debug)]
pub struct DimOrder {
    k: u32,
    first: Axis,
}

impl DimOrder {
    /// Row-first (XY) dimension order, the standard form.
    pub fn new(k: u32) -> DimOrder {
        DimOrder {
            k,
            first: Axis::Horizontal,
        }
    }

    /// Column-first (YX) dimension order.
    pub fn yx(k: u32) -> DimOrder {
        DimOrder {
            k,
            first: Axis::Vertical,
        }
    }

    /// The routing axis order.
    pub fn first_axis(&self) -> Axis {
        self.first
    }
}

impl DxRouter for DimOrder {
    type NodeState = RoundRobin;

    fn name(&self) -> String {
        let o = match self.first {
            Axis::Horizontal => "xy",
            Axis::Vertical => "yx",
        };
        format!("dim-order-{o}(k={})", self.k)
    }

    fn queue_arch(&self) -> QueueArch {
        QueueArch::Central { k: self.k }
    }

    fn outqueue(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut RoundRobin,
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    ) {
        // For each outlink: the FIFO-oldest packet that wants it.
        for d in ALL_DIRS {
            let mut best: Option<usize> = None;
            for (i, p) in pkts.iter().enumerate() {
                if dim_order_dir(p.profitable, self.first) == Some(d)
                    && best.is_none_or(|b| pkts[b].pos > p.pos)
                {
                    best = Some(i);
                }
            }
            out[d.index()] = best;
        }
    }

    fn inqueue(
        &self,
        _step: u64,
        _node: Coord,
        state: &mut RoundRobin,
        residents: &[DxView],
        arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    ) {
        // Accept into the strict headroom available at the beginning of the
        // step, arbitrating competing inlinks round-robin (§2's example).
        let mut room = (self.k as usize).saturating_sub(residents.len());
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| state.rank(arrivals[i].travel.opposite()));
        for i in order {
            if room == 0 {
                break;
            }
            accept[i] = true;
            room -= 1;
        }
        state.advance();
    }

    // Bit-packed fast path: same decisions, no per-packet view structs.
    // Both policies read only profitable masks, positions, and occupancy —
    // exactly what PackedView/queue_lens carry.

    fn mask_capable(&self) -> bool {
        true
    }

    fn outqueue_packed(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut RoundRobin,
        pkts: &[PackedView],
        out: &mut [Option<usize>; 4],
    ) {
        // Single pass instead of one scan per direction: each packet wants
        // exactly one direction (`dim_order_dir` is a function of its
        // profitable set), so tracking the minimum-pos packet per direction
        // as we go picks the same winner the per-direction scans did.
        let mut best_pos = [u32::MAX; 4];
        for (i, p) in pkts.iter().enumerate() {
            if let Some(d) = dim_order_dir(p.profitable(), self.first) {
                if p.pos() < best_pos[d.index()] {
                    best_pos[d.index()] = p.pos();
                    out[d.index()] = Some(i);
                }
            }
        }
    }

    fn inqueue_packed(
        &self,
        _step: u64,
        _node: Coord,
        state: &mut RoundRobin,
        queue_lens: &[u32],
        arrivals: &[PackedArrival],
        accept: &mut [bool],
    ) {
        // Central arch: every resident lives in slot 0.
        round_robin_accept(self.k, queue_lens[0], state, arrivals, accept);
    }

    fn uses_end_of_step(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::{Dx, Sim};
    use mesh_topo::{Coord, Mesh};
    use mesh_traffic::{workloads, RoutingProblem};

    #[test]
    fn single_packet_goes_row_then_column() {
        let topo = Mesh::new(6);
        let pb = RoutingProblem::from_pairs(6, "one", [(Coord::new(0, 0), Coord::new(3, 2))]);
        let mut sim = Sim::new(&topo, Dx::new(DimOrder::new(2)), &pb);
        // After 3 steps the packet must be at its destination column (3, 0).
        for _ in 0..3 {
            sim.step();
        }
        assert_eq!(
            sim.loc(mesh_traffic::PacketId(0)),
            mesh_engine::Loc::At(Coord::new(3, 0))
        );
        sim.run(100).unwrap();
        assert_eq!(sim.steps(), 5);
    }

    #[test]
    fn yx_goes_column_then_row() {
        let topo = Mesh::new(6);
        let pb = RoutingProblem::from_pairs(6, "one", [(Coord::new(0, 0), Coord::new(3, 2))]);
        let mut sim = Sim::new(&topo, Dx::new(DimOrder::yx(2)), &pb);
        for _ in 0..2 {
            sim.step();
        }
        assert_eq!(
            sim.loc(mesh_traffic::PacketId(0)),
            mesh_engine::Loc::At(Coord::new(0, 2))
        );
        sim.run(100).unwrap();
        assert_eq!(sim.steps(), 5);
    }

    #[test]
    fn routes_random_permutation_with_ample_queues() {
        let topo = Mesh::new(12);
        let pb = workloads::random_permutation(12, 3);
        let mut sim = Sim::new(&topo, Dx::new(DimOrder::new(144)), &pb);
        let steps = sim.run(10_000).unwrap();
        // With unbounded queues dimension order routes any permutation in at
        // most ~2n steps (2n - 2 = 22 plus queueing slack; generous cap).
        assert!(steps <= 60, "took {steps}");
        assert!(sim.report().completed);
    }

    #[test]
    fn transpose_with_ample_queues_meets_classic_bound_loosely() {
        let n = 16;
        let topo = Mesh::new(n);
        let pb = workloads::transpose(n);
        let mut sim = Sim::new(&topo, Dx::new(DimOrder::new(n * n)), &pb);
        let steps = sim.run(100_000).unwrap();
        assert!(sim.report().completed);
        // FIFO (not farthest-first) arbitration: still finishes in O(n).
        assert!(steps <= (4 * n) as u64, "transpose took {steps}");
    }

    #[test]
    fn respects_queue_bound() {
        let n = 12;
        let topo = Mesh::new(n);
        let pb = workloads::random_partial_permutation(n, 0.5, 9);
        let mut sim = Sim::new(&topo, Dx::new(DimOrder::new(2)), &pb);
        // May or may not complete (bounded queues can deadlock); the engine
        // verifies the capacity invariant throughout either way.
        let _ = sim.run(5_000);
        assert!(sim.report().max_queue <= 2);
    }
}
