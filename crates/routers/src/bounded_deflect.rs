//! A δ-bounded nonminimal destination-exchangeable router — the algorithm
//! class of §5's "Nonminimal extensions".
//!
//! §5 considers "destination-exchangeable algorithms where every packet is
//! guaranteed never to move more than δ nodes beyond the rectangle
//! consisting of those nodes in any of the shortest paths from the packet's
//! source to its destination", and sketches an `Ω(n²/(δ+1)³k²)` bound for
//! them.
//!
//! This router realizes that class: it behaves like [`AltAdaptive`] while
//! profitable progress is possible, but a packet that has been blocked for
//! two consecutive steps may take an **unprofitable** hop — provided its
//! per-direction deviation budget allows it. The budget argument: every hop
//! beyond the shortest-path rectangle on a given side must be an
//! unprofitable hop in that direction, so capping unprofitable hops at `δ`
//! per direction keeps the packet within `δ` of the rectangle (a
//! conservative, state-only enforcement — exactly what a
//! destination-exchangeable policy can implement, since the rectangle
//! itself is not visible without the destination).
//!
//! [`AltAdaptive`]: crate::AltAdaptive

use crate::common::{Axis, RoundRobin};
use mesh_engine::{Arrival, DxRouter, DxView, QueueArch};
use mesh_topo::{Coord, Dir, ALL_DIRS};

/// δ-bounded deflecting router on a central queue of capacity `k`.
#[derive(Clone, Debug)]
pub struct BoundedDeflect {
    k: u32,
    delta: u8,
    n: u32,
}

impl BoundedDeflect {
    /// Creates the router (grid side `n` is static configuration, needed to
    /// avoid scheduling deflections off the mesh edge).
    pub fn new(n: u32, k: u32, delta: u8) -> BoundedDeflect {
        assert!(
            delta < 16,
            "deviation budget is stored in 4 bits per direction"
        );
        BoundedDeflect { k, delta, n }
    }

    /// The deviation bound δ.
    pub fn delta(&self) -> u8 {
        self.delta
    }
}

// Packet state layout (64 bits):
//   bits 0      : preferred axis (as AltAdaptive)
//   bits 1..3   : consecutive blocked steps (saturating at 3)
//   bits 4..20  : unprofitable-hop budgets used, 4 bits per direction
//   bits 20..24 : profitable set at the previous step (for hop accounting)
//   bits 24..64 : position key of the previous step (x:20, y:20), +1 biased
mod packstate {
    use mesh_topo::{Coord, Dir, DirSet, ALL_DIRS};

    pub fn axis_bit(s: u64) -> u64 {
        s & 1
    }
    pub fn blocked(s: u64) -> u64 {
        (s >> 1) & 0b111
    }
    pub fn used(s: u64, d: Dir) -> u64 {
        (s >> (4 + 4 * d.index())) & 0xF
    }
    pub fn prev_profitable(s: u64) -> DirSet {
        DirSet::from_dirs(
            ALL_DIRS
                .into_iter()
                .filter(|d| (s >> (20 + d.index())) & 1 == 1),
        )
    }
    pub fn prev_pos(s: u64) -> Option<Coord> {
        let key = s >> 24;
        if key == 0 {
            return None;
        }
        let k = key - 1;
        Some(Coord::new((k & 0xF_FFFF) as u32, (k >> 20) as u32))
    }
    pub fn pack(axis: u64, blocked: u64, used: [u64; 4], profitable: DirSet, pos: Coord) -> u64 {
        let mut s = axis & 1;
        s |= blocked.min(0b111) << 1;
        for d in ALL_DIRS {
            s |= (used[d.index()] & 0xF) << (4 + 4 * d.index());
        }
        for d in ALL_DIRS {
            if profitable.contains(d) {
                s |= 1 << (20 + d.index());
            }
        }
        let key = ((pos.y as u64) << 20 | pos.x as u64) + 1;
        s | (key << 24)
    }
}

impl BoundedDeflect {
    /// The directions this packet may be scheduled on, best first.
    fn choices(&self, node: Coord, p: &DxView) -> Vec<Dir> {
        let axis = if packstate::axis_bit(p.state) == 0 {
            Axis::Horizontal
        } else {
            Axis::Vertical
        };
        let mut dirs: Vec<Dir> = Vec::with_capacity(4);
        if let Some(d) = axis.profitable_dir(p.profitable) {
            dirs.push(d);
        }
        if let Some(d) = axis.other().profitable_dir(p.profitable) {
            dirs.push(d);
        }
        // Deflection: only after sustained blocking, only with budget, only
        // along existing links.
        if packstate::blocked(p.state) >= 2 {
            for d in ALL_DIRS {
                if p.profitable.contains(d) || packstate::used(p.state, d) >= self.delta as u64 {
                    continue;
                }
                let exists = match d {
                    Dir::West => node.x > 0,
                    Dir::South => node.y > 0,
                    Dir::East => node.x + 1 < self.n,
                    Dir::North => node.y + 1 < self.n,
                };
                if exists {
                    dirs.push(d);
                }
            }
        }
        dirs
    }
}

impl DxRouter for BoundedDeflect {
    type NodeState = RoundRobin;

    fn name(&self) -> String {
        format!("bounded-deflect(k={},delta={})", self.k, self.delta)
    }

    fn queue_arch(&self) -> QueueArch {
        QueueArch::Central { k: self.k }
    }

    fn is_minimal(&self) -> bool {
        self.delta == 0
    }

    fn outqueue(
        &self,
        _step: u64,
        node: Coord,
        _state: &mut RoundRobin,
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    ) {
        // FIFO order; each packet takes its best still-free choice.
        let mut order: Vec<usize> = (0..pkts.len()).collect();
        order.sort_by_key(|&i| pkts[i].pos);
        for i in order {
            for d in self.choices(node, &pkts[i]) {
                if out[d.index()].is_none() {
                    out[d.index()] = Some(i);
                    break;
                }
            }
        }
    }

    fn inqueue(
        &self,
        _step: u64,
        _node: Coord,
        state: &mut RoundRobin,
        residents: &[DxView],
        arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    ) {
        let mut room = (self.k as usize).saturating_sub(residents.len());
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|&i| state.rank(arrivals[i].travel.opposite()));
        for i in order {
            if room == 0 {
                break;
            }
            accept[i] = true;
            room -= 1;
        }
        state.advance();
    }

    fn end_of_step(
        &self,
        _step: u64,
        node: Coord,
        _state: &mut RoundRobin,
        residents: &[DxView],
        states: &mut [u64],
    ) {
        for (p, s) in residents.iter().zip(states.iter_mut()) {
            let prev_pos = packstate::prev_pos(*s).unwrap_or(p.src);
            let mut used = [
                packstate::used(*s, Dir::North),
                packstate::used(*s, Dir::East),
                packstate::used(*s, Dir::South),
                packstate::used(*s, Dir::West),
            ];
            let mut axis = packstate::axis_bit(*s);
            let mut blocked = packstate::blocked(*s);
            if prev_pos == node {
                // Did not move: blocked (if it had anywhere to go).
                if !p.profitable.is_empty() {
                    blocked += 1;
                    axis ^= 1; // alternate like AltAdaptive
                }
            } else {
                // Moved: charge budget if the hop was unprofitable.
                let moved: Dir = ALL_DIRS
                    .into_iter()
                    .find(|d| {
                        let (dx, dy) = d.delta();
                        prev_pos.x as i64 + dx == node.x as i64
                            && prev_pos.y as i64 + dy == node.y as i64
                    })
                    .expect("packets move one hop per step");
                if !packstate::prev_profitable(*s).contains(moved) && *s >> 24 != 0 {
                    used[moved.index()] += 1;
                    debug_assert!(
                        used[moved.index()] <= self.delta as u64,
                        "deviation budget exceeded"
                    );
                }
                blocked = 0;
            }
            *s = packstate::pack(axis, blocked, used, p.profitable, node);
        }
    }
}

/// The δ-bounded deviation invariant, checkable from outside: a packet at
/// `pos` with source `src` and destination `dst` is within `δ` of the
/// shortest-path rectangle.
pub fn within_delta_of_rectangle(src: Coord, dst: Coord, pos: Coord, delta: u32) -> bool {
    let (x0, x1) = (src.x.min(dst.x), src.x.max(dst.x));
    let (y0, y1) = (src.y.min(dst.y), src.y.max(dst.y));
    pos.x + delta >= x0 && pos.x <= x1 + delta && pos.y + delta >= y0 && pos.y <= y1 + delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::{Dx, HookCtx, Sim};
    use mesh_topo::{DirSet, Mesh, Topology};
    use mesh_traffic::{workloads, PacketId, RoutingProblem};

    #[test]
    fn state_packing_roundtrips() {
        let pos = Coord::new(123, 456);
        let prof = DirSet::from_dirs([Dir::North, Dir::West]);
        let s = packstate::pack(1, 2, [3, 0, 15, 7], prof, pos);
        assert_eq!(packstate::axis_bit(s), 1);
        assert_eq!(packstate::blocked(s), 2);
        assert_eq!(packstate::used(s, Dir::North), 3);
        assert_eq!(packstate::used(s, Dir::East), 0);
        assert_eq!(packstate::used(s, Dir::South), 15);
        assert_eq!(packstate::used(s, Dir::West), 7);
        assert_eq!(packstate::prev_profitable(s), prof);
        assert_eq!(packstate::prev_pos(s), Some(pos));
        assert_eq!(packstate::prev_pos(0), None);
    }

    #[test]
    fn delta_zero_is_minimal_and_matches_alt_adaptive_spirit() {
        let topo = Mesh::new(12);
        let pb = workloads::random_permutation(12, 3);
        let mut sim = Sim::new(&topo, Dx::new(BoundedDeflect::new(12, 144, 0)), &pb);
        sim.run(10_000).unwrap();
        let r = sim.report();
        assert!(r.completed);
        assert_eq!(r.total_moves, pb.total_work(), "delta=0 is minimal");
    }

    #[test]
    fn deviation_never_exceeds_delta() {
        // Run with deflection enabled under congestion and check the
        // rectangle+delta invariant at every step via a hook.
        let n = 16;
        let delta = 2u8;
        let topo = Mesh::new(n);
        let pb = workloads::hotspot(n, 4, 1);
        let srcs: Vec<Coord> = pb.packets.iter().map(|p| p.src).collect();
        let mut sim = Sim::new(&topo, Dx::new(BoundedDeflect::new(n, 1, delta)), &pb);
        let mut check = |ctx: &mut HookCtx<'_>| {
            for (i, &src) in srcs.iter().enumerate() {
                let id = PacketId(i as u32);
                if let Some(pos) = ctx.node_of(id) {
                    assert!(
                        within_delta_of_rectangle(src, ctx.dst(id), pos, delta as u32),
                        "packet {i} at {pos} beyond delta of rectangle"
                    );
                }
            }
        };
        let _ = sim.run_with_hook(20_000, &mut check);
        assert!(sim.report().max_queue <= 1);
    }

    #[test]
    fn deflection_can_unblock_head_of_line() {
        // A corridor blockage: with delta=1 the blocked packet may sidestep.
        let topo = Mesh::new(6);
        let pb = RoutingProblem::from_pairs(
            6,
            "corridor",
            [
                (Coord::new(2, 0), Coord::new(2, 5)), // north-bound column packet
                (Coord::new(2, 1), Coord::new(2, 4)), // ahead of it, same column
                (Coord::new(2, 2), Coord::new(2, 3)), // and another
            ],
        );
        let mut a = Sim::new(&topo, Dx::new(BoundedDeflect::new(6, 1, 0)), &pb);
        let _ = a.run(2_000);
        let mut b = Sim::new(&topo, Dx::new(BoundedDeflect::new(6, 1, 1)), &pb);
        let _ = b.run(2_000);
        assert!(b.report().completed);
        // With delta=0 and k=1 the column drains strictly in order; both
        // complete, but the deflecting version is never slower by more than
        // its detours and must also respect its budget (engine enforces
        // nonminimal moves are allowed because is_minimal() is false).
        assert!(a.report().completed);
    }

    #[test]
    fn routes_permutations_for_small_delta() {
        let n = 16;
        let topo = Mesh::new(n);
        for delta in [0u8, 1, 2] {
            let pb = workloads::random_permutation(n, 7);
            let mut sim = Sim::new(&topo, Dx::new(BoundedDeflect::new(n, 2, delta)), &pb);
            let done = sim.run(50_000).is_ok();
            // Small-k bounded-queue routing may stall (that is the paper's
            // point); when it completes, queue bounds held.
            if done {
                assert_eq!(sim.report().delivered, pb.len());
            }
            assert!(sim.report().max_queue <= 2);
        }
    }

    #[test]
    fn rectangle_check_is_correct() {
        let src = Coord::new(2, 2);
        let dst = Coord::new(5, 4);
        assert!(within_delta_of_rectangle(src, dst, Coord::new(3, 3), 0));
        assert!(!within_delta_of_rectangle(src, dst, Coord::new(1, 3), 0));
        assert!(within_delta_of_rectangle(src, dst, Coord::new(1, 3), 1));
        assert!(!within_delta_of_rectangle(src, dst, Coord::new(5, 7), 2));
        assert!(within_delta_of_rectangle(src, dst, Coord::new(5, 6), 2));
    }

    #[test]
    fn grid_side_is_respected_by_deflections() {
        // Deflections never schedule off-mesh (engine would panic).
        let n = 8;
        let topo = Mesh::new(n);
        let pb = workloads::column_funnel(n);
        let mut sim = Sim::new(&topo, Dx::new(BoundedDeflect::new(topo.side(), 1, 3)), &pb);
        let _ = sim.run(5_000);
    }
}
