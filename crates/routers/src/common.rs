//! Shared policy building blocks.

use mesh_engine::PackedArrival;
use mesh_topo::{Dir, DirSet};

/// A movement axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    Horizontal,
    Vertical,
}

impl Axis {
    /// The other axis.
    pub fn other(self) -> Axis {
        match self {
            Axis::Horizontal => Axis::Vertical,
            Axis::Vertical => Axis::Horizontal,
        }
    }

    /// The profitable direction on this axis, if any (canonical order within
    /// the axis: E before W, N before S — ties only arise on the torus).
    pub fn profitable_dir(self, profitable: DirSet) -> Option<Dir> {
        let dirs = match self {
            Axis::Horizontal => [Dir::East, Dir::West],
            Axis::Vertical => [Dir::North, Dir::South],
        };
        dirs.into_iter().find(|&d| profitable.contains(d))
    }
}

/// The direction a dimension-order packet wants next, from its profitable
/// set alone: finish the `first` axis, then the other. `None` only for a
/// delivered packet.
pub fn dim_order_dir(profitable: DirSet, first: Axis) -> Option<Dir> {
    first
        .profitable_dir(profitable)
        .or_else(|| first.other().profitable_dir(profitable))
}

/// A round-robin arbitration pointer over the four inlink sides: the
/// "round-robin inqueue policy" example of §2. Stored in node state;
/// serializable so checkpoints can carry it.
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct RoundRobin {
    next: u8,
}

impl RoundRobin {
    /// Returns the priority rank (0 = highest) of direction `d` in the
    /// current rotation.
    pub fn rank(&self, d: Dir) -> u8 {
        ((d.index() as u8 + 4) - self.next) % 4
    }

    /// Advances the rotation by one position (call once per arbitration).
    pub fn advance(&mut self) {
        self.next = (self.next + 1) % 4;
    }
}

/// The §2 round-robin inqueue policy over packed arrivals: accept into the
/// strict headroom available at the beginning of the step (`k` minus the
/// central queue's occupancy), arbitrating competing inlinks round-robin.
///
/// Decision-identical to the view-based form (`sort_by_key(rank)` then
/// accept-while-room): visiting ranks `0..4` in order, arrivals in offer
/// order within a rank, is exactly the stable sort's iteration order — and
/// there is at most one arrival per inlink anyway.
pub fn round_robin_accept(
    k: u32,
    occupied: u32,
    state: &mut RoundRobin,
    arrivals: &[PackedArrival],
    accept: &mut [bool],
) {
    let mut room = (k as usize).saturating_sub(occupied as usize);
    if room >= arrivals.len() {
        // Headroom for everyone: the arbitration order is moot.
        accept.fill(true);
    } else {
        // At most one arrival per inlink, so ranks are distinct: bucket
        // the arrival indices by rank and accept the `room` smallest —
        // exactly the rank-order visit of the contended case.
        let mut by_rank = [usize::MAX; 4];
        for (i, a) in arrivals.iter().enumerate() {
            let r = state.rank(a.travel().opposite()) as usize;
            debug_assert_eq!(by_rank[r], usize::MAX, "two arrivals on one inlink");
            by_rank[r] = i;
        }
        for &i in by_rank.iter() {
            if room == 0 {
                break;
            }
            if i != usize::MAX {
                accept[i] = true;
                room -= 1;
            }
        }
    }
    state.advance();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_topo::DirSet;

    #[test]
    fn dim_order_prefers_first_axis() {
        let p = DirSet::from_dirs([Dir::East, Dir::North]);
        assert_eq!(dim_order_dir(p, Axis::Horizontal), Some(Dir::East));
        assert_eq!(dim_order_dir(p, Axis::Vertical), Some(Dir::North));
    }

    #[test]
    fn dim_order_falls_back_to_other_axis() {
        let p = DirSet::single(Dir::South);
        assert_eq!(dim_order_dir(p, Axis::Horizontal), Some(Dir::South));
        let p = DirSet::single(Dir::West);
        assert_eq!(dim_order_dir(p, Axis::Vertical), Some(Dir::West));
    }

    #[test]
    fn dim_order_none_when_delivered() {
        assert_eq!(dim_order_dir(DirSet::EMPTY, Axis::Horizontal), None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::default();
        assert_eq!(rr.rank(Dir::North), 0);
        assert_eq!(rr.rank(Dir::West), 3);
        rr.advance();
        assert_eq!(rr.rank(Dir::East), 0);
        assert_eq!(rr.rank(Dir::North), 3);
        rr.advance();
        rr.advance();
        rr.advance();
        assert_eq!(rr.rank(Dir::North), 0);
    }
}
