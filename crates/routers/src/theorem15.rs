//! The Theorem 15 router: destination-exchangeable dimension order in
//! `O(n²/k + n)` time with four inlink queues of size `k`.
//!
//! From the proof of Theorem 15:
//!
//! * four incoming queues per node (North, South, East, West), each size `k`;
//! * outqueue policy: "packets trying to go straight have priority,
//!   resolving ties using FIFO";
//! * inqueue policy of North and South queues: always accept (their head
//!   packet goes straight, wins its outlink, and its target always accepts —
//!   so they eject every step they are nonempty and never exceed occupancy 1);
//! * inqueue policy of East and West queues: accept iff fewer than `k`
//!   packets at the beginning of the step.
//!
//! The paper does not specify where a node's *originating* packet waits; we
//! give each node an injection queue whose packets have the lowest outqueue
//! priority (below straight traffic, above nothing — they compete with
//! turning packets at the same rank, ties to the turner). This only delays
//! the algorithm, so the `O(n²/k + n)` upper bound claim is still the thing
//! being tested.

use crate::common::{dim_order_dir, Axis};
use mesh_engine::{Arrival, DxRouter, DxView, PackedArrival, PackedView, QueueArch, QueueKind};
use mesh_topo::{Coord, Dir, ALL_DIRS};

/// The Theorem 15 bounded-queue dimension-order router.
#[derive(Clone, Debug)]
pub struct Theorem15 {
    k: u32,
}

impl Theorem15 {
    /// Creates the router with inlink queues of capacity `k`.
    pub fn new(k: u32) -> Theorem15 {
        Theorem15 { k }
    }
}

/// Outqueue priority class (lower wins).
fn class(p: &DxView, d: Dir) -> u8 {
    match p.queue {
        // Straight: continuing the direction of travel that brought it here.
        QueueKind::Inlink(side) if side == d.opposite() => 0,
        QueueKind::Injection => 1,
        _ => 2, // turning
    }
}

/// [`class`] from a packed slot index: under the PerInlink arch, slots
/// `0..4` are the inlink queues (by `Dir` index) and slot 4 is injection.
fn class_packed(slot: usize, d: Dir) -> u8 {
    if slot == d.opposite().index() {
        0 // straight
    } else if slot == 4 {
        1 // injection
    } else {
        2 // turning
    }
}

impl DxRouter for Theorem15 {
    type NodeState = ();

    fn name(&self) -> String {
        format!("theorem15(k={})", self.k)
    }

    fn queue_arch(&self) -> QueueArch {
        QueueArch::PerInlink { k: self.k }
    }

    fn outqueue(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut (),
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    ) {
        for d in ALL_DIRS {
            let mut best: Option<(u8, u32, usize)> = None; // (class, pos, idx)
            for (i, p) in pkts.iter().enumerate() {
                if dim_order_dir(p.profitable, Axis::Horizontal) != Some(d) {
                    continue;
                }
                let c = class(p, d);
                let better = match best {
                    None => true,
                    Some((bc, bp, _)) => c < bc || (c == bc && p.pos < bp),
                };
                if better {
                    best = Some((c, p.pos, i));
                }
            }
            out[d.index()] = best.map(|(_, _, i)| i);
        }
    }

    fn inqueue(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut (),
        residents: &[DxView],
        arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    ) {
        for (i, a) in arrivals.iter().enumerate() {
            if a.travel.is_vertical() {
                // North/South queues always accept.
                accept[i] = true;
            } else {
                // East/West queues accept iff strictly under k at the
                // beginning of the step.
                let q = QueueKind::Inlink(a.travel.opposite());
                let len = residents.iter().filter(|r| r.queue == q).count();
                accept[i] = len < self.k as usize;
            }
        }
    }

    // Bit-packed fast path: identical decisions. The inqueue policy gets
    // the occupancy of the relevant inlink queue directly from the per-slot
    // counts instead of scanning every resident.

    fn mask_capable(&self) -> bool {
        true
    }

    fn outqueue_packed(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut (),
        pkts: &[PackedView],
        out: &mut [Option<usize>; 4],
    ) {
        // Single pass instead of one scan per direction: each packet wants
        // exactly one direction, so tracking the best (class, pos) key per
        // direction as we go — strict comparison, first-seen wins ties —
        // picks the same winner the ascending per-direction scans did.
        let mut best = [(u8::MAX, u32::MAX); 4]; // (class, pos)
        for (i, p) in pkts.iter().enumerate() {
            let Some(d) = dim_order_dir(p.profitable(), Axis::Horizontal) else {
                continue;
            };
            let c = class_packed(p.slot(), d);
            let (bc, bp) = best[d.index()];
            if c < bc || (c == bc && p.pos() < bp) {
                best[d.index()] = (c, p.pos());
                out[d.index()] = Some(i);
            }
        }
    }

    fn inqueue_packed(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut (),
        queue_lens: &[u32],
        arrivals: &[PackedArrival],
        accept: &mut [bool],
    ) {
        for (i, a) in arrivals.iter().enumerate() {
            let t = a.travel();
            // North/South queues always accept; East/West accept iff
            // strictly under k at the beginning of the step.
            accept[i] = t.is_vertical() || queue_lens[t.opposite().index()] < self.k;
        }
    }

    fn uses_end_of_step(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::{Dx, Sim};
    use mesh_topo::Mesh;
    use mesh_traffic::{workloads, RoutingProblem};

    fn run(n: u32, k: u32, pb: &RoutingProblem, cap: u64) -> mesh_engine::SimReport {
        let topo = Mesh::new(n);
        let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(k)), pb);
        sim.run(cap).expect("theorem15 must always deliver");
        sim.report()
    }

    #[test]
    fn delivers_random_permutations_for_every_k() {
        for n in [8u32, 16] {
            for k in [1u32, 2, 4] {
                for seed in 0..3 {
                    let pb = workloads::random_permutation(n, seed);
                    let r = run(n, k, &pb, 200_000);
                    assert!(r.completed, "n={n} k={k} seed={seed}");
                    assert!(r.max_queue <= k);
                }
            }
        }
    }

    #[test]
    fn delivers_transpose_and_bit_reversal() {
        for k in [1u32, 2, 4] {
            assert!(run(16, k, &workloads::transpose(16), 200_000).completed);
            assert!(run(16, k, &workloads::bit_reversal(16), 200_000).completed);
        }
    }

    #[test]
    fn vertical_queues_never_exceed_one() {
        // The Theorem 15 induction: N/S queues eject whenever nonempty, so
        // their occupancy never exceeds 1. We verify through the aggregate:
        // run with k = 1 — if a vertical queue ever needed 2 slots, the
        // engine's capacity check would panic (N/S queues always accept).
        let pb = workloads::random_permutation(16, 9);
        let r = run(16, 1, &pb, 500_000);
        assert!(r.completed);
        assert!(r.max_queue <= 1);
    }

    #[test]
    fn time_scales_as_n_squared_over_k_upper_bound() {
        // Theorem 15: O(n²/k + n). Check a generous constant on several
        // workloads: steps <= C * (n²/k + n) with C = 6.
        for (n, k) in [(16u32, 1u32), (16, 2), (16, 4), (24, 2)] {
            let pb = workloads::transpose(n);
            let r = run(n, k, &pb, 1_000_000);
            let bound = 6 * ((n * n / k) + n) as u64;
            assert!(r.steps <= bound, "n={n} k={k}: {} > {bound}", r.steps);
        }
    }

    #[test]
    fn single_packet_minimal_time() {
        let pb = RoutingProblem::from_pairs(
            8,
            "one",
            [(mesh_topo::Coord::new(1, 1), mesh_topo::Coord::new(6, 6))],
        );
        let r = run(8, 1, &pb, 100);
        assert_eq!(r.steps, 10);
    }
}
