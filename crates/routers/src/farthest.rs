//! Greedy dimension-order routing with the farthest-first outqueue policy.
//!
//! This is the classic router of §1.1: with unbounded queues it routes any
//! permutation in `2n − 2` steps (Leighton); with queues bounded at `k` it is
//! the target of §5's farthest-first `Ω(n²/k)` lower bound. Farthest-first
//! compares *actual remaining distances*, so this router reads full
//! destination addresses and "is not destination-exchangeable" (§5).

use crate::common::{dim_order_dir, Axis};
use mesh_engine::{Arrival, FullView, QueueArch, Router};
use mesh_topo::{Coord, Dir, ALL_DIRS};

/// Farthest-first dimension-order router on a central queue of capacity `k`.
///
/// Pass `k >= 2n` to emulate the unbounded-queue greedy algorithm (no queue
/// can exceed `2n` packets under dimension order on a permutation: at most
/// `n` row packets pass through a node and `n` column packets can wait).
#[derive(Clone, Debug)]
pub struct FarthestFirst {
    k: u32,
}

impl FarthestFirst {
    /// Creates the router with central queues of capacity `k`.
    pub fn new(k: u32) -> FarthestFirst {
        FarthestFirst { k }
    }

    /// An effectively unbounded instance for a side-`n` mesh.
    pub fn unbounded(n: u32) -> FarthestFirst {
        FarthestFirst { k: n * n }
    }
}

/// Remaining distance in the dimension of `d`.
fn dim_distance(node: Coord, dst: Coord, d: Dir) -> u32 {
    if d.is_horizontal() {
        node.dx(dst)
    } else {
        node.dy(dst)
    }
}

impl Router for FarthestFirst {
    type NodeState = ();

    fn name(&self) -> String {
        format!("farthest-first(k={})", self.k)
    }

    fn queue_arch(&self) -> QueueArch {
        QueueArch::Central { k: self.k }
    }

    fn outqueue(
        &self,
        _step: u64,
        node: Coord,
        _state: &mut (),
        pkts: &[FullView],
        out: &mut [Option<usize>; 4],
    ) {
        // Per outlink: the packet with the farthest to go in that dimension
        // ("farthest-first", §5); ties broken by queue age then id for
        // determinism.
        for d in ALL_DIRS {
            let mut best: Option<(u32, u32, usize)> = None; // (dist, pos, idx) max dist, min pos
            for (i, p) in pkts.iter().enumerate() {
                if dim_order_dir(p.profitable, Axis::Horizontal) != Some(d) {
                    continue;
                }
                let dist = dim_distance(node, p.dst, d);
                let better = match best {
                    None => true,
                    Some((bd, bp, _)) => dist > bd || (dist == bd && p.pos < bp),
                };
                if better {
                    best = Some((dist, p.pos, i));
                }
            }
            out[d.index()] = best.map(|(_, _, i)| i);
        }
    }

    fn inqueue(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut (),
        residents: &[FullView],
        arrivals: &[Arrival<FullView>],
        accept: &mut [bool],
    ) {
        // Accept into strict headroom, in fixed inlink order. §5's
        // farthest-first lower bound assumes only the *outqueue* policy
        // reads distances; a distance-dependent inqueue would break the
        // exchange-commutation argument (we verified this empirically: a
        // farthest-total-distance acceptance rule makes the Lemma 12 replay
        // equivalence fail at k ≥ 2).
        let mut room = (self.k as usize).saturating_sub(residents.len());
        for (i, _a) in arrivals.iter().enumerate() {
            if room == 0 {
                break;
            }
            accept[i] = true;
            room -= 1;
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::Sim;
    use mesh_topo::Mesh;
    use mesh_traffic::workloads;

    #[test]
    fn unbounded_routes_any_permutation_in_2n_minus_2() {
        // The classic Leighton result: greedy dimension order with
        // farthest-first column priority and unbounded queues routes every
        // permutation in at most 2n - 2 steps. Check on several seeds.
        for n in [8u32, 12, 16] {
            let topo = Mesh::new(n);
            for seed in 0..4 {
                let pb = workloads::random_permutation(n, seed);
                let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
                let steps = sim.run(10 * n as u64).unwrap();
                assert!(
                    steps <= (2 * n - 2) as u64,
                    "n={n} seed={seed}: {steps} > 2n-2"
                );
            }
        }
    }

    #[test]
    fn unbounded_transpose_meets_bound() {
        let n = 24;
        let topo = Mesh::new(n);
        let pb = workloads::transpose(n);
        let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
        let steps = sim.run(10 * n as u64).unwrap();
        assert!(steps <= (2 * n - 2) as u64, "transpose took {steps}");
    }

    #[test]
    fn worst_case_queue_grows_with_n() {
        // §1.1: the 2n-2 greedy algorithm "requires Θ(n) size queues". The
        // column funnel concentrates all n packets at the turn node (n/2, 0):
        // two arrive per step, one leaves — the queue must reach ~n/4.
        for n in [16u32, 32] {
            let topo = Mesh::new(n);
            let pb = workloads::column_funnel(n);
            let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
            sim.run(10 * n as u64).unwrap();
            let q = sim.report().max_queue;
            assert!(q >= n / 4, "n={n}: expected queue ~n/4, max was {q}");
        }
    }

    #[test]
    fn average_case_queues_stay_tiny() {
        // §1.1 (Leighton): random destinations route in 2n + O(log n) with
        // queues that essentially never exceed 4.
        let n = 32;
        let topo = Mesh::new(n);
        let pb = workloads::random_destinations(n, 11);
        let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
        let steps = sim.run(100 * n as u64).unwrap();
        assert!(steps <= (2 * n + 40) as u64, "took {steps}");
        assert!(
            sim.report().max_queue <= 8,
            "queues grew: {}",
            sim.report().max_queue
        );
    }

    #[test]
    fn bounded_queues_respected() {
        let n = 12;
        let topo = Mesh::new(n);
        let pb = workloads::random_permutation(n, 1);
        let mut sim = Sim::new(&topo, FarthestFirst::new(3), &pb);
        let _ = sim.run(5_000);
        assert!(sim.report().max_queue <= 3);
    }
}
