//! Hot-potato (deflection) routing: the nonminimal destination-exchangeable
//! family discussed in §5 of the paper.
//!
//! §5 ("Nonminimal extensions"): the `O(n^{3/2})` hot-potato algorithm of
//! Bar-Noy et al. *is* destination-exchangeable, so the paper's Theorem 14
//! restriction to minimal routing "cannot be eliminated entirely" — the
//! technique only yields `Ω(n²/(δ+1)³k²)` for algorithms that stay within
//! `δ` of the shortest-path rectangle, and unbounded-deflection routers
//! escape it.
//!
//! This router is a standard greedy deflection scheme (in the spirit of the
//! hot-potato literature the paper cites [1, 5, 8, 9, 12, 22], not a
//! faithful Bar-Noy implementation): every packet received in the previous
//! step **must** leave this step. Each node assigns packets to outlinks in
//! priority order (older packets first, age carried in the packet state
//! word), giving each packet a profitable outlink when one is free and
//! *deflecting* it on any free outlink otherwise. A node's own packet is
//! injected when a suitable outlink remains free. Buffering is one packet
//! per inlink, so queues never exceed one — the extreme of bounded-queue
//! routing, at the price of nonminimal paths.

use mesh_engine::{Arrival, DxRouter, DxView, QueueArch, QueueKind};
use mesh_topo::{Coord, Dir, ALL_DIRS};

/// Greedy deflection router (queues: one slot per inlink).
///
/// Knows the grid side `n` — static machine configuration every physical
/// router has; it carries no destination information, so
/// destination-exchangeability is unaffected.
#[derive(Clone, Debug)]
pub struct HotPotato {
    n: u32,
}

impl HotPotato {
    /// Creates the router for a side-`n` grid.
    pub fn new(n: u32) -> HotPotato {
        HotPotato { n }
    }
}

/// Packet age (deflection priority) lives in the state word.
fn age(v: &DxView) -> u64 {
    v.state
}

impl DxRouter for HotPotato {
    type NodeState = ();

    fn name(&self) -> String {
        "hot-potato".into()
    }

    fn queue_arch(&self) -> QueueArch {
        QueueArch::PerInlink { k: 1 }
    }

    fn is_minimal(&self) -> bool {
        false
    }

    fn outqueue(
        &self,
        _step: u64,
        node: Coord,
        _state: &mut (),
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    ) {
        // Which outlinks exist here? A profitable direction always has a
        // link; deflections must additionally avoid the mesh edge, which a
        // node can tell from its own position and the grid side.
        let n = self.n;
        let link_exists = |d: Dir| -> bool {
            match d {
                Dir::West => node.x > 0,
                Dir::South => node.y > 0,
                Dir::East => node.x + 1 < n,
                Dir::North => node.y + 1 < n,
            }
        };

        // Transit packets (inlink buffers) MUST leave; order them oldest
        // first (ties: lower queue slot, then lower id — all
        // destination-blind).
        let mut transit: Vec<usize> = (0..pkts.len())
            .filter(|&i| matches!(pkts[i].queue, QueueKind::Inlink(_)))
            .collect();
        transit.sort_by_key(|&i| (std::cmp::Reverse(age(&pkts[i])), pkts[i].id));

        let mut used = [false; 4];
        let mut pending: Vec<usize> = Vec::new();
        for &i in &transit {
            let choice = pkts[i].profitable.iter().find(|d| !used[d.index()]);
            match choice {
                Some(d) => {
                    used[d.index()] = true;
                    out[d.index()] = Some(i);
                }
                None => pending.push(i),
            }
        }
        // Deflect the rest onto any free existing outlink. Every direction a
        // packet arrived from has a link back (its opposite side's link), so
        // a valid assignment always exists (in-degree = out-degree).
        for &i in &pending {
            let back = match pkts[i].queue {
                QueueKind::Inlink(side) => side, // link toward that neighbor exists
                _ => unreachable!("pending transit packet not in an inlink queue"),
            };
            let d = ALL_DIRS
                .into_iter()
                .find(|&d| !used[d.index()] && (d == back || link_exists(d)))
                .unwrap_or(back);
            assert!(!used[d.index()], "deflection assignment failed");
            used[d.index()] = true;
            out[d.index()] = Some(i);
        }

        // Inject the node's own packet if a profitable outlink is free.
        if let Some(i) = (0..pkts.len()).find(|&i| pkts[i].queue == QueueKind::Injection) {
            if let Some(d) = pkts[i].profitable.iter().find(|d| !used[d.index()]) {
                out[d.index()] = Some(i);
            }
        }
    }

    fn inqueue(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut (),
        _residents: &[DxView],
        _arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    ) {
        // Hot potato: always accept — every buffered packet leaves each
        // step, so each one-slot inlink buffer is free again.
        accept.iter_mut().for_each(|a| *a = true);
    }

    fn end_of_step(
        &self,
        _step: u64,
        _node: Coord,
        _state: &mut (),
        _residents: &[DxView],
        states: &mut [u64],
    ) {
        // Age every packet still in the network (deflection priority).
        for s in states.iter_mut() {
            *s += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_engine::{Dx, Sim};
    use mesh_topo::{Mesh, Topology};
    use mesh_traffic::{workloads, RoutingProblem};

    #[test]
    fn lone_packet_is_fast() {
        let topo = Mesh::new(8);
        let pb = RoutingProblem::from_pairs(8, "one", [(Coord::new(0, 0), Coord::new(5, 4))]);
        let mut sim = Sim::new(&topo, Dx::new(HotPotato::new(topo.side())), &pb);
        let steps = sim.run(100).unwrap();
        assert_eq!(steps, 9, "no contention → minimal path");
    }

    #[test]
    fn routes_random_permutations() {
        for n in [8u32, 16] {
            let topo = Mesh::new(n);
            for seed in 0..3 {
                let pb = workloads::random_permutation(n, seed);
                let mut sim = Sim::new(&topo, Dx::new(HotPotato::new(topo.side())), &pb);
                let steps = sim.run(10_000).unwrap_or_else(|e| {
                    // `e` carries the full diagnostic snapshot (stuck packet
                    // ids, locations, destinations, occupancy) in its Display.
                    panic!("n={n} seed={seed} failed as {}: {e}", e.kind())
                });
                let r = sim.report();
                assert!(r.completed);
                assert!(r.max_queue <= 1, "hot potato never queues");
                // Nonminimal: usually more moves than the minimal total work.
                assert!(r.total_moves >= pb.total_work());
                assert!(steps >= pb.diameter_bound() as u64);
            }
        }
    }

    #[test]
    fn takes_nonminimal_paths_under_contention() {
        // Force a collision: two packets cross the same node simultaneously.
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_pairs(
            4,
            "cross",
            [
                (Coord::new(0, 1), Coord::new(2, 1)),
                (Coord::new(1, 0), Coord::new(1, 2)),
                (Coord::new(1, 1), Coord::new(3, 3)), // occupies the crossing
            ],
        );
        let mut sim = Sim::new(&topo, Dx::new(HotPotato::new(topo.side())), &pb);
        sim.run(200).unwrap();
        let r = sim.report();
        assert!(r.completed);
        // At least one deflection happened (moves exceed minimal work) OR the
        // schedule dodged it — either way queues stayed at 1.
        assert!(r.max_queue <= 1);
    }

    #[test]
    fn transpose_completes_with_unit_buffers() {
        let n = 16;
        let topo = Mesh::new(n);
        let pb = workloads::transpose(n);
        let mut sim = Sim::new(&topo, Dx::new(HotPotato::new(topo.side())), &pb);
        let steps = sim.run(50_000).expect("hot potato should drain transpose");
        assert!(sim.report().completed);
        assert!(steps < 50_000);
    }
}
