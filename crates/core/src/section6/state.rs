//! Mutable routing state shared by all passes of the §6 algorithm:
//! real packet positions, per-node loads, step/move accounting, and the
//! edge-respecting, minimality-asserting move primitive.

use mesh_topo::Coord;
use mesh_traffic::RoutingProblem;

/// Global state of one §6 run.
pub struct S6State {
    pub n: u32,
    /// Real positions of all packets (valid while undelivered).
    pub pos: Vec<Coord>,
    /// Real destinations.
    pub dst: Vec<Coord>,
    /// Delivery flags.
    pub delivered: Vec<bool>,
    /// Packets per real node (all classes), for the queue-bound metric.
    pub load: Vec<u16>,
    /// Highest load any node ever reached.
    pub max_load: u16,
    /// Total link traversals.
    pub moves: u64,
    /// Packets delivered so far.
    pub delivered_count: usize,
}

impl S6State {
    /// Initializes from a routing problem (packets at their sources;
    /// trivial packets delivered immediately).
    pub fn new(problem: &RoutingProblem) -> S6State {
        let n = problem.n;
        let mut s = S6State {
            n,
            pos: problem.packets.iter().map(|p| p.src).collect(),
            dst: problem.packets.iter().map(|p| p.dst).collect(),
            delivered: vec![false; problem.len()],
            load: vec![0; (n * n) as usize],
            max_load: 0,
            moves: 0,
            delivered_count: 0,
        };
        for i in 0..s.pos.len() {
            if s.pos[i] == s.dst[i] {
                s.delivered[i] = true;
                s.delivered_count += 1;
            } else {
                let ni = s.node_index(s.pos[i]);
                s.load[ni] += 1;
            }
        }
        s.max_load = s.load.iter().copied().max().unwrap_or(0);
        s
    }

    #[inline]
    pub fn node_index(&self, c: Coord) -> usize {
        (c.y * self.n + c.x) as usize
    }

    /// Moves packet `p` to the adjacent node `to`. Panics (debug) if the
    /// move is not a single grid hop or moves the packet away from its
    /// destination — §6 is minimal adaptive (Theorem 20), so any violation
    /// is an implementation bug. Delivers the packet if `to` is its
    /// destination. Returns `true` on delivery.
    pub fn move_packet(&mut self, p: usize, to: Coord) -> bool {
        let from = self.pos[p];
        debug_assert!(!self.delivered[p], "moving a delivered packet");
        debug_assert_eq!(from.manhattan(to), 1, "non-adjacent move {from} -> {to}");
        debug_assert!(
            to.manhattan(self.dst[p]) < from.manhattan(self.dst[p]),
            "non-minimal move of packet {p}: {from} -> {to}, dst {}",
            self.dst[p]
        );
        let fi = self.node_index(from);
        self.load[fi] -= 1;
        self.pos[p] = to;
        self.moves += 1;
        if to == self.dst[p] {
            self.delivered[p] = true;
            self.delivered_count += 1;
            true
        } else {
            let ti = self.node_index(to);
            self.load[ti] += 1;
            if self.load[ti] > self.max_load {
                self.max_load = self.load[ti];
            }
            false
        }
    }

    /// True when every packet has been delivered.
    pub fn done(&self) -> bool {
        self.delivered_count == self.pos.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_traffic::RoutingProblem;

    fn problem() -> RoutingProblem {
        RoutingProblem::from_pairs(
            4,
            "t",
            [
                (Coord::new(0, 0), Coord::new(2, 0)),
                (Coord::new(1, 1), Coord::new(1, 1)), // trivial
            ],
        )
    }

    #[test]
    fn init_and_trivial_delivery() {
        let s = S6State::new(&problem());
        assert_eq!(s.delivered_count, 1);
        assert!(s.delivered[1]);
        assert_eq!(s.load[0], 1);
        assert_eq!(s.max_load, 1);
    }

    #[test]
    fn move_and_deliver() {
        let mut s = S6State::new(&problem());
        assert!(!s.move_packet(0, Coord::new(1, 0)));
        assert_eq!(s.load[0], 0);
        assert_eq!(s.load[1], 1);
        assert!(s.move_packet(0, Coord::new(2, 0)));
        assert!(s.done());
        assert_eq!(s.moves, 2);
        assert_eq!(s.load[2], 0, "delivered packets occupy no space");
    }

    #[test]
    #[should_panic(expected = "non-minimal")]
    #[cfg(debug_assertions)]
    fn rejects_non_minimal_move() {
        let mut s = S6State::new(&problem());
        s.move_packet(0, Coord::new(0, 1));
    }
}
