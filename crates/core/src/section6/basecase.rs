//! The base case of §6.1: when tiles would shrink below 27×27, finish with
//! greedy dimension-order routing under the farthest-first protocol on the
//! whole mesh. By Lemma 18 every remaining packet of the class is then within
//! two rows and two columns of its destination, so this takes at most 14
//! steps with at most 9 packets per node (Lemma 32 / Lemma 28).

use super::state::S6State;
use mesh_topo::Coord;
use std::collections::HashMap;

/// Routes the given packets to completion with farthest-first dimension
/// order (row first, then column; per outlink, the packet with the farthest
/// to go in that dimension wins). Returns the number of steps.
pub fn run_base_case(st: &mut S6State, class_pkts: &[u32]) -> u64 {
    let mut remaining: Vec<u32> = class_pkts
        .iter()
        .copied()
        .filter(|&p| !st.delivered[p as usize])
        .collect();
    let mut steps = 0u64;
    while !remaining.is_empty() {
        // Group by node; per node, per outlink, pick farthest-first.
        let mut by_node: HashMap<Coord, Vec<u32>> = HashMap::new();
        for &p in &remaining {
            by_node.entry(st.pos[p as usize]).or_default().push(p);
        }
        let mut moves: Vec<(u32, Coord)> = Vec::new();
        let mut nodes: Vec<Coord> = by_node.keys().copied().collect();
        nodes.sort_unstable();
        for node in nodes {
            // Desired direction per packet: dimension order (row first).
            // Direction slots: 0 = E, 1 = W, 2 = N, 3 = S.
            let mut best: [Option<(u32, u32)>; 4] = [None; 4]; // (dist, pkt)
            for &p in &by_node[&node] {
                let dst = st.dst[p as usize];
                let (slot, dist) = if dst.x > node.x {
                    (0, dst.x - node.x)
                } else if dst.x < node.x {
                    (1, node.x - dst.x)
                } else if dst.y > node.y {
                    (2, dst.y - node.y)
                } else {
                    (3, node.y - dst.y)
                };
                let better = match best[slot] {
                    None => true,
                    Some((bd, bp)) => dist > bd || (dist == bd && p < bp),
                };
                if better {
                    best[slot] = Some((dist, p));
                }
            }
            for (slot, b) in best.iter().enumerate() {
                if let Some((_, p)) = b {
                    let to = match slot {
                        0 => Coord::new(node.x + 1, node.y),
                        1 => Coord::new(node.x - 1, node.y),
                        2 => Coord::new(node.x, node.y + 1),
                        _ => Coord::new(node.x, node.y - 1),
                    };
                    moves.push((*p, to));
                }
            }
        }
        debug_assert!(!moves.is_empty(), "undelivered packets but no moves");
        for (p, to) in moves {
            st.move_packet(p as usize, to);
        }
        remaining.retain(|&p| !st.delivered[p as usize]);
        steps += 1;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_traffic::RoutingProblem;

    /// Pair-swap within the last bit: a permutation moving every node at
    /// most one step per dimension (odd tail fixed).
    fn swap1(v: u32, n: u32) -> u32 {
        if v ^ 1 < n {
            v ^ 1
        } else {
            v
        }
    }

    #[test]
    fn routes_nearby_permutation_quickly() {
        // A permutation in which every packet is within 2 rows and 2 columns
        // of its destination, as Lemma 18 guarantees at base-case entry.
        let n = 9;
        let pairs: Vec<_> = (0..n)
            .flat_map(|y| {
                (0..n).map(move |x| (Coord::new(x, y), Coord::new(swap1(x, n), swap1(y, n))))
            })
            .collect();
        let pb = RoutingProblem::from_pairs(n, "near", pairs);
        assert!(pb.is_permutation());
        let mut st = S6State::new(&pb);
        let all: Vec<u32> = (0..pb.len() as u32).collect();
        let steps = run_base_case(&mut st, &all);
        assert!(st.done());
        assert!(steps <= 14, "Lemma 32: took {steps}");
        assert!(
            st.max_load <= 9,
            "Lemma 28 base-case bound: {}",
            st.max_load
        );
    }

    #[test]
    fn handles_contention_at_turn() {
        let pb = RoutingProblem::from_pairs(
            5,
            "turn",
            [
                (Coord::new(0, 0), Coord::new(2, 2)),
                (Coord::new(1, 0), Coord::new(2, 1)),
                (Coord::new(2, 0), Coord::new(3, 2)),
            ],
        );
        let mut st = S6State::new(&pb);
        let all: Vec<u32> = (0..pb.len() as u32).collect();
        let steps = run_base_case(&mut st, &all);
        assert!(st.done());
        assert!(steps <= 10, "took {steps}");
        assert_eq!(st.moves, pb.total_work(), "paths stay minimal");
    }

    #[test]
    fn farthest_first_priority_orders_column_entry() {
        // Two packets want the same north link; the farther one goes first.
        let pb = RoutingProblem::from_pairs(
            6,
            "prio",
            [
                (Coord::new(0, 0), Coord::new(0, 2)), // distance 2
                (Coord::new(0, 0), Coord::new(1, 5)), // would also like north? no: row-first → east
            ],
        );
        // Both at the same node is not a permutation start, but the base
        // case must still handle multi-packet nodes (Lemma 28 allows 9).
        let mut st = S6State::new(&pb);
        let all: Vec<u32> = (0..pb.len() as u32).collect();
        let steps = run_base_case(&mut st, &all);
        assert!(st.done());
        // Packet 1 goes east (dimension order) while packet 0 goes north:
        // no contention at all; 6 steps for packet 1.
        assert_eq!(steps, 6);
    }
}
