//! The Vertical Phase of §6.1 — March, Sort and Smooth, and Balancing —
//! implemented once in virtual coordinates (see [`super::virt`]): packets
//! always march **north** and balance **east**. The Horizontal Phase is this
//! same code run under a transposed transform.
//!
//! Each stage is simulated step-exactly: one packet per directed link per
//! step, all decisions from pre-step state, so the reported durations are
//! faithful synchronous step counts. Stage durations are also checked
//! against the paper's scheduled bounds (Lemmas 29–31).

use super::state::S6State;
use super::virt::Transform;
use mesh_topo::{Coord, Rect, Tiling};
use std::collections::HashMap;

/// Durations (in steps) of the four stages of one phase for one tiling,
/// maximized over the tiling's tiles (tiles run in parallel).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseDurations {
    pub march: u64,
    pub ss_even: u64,
    pub ss_odd: u64,
    pub balance: u64,
}

impl PhaseDurations {
    pub fn total(&self) -> u64 {
        self.march + self.ss_even + self.ss_odd + self.balance
    }
}

/// Scheduled (worst-case, Lemmas 29–31) stage durations for strip height `d`,
/// node bound `q`, and tile side `t`.
pub fn scheduled_durations(d: u64, q: u64, t: u64) -> PhaseDurations {
    PhaseDurations {
        march: q * d - 1,
        ss_even: (d - 1) + q * d,
        ss_odd: (d - 1) + q * d,
        balance: 3 * t - 4,
    }
}

/// One phase (vertical in virtual coordinates) of one tiling, applied to the
/// packets in `class_pkts`. Returns the per-stage durations (max over tiles).
///
/// `check_lemma16` additionally verifies the Sort-and-Smooth post-condition
/// (Lemma 16) on every tile — O(area·d) work, for tests.
pub fn run_phase(
    st: &mut S6State,
    tf: &Transform,
    tiling: &Tiling,
    d: u32,
    q: u32,
    class_pkts: &[u32],
    check_lemma16: bool,
) -> PhaseDurations {
    let n = st.n;
    let t_side = tiling.tile;
    debug_assert_eq!(t_side, 27 * d);

    // Group participants by tile: a packet participates iff its (virtual)
    // position and destination lie in the same tile.
    let mut groups: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    for &p in class_pkts {
        let pi = p as usize;
        if st.delivered[pi] {
            continue;
        }
        let vp = tf.to_virtual(st.pos[pi].x, st.pos[pi].y);
        let vd = tf.to_virtual(st.dst[pi].x, st.dst[pi].y);
        let tp = tiling.tile_containing(mesh_topo::Coord::new(vp.0, vp.1));
        let td = tiling.tile_containing(mesh_topo::Coord::new(vd.0, vd.1));
        if tp == td {
            groups.entry((tp.x0, tp.y0)).or_default().push(p);
        }
    }

    let mut dur = PhaseDurations::default();
    let mut keys: Vec<(i64, i64)> = groups.keys().copied().collect();
    keys.sort_unstable(); // determinism
    for key in keys {
        let pkts = &groups[&key];
        let tile = Rect::new(
            key.0,
            key.1,
            key.0 + t_side as i64 - 1,
            key.1 + t_side as i64 - 1,
        );
        let mut sim = TilePhase::new(st, tf, tile, d, q, n);
        // Active: at least 3 strips south of the destination strip, at the
        // beginning of the phase.
        let actives: Vec<u32> = pkts
            .iter()
            .copied()
            .filter(|&p| {
                let pi = p as usize;
                let vp = tf.to_virtual(st.pos[pi].x, st.pos[pi].y);
                let vd = tf.to_virtual(st.dst[pi].x, st.dst[pi].y);
                sim.strip_of(vp.1) + 3 <= sim.strip_of(vd.1)
            })
            .collect();
        if actives.is_empty() {
            continue;
        }
        dur.march = dur.march.max(sim.march(st, &actives));
        dur.ss_even = dur.ss_even.max(sim.sort_smooth(st, &actives, 0));
        dur.ss_odd = dur.ss_odd.max(sim.sort_smooth(st, &actives, 1));
        if check_lemma16 {
            sim.check_lemma16(st, &actives);
        }
        dur.balance = dur.balance.max(sim.balance(st, &actives));
    }

    // Lemmas 29–31: actual durations never exceed the scheduled ones.
    let sched = scheduled_durations(d as u64, q as u64, t_side as u64);
    assert!(
        dur.march <= sched.march,
        "Lemma 29 violated: {} > {}",
        dur.march,
        sched.march
    );
    assert!(
        dur.ss_even <= sched.ss_even && dur.ss_odd <= sched.ss_odd,
        "Lemma 30 violated"
    );
    assert!(
        dur.balance <= sched.balance,
        "Lemma 31 violated: {} > {}",
        dur.balance,
        sched.balance
    );
    dur
}

/// Per-tile phase simulator (virtual coordinates).
struct TilePhase {
    tf: Transform,
    tile: Rect,
    d: u32,
    q: u32,
    n: u32,
}

impl TilePhase {
    fn new(_st: &S6State, tf: &Transform, tile: Rect, d: u32, q: u32, n: u32) -> TilePhase {
        TilePhase {
            tf: *tf,
            tile,
            d,
            q,
            n,
        }
    }

    /// Strip number (1..=27) of a virtual row.
    #[inline]
    fn strip_of(&self, vy: u32) -> u32 {
        debug_assert!((vy as i64) >= self.tile.y0 && (vy as i64) <= self.tile.y1);
        ((vy as i64 - self.tile.y0) as u32 / self.d) + 1
    }

    #[inline]
    fn vpos(&self, st: &S6State, p: u32) -> (u32, u32) {
        let c = st.pos[p as usize];
        self.tf.to_virtual(c.x, c.y)
    }

    #[inline]
    fn vdst(&self, st: &S6State, p: u32) -> (u32, u32) {
        let c = st.dst[p as usize];
        self.tf.to_virtual(c.x, c.y)
    }

    /// Moves packet `p` one step north in virtual space.
    #[inline]
    fn move_north(&self, st: &mut S6State, p: u32) {
        let (vx, vy) = self.vpos(st, p);
        let (rx, ry) = self.tf.to_real((vx, vy + 1));
        let delivered = st.move_packet(p as usize, Coord::new(rx, ry));
        debug_assert!(
            !delivered,
            "phase moves never deliver (destinations are ≥ d+1 away)"
        );
    }

    /// Moves packet `p` one step east in virtual space.
    #[inline]
    fn move_east(&self, st: &mut S6State, p: u32) {
        let (vx, vy) = self.vpos(st, p);
        let (rx, ry) = self.tf.to_real((vx + 1, vy));
        let delivered = st.move_packet(p as usize, Coord::new(rx, ry));
        debug_assert!(!delivered, "balancing never delivers");
    }

    /// Stage 2 — the March: every active packet moves north, via column
    /// edges only, into strip `i−3` (where strip `i` holds its destination).
    /// A node in strip `i−3` refuses dst-strip-`i` packets once it holds `q`
    /// of them; nodes prefer forwarding the packet received from the south
    /// on the previous step (the Lemma 29 priority).
    fn march(&mut self, st: &mut S6State, actives: &[u32]) -> u64 {
        // Group actives by virtual column.
        let mut by_col: HashMap<u32, Vec<u32>> = HashMap::new();
        for &p in actives {
            by_col.entry(self.vpos(st, p).0).or_default().push(p);
        }
        let t = self.tile.width() as usize;
        // Reusable per-column buffers, indexed by local row.
        let mut pools: Vec<Vec<u32>> = (0..t).map(|_| Vec::new()).collect();
        let mut stop_cnt: Vec<u32> = vec![0; t];
        let mut from_south: Vec<(u32, u64)> = vec![(u32::MAX, 0); t];
        let mut max_steps = 0u64;

        let mut cols: Vec<u32> = by_col.keys().copied().collect();
        cols.sort_unstable();
        for col in cols {
            let pkts = &by_col[&col];
            let mut touched: Vec<usize> = Vec::new();
            let mut work: Vec<usize> = Vec::new();
            let mut in_work = vec![false; t];
            for &p in pkts {
                let ly = (self.vpos(st, p).1 as i64 - self.tile.y0) as usize;
                if pools[ly].is_empty() {
                    touched.push(ly);
                }
                pools[ly].push(p);
                // Initial stop counts: packets already settled in strip i-3.
                if self.strip_of(self.vpos(st, p).1) + 3 == self.strip_of(self.vdst(st, p).1) {
                    stop_cnt[ly] += 1;
                }
                if !in_work[ly] {
                    in_work[ly] = true;
                    work.push(ly);
                }
            }

            let mut steps = 0u64;
            let mut moves: Vec<(usize, u32)> = Vec::new(); // (from_ly, pkt)
            loop {
                moves.clear();
                let mut next_work: Vec<usize> = Vec::new();
                #[allow(clippy::needless_range_loop)]
                for wi in 0..work.len() {
                    let ly = work[wi];
                    in_work[ly] = false;
                    // Pick the packet to send north from this node.
                    let pref = {
                        let (p, s) = from_south[ly];
                        (s == steps).then_some(p)
                    };
                    let mut chosen: Option<u32> = None;
                    for &p in &pools[ly] {
                        if !self.march_eligible(st, p, ly, &stop_cnt) {
                            continue;
                        }
                        if Some(p) == pref {
                            chosen = Some(p);
                            break;
                        }
                        if chosen.is_none_or(|c| Some(c) != pref && p < c) {
                            chosen = Some(p);
                        }
                    }
                    if let Some(p) = chosen {
                        moves.push((ly, p));
                        // Node may still have eligible packets next step.
                        if !in_work[ly] {
                            in_work[ly] = true;
                            next_work.push(ly);
                        }
                    }
                    // Nodes with no eligible packet leave the worklist; they
                    // re-enter only when they receive a packet (a node's
                    // blocking conditions never relax otherwise: stop counts
                    // only grow).
                }
                if moves.is_empty() {
                    work = next_work; // empty
                    break;
                }
                for &(ly, p) in &moves {
                    let pool = &mut pools[ly];
                    let ix = pool.iter().position(|&x| x == p).unwrap();
                    pool.swap_remove(ix);
                    let i_dst = self.strip_of(self.vdst(st, p).1);
                    if self.strip_of(self.vpos(st, p).1) + 3 == i_dst {
                        // A settled packet moving further north within strip
                        // i−3 frees a slot: wake the southern neighbor, whose
                        // packets may have been blocked on this node's count.
                        stop_cnt[ly] -= 1;
                        if ly > 0 && !in_work[ly - 1] && !pools[ly - 1].is_empty() {
                            in_work[ly - 1] = true;
                            next_work.push(ly - 1);
                        }
                    }
                    self.move_north(st, p);
                    let nly = ly + 1;
                    if pools[nly].is_empty() {
                        touched.push(nly);
                    }
                    pools[nly].push(p);
                    if self.strip_of(self.vpos(st, p).1) + 3 == i_dst {
                        stop_cnt[nly] += 1;
                    }
                    from_south[nly] = (p, steps + 1);
                    if !in_work[nly] {
                        in_work[nly] = true;
                        next_work.push(nly);
                    }
                }
                work = next_work;
                steps += 1;
            }

            // Post-condition: every active of this column sits in strip i−3.
            #[cfg(debug_assertions)]
            for &p in pkts {
                let s = self.strip_of(self.vpos(st, p).1);
                let i = self.strip_of(self.vdst(st, p).1);
                debug_assert_eq!(
                    s + 3,
                    i,
                    "March left packet {p} in strip {s}, dst strip {i}"
                );
            }

            max_steps = max_steps.max(steps);
            // Reset buffers for the next column.
            for &ly in &touched {
                pools[ly].clear();
                stop_cnt[ly] = 0;
                from_south[ly] = (u32::MAX, 0);
            }
        }
        max_steps
    }

    /// Whether packet `p`, at local row `ly` of its column, may move north
    /// this step.
    #[inline]
    fn march_eligible(&self, st: &S6State, p: u32, ly: usize, stop_cnt: &[u32]) -> bool {
        let vy = self.vpos(st, p).1;
        let s = self.strip_of(vy);
        let i = self.strip_of(self.vdst(st, p).1);
        if s + 3 > i {
            return false; // already in (or past) strip i−3: settled
        }
        // The destination strip is on-grid, so the row above exists.
        let above = vy + 1;
        debug_assert!(above < self.n);
        let ts = self.strip_of(above);
        if ts + 3 < i {
            true // passing through, south of strip i−3
        } else if ts + 3 == i {
            // Entering / moving within strip i−3: subject to the q bound.
            stop_cnt[ly + 1] < self.q
        } else {
            false // would enter strip i−2: the March stops at i−3
        }
    }

    /// Stage 3 — Sort and Smooth, for destination strips of the given
    /// parity (`i % 2 == parity`): move the actives of each column from
    /// strip `i−3` to strip `i−2`, streamed in decreasing order of
    /// horizontal distance-to-go; the `t`-th node from the strip's north end
    /// holds every `t`-th packet it receives.
    fn sort_smooth(&mut self, st: &mut S6State, actives: &[u32], parity: u32) -> u64 {
        // Group by (column, destination strip).
        let mut by_ci: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for &p in actives {
            let i = self.strip_of(self.vdst(st, p).1);
            if i % 2 != parity {
                continue;
            }
            by_ci.entry((self.vpos(st, p).0, i)).or_default().push(p);
        }
        let mut keys: Vec<(u32, u32)> = by_ci.keys().copied().collect();
        keys.sort_unstable();
        let d = self.d as usize;
        let mut max_steps = 0u64;
        for key in keys {
            let (_, i) = key;
            let group = &by_ci[&key];
            // Local rows 0..d = strip i−3 (south→north), d..2d = strip i−2.
            let base = self.tile.y0 + ((i - 3 - 1) * self.d) as i64;
            let lrow = |vy: u32| (vy as i64 - base) as usize;
            let mut pools: Vec<Vec<u32>> = vec![Vec::new(); d]; // strip i−3
            for &p in group {
                let r = lrow(self.vpos(st, p).1);
                debug_assert!(r < d, "packet not in strip i-3 after March");
                pools[r].push(p);
            }
            // Strip i−2 state: received counters and at most one passing
            // packet per node.
            let mut received = vec![0u64; d];
            let mut passing: Vec<Option<u32>> = vec![None; d];
            let mut steps = 0u64;
            loop {
                // Decisions from pre-step state.
                let mut sends: Vec<(usize, u32)> = Vec::new(); // strip i−3 source row, pkt
                for (r, pool) in pools.iter().enumerate() {
                    // Node r is (r+1)-th from the southernmost: transmits on
                    // steps >= r+1 (1-based), i.e. step index >= r.
                    if steps < r as u64 || pool.is_empty() {
                        continue;
                    }
                    // Farthest east to go; ties to the lowest index.
                    let p = *pool
                        .iter()
                        .max_by_key(|&&p| {
                            let (vx, _) = self.vpos(st, p);
                            (self.vdst(st, p).0 - vx, std::cmp::Reverse(p))
                        })
                        .unwrap();
                    sends.push((r, p));
                }
                let mut forwards: Vec<usize> = Vec::new(); // strip i−2 rows with passing pkt
                for (r, slot) in passing.iter().enumerate() {
                    if slot.is_some() {
                        forwards.push(r);
                    }
                }
                if sends.is_empty() && forwards.is_empty() {
                    // Finished only once everything is held in strip i−2:
                    // nodes deeper in strip i−3 start sending at later steps,
                    // so an idle step is not yet quiescence.
                    if pools.iter().all(Vec::is_empty) {
                        break;
                    }
                    steps += 1;
                    debug_assert!(
                        steps <= (self.d as u64 - 1) + (self.q as u64 * self.d as u64) + 1,
                        "Sort&Smooth failed to terminate"
                    );
                    continue;
                }
                // Apply strip i−2 forwards first (they move into rows above).
                for &r in forwards.iter().rev() {
                    let p = passing[r].take().unwrap();
                    self.move_north(st, p);
                    let nr = r + 1;
                    debug_assert!(nr < d, "packet passed the top of strip i-2");
                    received[nr] += 1;
                    // Node nr is (d - nr)-th from the northernmost.
                    let t_from_north = (d - nr) as u64;
                    if !received[nr].is_multiple_of(t_from_north) {
                        passing[nr] = Some(p);
                    }
                }
                // Apply strip i−3 sends.
                for &(r, p) in &sends {
                    let pool = &mut pools[r];
                    let ix = pool.iter().position(|&x| x == p).unwrap();
                    pool.swap_remove(ix);
                    self.move_north(st, p);
                    if r + 1 < d {
                        pools[r + 1].push(p);
                    } else {
                        // Crossed into the bottom node of strip i−2, which is
                        // d-th from the northernmost.
                        received[0] += 1;
                        if !received[0].is_multiple_of(d as u64) {
                            passing[0] = Some(p);
                        }
                    }
                }
                steps += 1;
            }
            // Post-condition: every group packet now sits in strip i−2.
            #[cfg(debug_assertions)]
            for &p in group {
                let s = self.strip_of(self.vpos(st, p).1);
                debug_assert_eq!(s, i - 2, "Sort&Smooth left packet {p} in strip {s}");
            }
            max_steps = max_steps.max(steps);
        }
        max_steps
    }

    /// Stage 4 — Balancing via the 2-rule: any node holding more than two
    /// active packets sends east the one with the farthest east to go.
    fn balance(&mut self, st: &mut S6State, actives: &[u32]) -> u64 {
        let mut at: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for &p in actives {
            at.entry(self.vpos(st, p)).or_default().push(p);
        }
        let mut work: Vec<(u32, u32)> = at
            .iter()
            .filter(|(_, v)| v.len() > 2)
            .map(|(&k, _)| k)
            .collect();
        work.sort_unstable();
        let mut steps = 0u64;
        while !work.is_empty() {
            // Choose moves from pre-step state.
            let mut moves: Vec<((u32, u32), u32)> = Vec::new();
            for &node in &work {
                let pool = &at[&node];
                debug_assert!(pool.len() > 2);
                let p = *pool
                    .iter()
                    .max_by_key(|&&p| (self.vdst(st, p).0 - node.0, std::cmp::Reverse(p)))
                    .unwrap();
                // Lemma 17 guarantees an overloaded node holds a packet with
                // east still to go.
                debug_assert!(self.vdst(st, p).0 > node.0, "2-rule would overshoot");
                moves.push((node, p));
            }
            let mut dirty: Vec<(u32, u32)> = Vec::new();
            for &(node, p) in &moves {
                let pool = at.get_mut(&node).unwrap();
                let ix = pool.iter().position(|&x| x == p).unwrap();
                pool.swap_remove(ix);
                self.move_east(st, p);
                let to = (node.0 + 1, node.1);
                at.entry(to).or_default().push(p);
                dirty.push(node);
                dirty.push(to);
            }
            dirty.sort_unstable();
            dirty.dedup();
            work = dirty
                .into_iter()
                .filter(|k| at.get(k).is_some_and(|v| v.len() > 2))
                .collect();
            // Also retain previously overloaded nodes that stayed overloaded.
            // (They were sources this step; covered by `dirty`.)
            steps += 1;
        }
        steps
    }

    /// Lemma 16 check: immediately after Sort and Smooth, for any column `c`,
    /// row `r`, and `s ≥ 1`, at most `2s` active packets with destination
    /// column ≤ `c` occupy the `s` nodes of `r` at columns `c−s+1..=c`.
    fn check_lemma16(&self, st: &S6State, actives: &[u32]) {
        let mut rows: HashMap<u32, Vec<(u32, u32)>> = HashMap::new(); // vy -> (vx, dstx)
        for &p in actives {
            let (vx, vy) = self.vpos(st, p);
            rows.entry(vy).or_default().push((vx, self.vdst(st, p).0));
        }
        for (vy, pkts) in rows {
            let x0 = self.tile.x0.max(0) as u32;
            let x1 = (self.tile.x1.min(self.n as i64 - 1)) as u32;
            for c in x0..=x1 {
                let mut count = 0u64;
                let mut s = 0u64;
                for x in (x0..=c).rev() {
                    s += 1;
                    count += pkts.iter().filter(|&&(px, dx)| px == x && dx <= c).count() as u64;
                    assert!(
                        count <= 2 * s,
                        "Lemma 16 violated at row {vy}, col {c}, s={s}: {count} packets"
                    );
                }
            }
        }
    }
}
