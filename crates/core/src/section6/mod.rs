//! The §6 algorithm: deterministic, **minimal adaptive**, `O(n)`-time
//! routing of any permutation with `O(1)`-size queues.
//!
//! Structure (§6.1): the four movement classes NE, NW, SE, SW are routed
//! sequentially. For each class, iterations `j = 0, 1, …` work on tilings of
//! tile side `n/3ʲ`; each iteration runs a Vertical Phase on each of the
//! three offset tilings (one tiling when `j = 0`), then a Horizontal Phase
//! on each. A phase is March → Sort-and-Smooth (even, then odd destination
//! strips) → Balancing. When the tile side would drop below 27, a
//! farthest-first dimension-order base case finishes the class (Lemma 32).
//!
//! The implementation is step-exact and edge-respecting; every packet move
//! is validated to be minimal (Theorem 20). Two time figures are reported:
//!
//! * **scheduled** — every stage charges its worst-case duration from
//!   Lemmas 29–31, exactly as the paper's synchronized nodes would wait;
//!   Theorem 34 proves this is at most `972·n` (at most `564·n` with the
//!   improved `q = 102` refinement for iterations `j ≥ 1`).
//! * **quiescent** — every stage ends as soon as no rule can fire; a lower,
//!   "if nodes could detect completion" figure.
//!
//! The paper's `q = 408 = 17·(27−3)` node bound, and the Lemma 28 queue
//! bound `2q + 18 = 834`, are enforced by assertion.

pub mod basecase;
pub mod phase;
pub mod state;
pub mod virt;

use mesh_topo::{Tiling, TilingSet};
use mesh_traffic::{Quadrant, RoutingProblem};
use phase::PhaseDurations;
use serde::{Deserialize, Serialize};
use state::S6State;
use virt::Transform;

/// Configuration of a §6 run.
#[derive(Clone, Copy, Debug, Default)]
pub struct Section6Config {
    /// Use the improved `q = 102` for iterations `j ≥ 1` (§6.4's closing
    /// refinement; scheduled bound 564n instead of 972n, queue bound 222
    /// past the first iteration).
    pub improved_q: bool,
    /// Verify Lemma 16 after every Sort and Smooth (O(area·d) per tile —
    /// for tests).
    pub check_lemma16: bool,
}

/// The paper's node bound `q = 17·(27−3)` (Lemma 21).
pub const Q_BASE: u32 = 408;
/// The improved bound `q = 17·(9−3)` for iterations `j ≥ 1` (§6.4).
pub const Q_IMPROVED: u32 = 102;

/// Per-class statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PassStats {
    pub scheduled_steps: u64,
    pub quiescent_steps: u64,
    pub base_case_steps: u64,
    pub packets: usize,
}

/// Result of routing one problem with the §6 algorithm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Section6Report {
    pub n: u32,
    /// Total steps under the paper's worst-case stage schedule (Theorem 34:
    /// ≤ 972n, or ≤ 564n with `improved_q`).
    pub scheduled_steps: u64,
    /// Total steps when every stage ends at quiescence.
    pub quiescent_steps: u64,
    /// Largest number of packets ever co-resident in one node (Lemma 28:
    /// ≤ 834).
    pub max_node_load: u32,
    /// Total link traversals (= total work: every move is minimal).
    pub total_moves: u64,
    pub delivered: usize,
    pub total_packets: usize,
    /// Iterations executed per class (same for all classes).
    pub iterations: u32,
    pub per_class: [PassStats; 4],
}

impl Section6Report {
    /// `scheduled_steps / n` — Theorem 34 asserts this is at most 972 (564
    /// improved).
    pub fn steps_per_n(&self) -> f64 {
        self.scheduled_steps as f64 / self.n as f64
    }
}

/// The §6 router.
#[derive(Clone, Debug, Default)]
pub struct Section6Router {
    pub config: Section6Config,
}

impl Section6Router {
    /// Default configuration (`q = 408` everywhere: the Theorem 34 bound).
    pub fn new() -> Section6Router {
        Section6Router::default()
    }

    /// With the §6.4 improved-`q` refinement.
    pub fn improved() -> Section6Router {
        Section6Router {
            config: Section6Config {
                improved_q: true,
                ..Default::default()
            },
        }
    }

    /// Routes a static problem. `problem.n` must be a power of 3 (the
    /// paper's simplifying assumption); problems on `n < 27` run the base
    /// case directly.
    ///
    /// The problem should be a partial permutation for the Theorem 34
    /// guarantees to apply; other problems are routed on a best-effort basis
    /// (assertions are relaxed).
    pub fn route(&self, problem: &RoutingProblem) -> Section6Report {
        let n = problem.n;
        assert!(
            is_power_of_3(n),
            "the §6 algorithm assumes n is a power of 3 (got {n})"
        );
        assert!(
            problem.is_static(),
            "the §6 algorithm routes static problems"
        );
        let is_perm = problem.is_partial_permutation();
        let mut st = S6State::new(problem);

        let mut report = Section6Report {
            n,
            scheduled_steps: 0,
            quiescent_steps: 0,
            max_node_load: 0,
            total_moves: 0,
            delivered: 0,
            total_packets: problem.len(),
            iterations: 0,
            per_class: [PassStats::default(); 4],
        };

        for (ci, q) in [Quadrant::NE, Quadrant::NW, Quadrant::SE, Quadrant::SW]
            .into_iter()
            .enumerate()
        {
            let stats = self.route_class(&mut st, q, is_perm, &mut report.iterations);
            report.scheduled_steps += stats.scheduled_steps;
            report.quiescent_steps += stats.quiescent_steps;
            report.per_class[ci] = stats;
        }

        assert!(st.done(), "section 6 router failed to deliver all packets");
        report.max_node_load = st.max_load as u32;
        report.total_moves = st.moves;
        report.delivered = st.delivered_count;
        if is_perm {
            // Theorem 34 (with the paper's constants).
            let bound = if self.config.improved_q { 564 } else { 972 } as u64;
            assert!(
                report.scheduled_steps <= bound * n as u64,
                "Theorem 34 violated: {} > {}n",
                report.scheduled_steps,
                bound
            );
            assert!(
                report.max_node_load <= 834,
                "Lemma 28 violated: node load {}",
                report.max_node_load
            );
        }
        report
    }

    /// Routes one movement class to completion.
    fn route_class(
        &self,
        st: &mut S6State,
        class: Quadrant,
        is_perm: bool,
        iterations_out: &mut u32,
    ) -> PassStats {
        let n = st.n;
        let class_pkts: Vec<u32> = (0..st.pos.len() as u32)
            .filter(|&p| {
                !st.delivered[p as usize]
                    && Quadrant::of(st.pos[p as usize], st.dst[p as usize]) == Some(class)
            })
            .collect();
        let mut stats = PassStats {
            packets: class_pkts.len(),
            ..Default::default()
        };

        let tf_v = Transform::vertical(n, class);
        let tf_h = Transform::horizontal(n, class);

        let mut t_side = n;
        let mut j = 0u32;
        while t_side >= 27 {
            let d = t_side / 27;
            let q = if j >= 1 && self.config.improved_q {
                Q_IMPROVED
            } else {
                Q_BASE
            };
            let tilings: Vec<Tiling> = if j == 0 {
                vec![Tiling::new(t_side, 0)]
            } else {
                TilingSet::new(t_side).tilings.to_vec()
            };
            // Vertical Phases, then Horizontal Phases (Figure 7: V1 V2 V3 H1 H2 H3).
            for (tf, _vertical) in [(&tf_v, true), (&tf_h, false)] {
                for tiling in &tilings {
                    let dur: PhaseDurations = phase::run_phase(
                        st,
                        tf,
                        tiling,
                        d,
                        q,
                        &class_pkts,
                        self.config.check_lemma16,
                    );
                    stats.quiescent_steps += dur.total();
                    stats.scheduled_steps +=
                        phase::scheduled_durations(d as u64, q as u64, t_side as u64).total();
                }
            }
            // Lemma 18 + Lemma 19 invariant: at iteration end every class
            // packet is within 3d−1 of its destination in both dimensions.
            if is_perm {
                for &p in &class_pkts {
                    let pi = p as usize;
                    if st.delivered[pi] {
                        continue;
                    }
                    let (pos, dst) = (st.pos[pi], st.dst[pi]);
                    assert!(
                        pos.dx(dst) < 3 * d && pos.dy(dst) < 3 * d,
                        "Lemma 18 violated after iteration {j}: packet {p} at {pos} dst {dst} (d={d})"
                    );
                }
            }
            t_side /= 3;
            j += 1;
        }
        *iterations_out = j;

        let bc = basecase::run_base_case(st, &class_pkts);
        stats.base_case_steps = bc;
        stats.quiescent_steps += bc;
        // Lemma 32: at most 14 steps — applicable when the iterations ran
        // (n ≥ 27) and the problem is a permutation.
        if n >= 27 && is_perm {
            assert!(bc <= 14, "Lemma 32 violated: base case took {bc}");
            stats.scheduled_steps += 14;
        } else {
            stats.scheduled_steps += bc;
        }
        stats
    }
}

/// True if `n` is a power of three.
pub fn is_power_of_3(mut n: u32) -> bool {
    if n == 0 {
        return false;
    }
    while n.is_multiple_of(3) {
        n /= 3;
    }
    n == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_traffic::workloads;

    #[test]
    fn power_of_3() {
        assert!(is_power_of_3(1));
        assert!(is_power_of_3(3));
        assert!(is_power_of_3(27));
        assert!(is_power_of_3(2187));
        assert!(!is_power_of_3(0));
        assert!(!is_power_of_3(2));
        assert!(!is_power_of_3(81 * 2));
    }

    #[test]
    fn tiny_mesh_base_case_only() {
        let pb = workloads::random_permutation(9, 1);
        let r = Section6Router::new().route(&pb);
        assert_eq!(r.delivered, 81);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn routes_random_permutation_n27() {
        let pb = workloads::random_permutation(27, 2);
        let r = Section6Router::new().route(&pb);
        assert_eq!(r.delivered, 27 * 27);
        assert_eq!(r.iterations, 1);
        assert!(r.scheduled_steps <= 972 * 27);
        assert!(r.max_node_load <= 834);
    }

    #[test]
    fn routes_transpose_n81_with_lemma16_checks() {
        let pb = workloads::transpose(81);
        let router = Section6Router {
            config: Section6Config {
                improved_q: false,
                check_lemma16: true,
            },
        };
        let r = router.route(&pb);
        assert_eq!(r.delivered, 81 * 81);
        assert_eq!(r.iterations, 2);
        assert_eq!(r.total_moves, pb.total_work(), "minimality (Theorem 20)");
    }

    #[test]
    fn improved_q_cuts_schedule() {
        let pb = workloads::random_permutation(81, 3);
        let base = Section6Router::new().route(&pb);
        let imp = Section6Router::improved().route(&pb);
        assert!(imp.scheduled_steps < base.scheduled_steps);
        assert!(imp.scheduled_steps <= 564 * 81);
        assert_eq!(imp.delivered, base.delivered);
    }
}

#[cfg(test)]
mod quadrant_tests {
    use super::*;
    use mesh_topo::Coord;
    use mesh_traffic::RoutingProblem;

    /// A permutation whose packets all belong to one quadrant class,
    /// exercising the reflected transforms end to end.
    fn single_quadrant_problem(n: u32, q: Quadrant) -> RoutingProblem {
        // Shift by (n/3 or -n/3) in each dimension per the quadrant signs —
        // a bijection on a subgrid; remaining nodes get no packet.
        let (sx, sy) = q.signs();
        let d = (n / 3) as i64;
        let mut pairs = Vec::new();
        for y in 0..n {
            for x in 0..n {
                let tx = x as i64 + sx * d;
                let ty = y as i64 + sy * d;
                if tx >= 0 && ty >= 0 && (tx as u32) < n && (ty as u32) < n {
                    pairs.push((Coord::new(x, y), Coord::new(tx as u32, ty as u32)));
                }
            }
        }
        RoutingProblem::from_pairs(n, format!("quadrant-{q}"), pairs)
    }

    #[test]
    fn every_quadrant_routes_through_its_transforms() {
        for q in [Quadrant::NE, Quadrant::NW, Quadrant::SE, Quadrant::SW] {
            let pb = single_quadrant_problem(81, q);
            assert!(pb
                .packets
                .iter()
                .all(|p| Quadrant::of(p.src, p.dst) == Some(q)));
            let router = Section6Router {
                config: Section6Config {
                    improved_q: false,
                    check_lemma16: true,
                },
            };
            let r = router.route(&pb);
            assert_eq!(r.delivered, pb.len(), "{q}");
            assert_eq!(r.total_moves, pb.total_work(), "{q} minimality");
            assert!(r.max_node_load <= 834);
            // Only one class is populated.
            let populated: Vec<usize> = r
                .per_class
                .iter()
                .enumerate()
                .filter(|(_, s)| s.packets > 0)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(populated.len(), 1, "{q}");
        }
    }

    #[test]
    fn pure_axis_packets_route() {
        // Due north / east / south / west packets exercise the quadrant
        // conventions (dx = 0 or dy = 0).
        let n = 27;
        let mut pairs = Vec::new();
        for x in 0..n {
            pairs.push((Coord::new(x, 0), Coord::new(x, n - 1))); // due north
        }
        for y in 1..n - 1 {
            pairs.push((Coord::new(0, y), Coord::new(n - 1, y))); // due east
        }
        let pb = RoutingProblem::from_pairs(n, "axes", pairs);
        let r = Section6Router::new().route(&pb);
        assert_eq!(r.delivered, pb.len());
        assert_eq!(r.total_moves, pb.total_work());
    }

    #[test]
    fn two_packet_swap_routes() {
        let pb = RoutingProblem::from_pairs(
            27,
            "swap",
            [
                (Coord::new(0, 0), Coord::new(26, 26)),
                (Coord::new(26, 26), Coord::new(0, 0)),
            ],
        );
        let r = Section6Router::new().route(&pb);
        assert_eq!(r.delivered, 2);
        assert_eq!(r.total_moves, 104);
    }

    #[test]
    fn improved_matches_base_delivery_everywhere() {
        for seed in 0..3 {
            let pb = mesh_traffic::workloads::random_partial_permutation(81, 0.7, seed);
            let a = Section6Router::new().route(&pb);
            let b = Section6Router::improved().route(&pb);
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.total_moves, b.total_moves, "identical physical work");
        }
    }
}
