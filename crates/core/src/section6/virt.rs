//! Coordinate transforms: one phase implementation for four quadrants × two
//! axes.
//!
//! §6.1 routes the four packet classes (NE, NW, SE, SW) sequentially, and
//! each iteration alternates Vertical and Horizontal Phases that are exact
//! mirror images. We implement the phases **once**, for packets that move
//! north (and balance east), in a *virtual* coordinate system:
//!
//! * a reflection maps the quadrant onto NE (`x → n−1−x` and/or
//!   `y → n−1−y`);
//! * an optional transpose (`(x, y) → (y, x)`) turns the Horizontal Phase
//!   into a Vertical Phase.
//!
//! All geometric reasoning (tiles, strips, "north", "farthest east to go")
//! happens in virtual coordinates; only the load accounting uses real nodes.

use mesh_traffic::Quadrant;

/// A virtual coordinate (same range as real: `0..n` per axis).
pub type V = (u32, u32);

/// An involutive coordinate transform: reflection per axis + optional
/// transpose. `to_virtual` and `to_real` are the same map (it is an
/// involution: reflect ∘ transpose⁻¹ composition chosen to self-invert).
#[derive(Clone, Copy, Debug)]
pub struct Transform {
    n: u32,
    flip_x: bool,
    flip_y: bool,
    transpose: bool,
}

impl Transform {
    /// Transform for a quadrant's **Vertical** Phase: reflect so the packet
    /// class moves north/east.
    pub fn vertical(n: u32, q: Quadrant) -> Transform {
        let (sx, sy) = q.signs();
        Transform {
            n,
            flip_x: sx < 0,
            flip_y: sy < 0,
            transpose: false,
        }
    }

    /// Transform for the **Horizontal** Phase: the vertical transform
    /// followed by a transpose, so "north" in virtual space is the packet's
    /// profitable horizontal direction.
    pub fn horizontal(n: u32, q: Quadrant) -> Transform {
        let (sx, sy) = q.signs();
        Transform {
            n,
            // Transpose first, then flip: flips apply to virtual axes.
            // Virtual y = real x (possibly flipped by sx), virtual x = real y.
            flip_x: sy < 0,
            flip_y: sx < 0,
            transpose: true,
        }
    }

    /// Real → virtual.
    #[inline]
    pub fn to_virtual(&self, x: u32, y: u32) -> V {
        let (mut vx, mut vy) = if self.transpose { (y, x) } else { (x, y) };
        if self.flip_x {
            vx = self.n - 1 - vx;
        }
        if self.flip_y {
            vy = self.n - 1 - vy;
        }
        (vx, vy)
    }

    /// Virtual → real.
    #[inline]
    pub fn to_real(&self, v: V) -> (u32, u32) {
        let (mut vx, mut vy) = v;
        if self.flip_x {
            vx = self.n - 1 - vx;
        }
        if self.flip_y {
            vy = self.n - 1 - vy;
        }
        if self.transpose {
            (vy, vx)
        } else {
            (vx, vy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_traffic::Quadrant;

    #[test]
    fn roundtrip_all_transforms() {
        let n = 27;
        for q in [Quadrant::NE, Quadrant::NW, Quadrant::SE, Quadrant::SW] {
            for t in [Transform::vertical(n, q), Transform::horizontal(n, q)] {
                for x in 0..n {
                    for y in 0..n {
                        let v = t.to_virtual(x, y);
                        assert_eq!(t.to_real(v), (x, y), "{q:?} {t:?}");
                        assert!(v.0 < n && v.1 < n);
                    }
                }
            }
        }
    }

    #[test]
    fn vertical_transform_makes_quadrant_move_ne() {
        let n = 9;
        // For every quadrant, a (pos, dst) pair of that class maps to a
        // virtual pair with vdst.x >= vpos.x and vdst.y >= vpos.y.
        let cases = [
            (Quadrant::NE, (1, 1), (5, 7)),
            (Quadrant::NW, (7, 1), (2, 6)),
            (Quadrant::SE, (1, 7), (6, 2)),
            (Quadrant::SW, (7, 7), (1, 2)),
        ];
        for (q, pos, dst) in cases {
            let t = Transform::vertical(n, q);
            let vp = t.to_virtual(pos.0, pos.1);
            let vd = t.to_virtual(dst.0, dst.1);
            assert!(vd.0 >= vp.0 && vd.1 >= vp.1, "{q:?}: {vp:?} -> {vd:?}");
        }
    }

    #[test]
    fn horizontal_transform_swaps_axes() {
        let n = 9;
        for (q, pos, dst) in [
            (Quadrant::NE, (1, 1), (5, 7)),
            (Quadrant::NW, (7, 1), (2, 6)),
            (Quadrant::SE, (1, 7), (6, 2)),
            (Quadrant::SW, (7, 7), (1, 2)),
        ] {
            let t = Transform::horizontal(n, q);
            let vp = t.to_virtual(pos.0, pos.1);
            let vd = t.to_virtual(dst.0, dst.1);
            // Vertical (virtual) distance = horizontal (real) distance.
            assert_eq!(
                vd.1.abs_diff(vp.1),
                (dst.0 as i64 - pos.0 as i64).unsigned_abs() as u32
            );
            assert!(vd.0 >= vp.0 && vd.1 >= vp.1, "{q:?}: {vp:?} -> {vd:?}");
        }
    }

    #[test]
    fn neighbor_preservation() {
        // Virtual "north" neighbors are real grid neighbors.
        let n = 9;
        let t = Transform::horizontal(n, Quadrant::SW);
        for x in 0..n {
            for y in 0..n - 1 {
                let a = t.to_real((x, y));
                let b = t.to_real((x, y + 1));
                let dist = (a.0 as i64 - b.0 as i64).abs() + (a.1 as i64 - b.1 as i64).abs();
                assert_eq!(dist, 1);
            }
        }
    }
}
