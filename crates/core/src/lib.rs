//! # mesh-routing
//!
//! A complete, executable reproduction of **Chinn, Leighton & Tompa,
//! "Minimal Adaptive Routing on the Mesh with Bounded Queue Size"**
//! (SPAA 1994): the `Ω(n²/k²)` lower bound for destination-exchangeable
//! minimal adaptive routing (with its §5 extensions), the matching
//! dimension-order bounds, the Theorem 15 `O(n²/k + n)` bounded-queue
//! router, and the §6 `O(n)`-time `O(1)`-queue minimal adaptive algorithm.
//!
//! This crate is the facade: it re-exports the substrate crates and adds
//! the §6 algorithm (which needs its own phased engine) plus a one-call
//! [`route`] API.
//!
//! ```
//! use mesh_routing::prelude::*;
//!
//! let problem = workloads::random_permutation(27, 7);
//! let outcome = mesh_routing::route(Algorithm::Section6, &problem);
//! assert!(outcome.completed);
//! assert!(outcome.max_queue <= 834); // Theorem 34's queue bound
//! ```

pub mod api;
pub mod section6;

pub use api::{
    resume_route, resume_steady_route, route, route_checkpointed, route_with_cap, steady_route,
    steady_route_checkpointed, Algorithm, RouteOutcome, SteadyOutcome,
};
pub use section6::{Section6Config, Section6Report, Section6Router};

// Re-export the substrate crates under stable names.
pub use mesh_adversary as adversary;
pub use mesh_engine as engine;
pub use mesh_engine::faults;
pub use mesh_reliable as reliable;
pub use mesh_routers as routers;
pub use mesh_topo as topo;
pub use mesh_traffic as traffic;

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::api::{
        resume_route, resume_steady_route, route, route_checkpointed, route_with_cap, steady_route,
        steady_route_checkpointed, Algorithm, RouteOutcome, SteadyOutcome,
    };
    pub use crate::section6::{Section6Report, Section6Router};
    pub use mesh_adversary::{
        verify_lower_bound, DimOrderParams, GeneralConstruction, GeneralParams,
    };
    pub use mesh_engine::faults::{CompiledFaults, FaultPlan, FaultPlanError};
    pub use mesh_engine::{
        AdmissionPolicy, Dx, DxRouter, ProtocolControl, ProtocolHook, Router, Sim, SimConfig,
        SimError, SimReport, SteadyConfig, SteadyReport, StepEvents, WindowFrame,
    };
    pub use mesh_reliable::{BackoffPolicy, Transport, TransportReport};
    pub use mesh_routers::{
        AltAdaptive, DimOrder, FarthestFirst, FaultAware, Theorem15, WestFirst,
    };
    pub use mesh_topo::{Coord, Dir, DirSet, Mesh, Topology, Torus};
    pub use mesh_traffic::{workloads, Packet, PacketId, PayloadId, Quadrant, RoutingProblem};
}
