//! One-call routing API over every algorithm in the reproduction.

use crate::section6::{Section6Report, Section6Router};
use mesh_engine::{
    DirectorySink, Dx, MemorySink, Sim, SimConfig, SimError, Snapshot, SteadyConfig, SteadyReport,
};
use mesh_routers::{
    AltAdaptive, BoundedDeflect, DimOrder, FarthestFirst, HotPotato, Theorem15, WestFirst,
};
use mesh_topo::Mesh;
use mesh_traffic::RoutingProblem;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The algorithms of the paper (and this reproduction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Destination-exchangeable XY dimension order, central queue size `k`
    /// (§1.1/§2; may deadlock on adversarial traffic — bounded-queue
    /// minimal routing is allowed to be slow, which is the point of the
    /// lower bounds).
    DimOrder { k: u32 },
    /// Column-first variant.
    DimOrderYx { k: u32 },
    /// The §2 alternating minimal-adaptive example, central queue size `k`.
    AltAdaptive { k: u32 },
    /// Theorem 15: `O(n²/k + n)` dimension order, four inlink queues of
    /// size `k`. Always delivers.
    Theorem15 { k: u32 },
    /// Farthest-first dimension order, central queue size `k` (not
    /// destination-exchangeable).
    FarthestFirst { k: u32 },
    /// Farthest-first with effectively unbounded queues: the classic
    /// `2n − 2` greedy router (§1.1).
    GreedyUnbounded,
    /// Hot-potato deflection routing: destination-exchangeable but
    /// **nonminimal**, with one-slot buffers (§5's nonminimal discussion).
    HotPotato,
    /// δ-bounded deflection (§5's nonminimal-extensions class): stays within
    /// `delta` of the shortest-path rectangle; `delta = 0` is minimal.
    BoundedDeflect { k: u32, delta: u8 },
    /// West-first turn-model minimal adaptive routing (the §2-cited
    /// planar-adaptive family), central queue size `k`.
    WestFirst { k: u32 },
    /// The §6 `O(n)`-time, `O(1)`-queue minimal adaptive algorithm
    /// (requires `n` to be a power of 3).
    Section6,
    /// §6 with the improved `q = 102` refinement (§6.4; 564n bound).
    Section6Improved,
}

impl Algorithm {
    /// Short display name.
    pub fn name(&self) -> String {
        match self {
            Algorithm::DimOrder { k } => format!("dim-order(k={k})"),
            Algorithm::DimOrderYx { k } => format!("dim-order-yx(k={k})"),
            Algorithm::AltAdaptive { k } => format!("alt-adaptive(k={k})"),
            Algorithm::Theorem15 { k } => format!("theorem15(k={k})"),
            Algorithm::FarthestFirst { k } => format!("farthest-first(k={k})"),
            Algorithm::GreedyUnbounded => "greedy-unbounded".into(),
            Algorithm::HotPotato => "hot-potato".into(),
            Algorithm::BoundedDeflect { k, delta } => {
                format!("bounded-deflect(k={k},d={delta})")
            }
            Algorithm::WestFirst { k } => format!("west-first(k={k})"),
            Algorithm::Section6 => "section6".into(),
            Algorithm::Section6Improved => "section6-improved".into(),
        }
    }

    /// Whether the algorithm is destination-exchangeable (§2) — i.e. within
    /// the scope of the Theorem 14 lower bound.
    pub fn is_destination_exchangeable(&self) -> bool {
        matches!(
            self,
            Algorithm::DimOrder { .. }
                | Algorithm::DimOrderYx { .. }
                | Algorithm::AltAdaptive { .. }
                | Algorithm::Theorem15 { .. }
                | Algorithm::HotPotato
                | Algorithm::BoundedDeflect { .. }
                | Algorithm::WestFirst { .. }
        )
    }
}

/// Normalized result of routing one problem with one algorithm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouteOutcome {
    pub algorithm: String,
    pub workload: String,
    pub n: u32,
    /// Steps to deliver everything (for §6: the provable *scheduled* figure;
    /// the quiescent figure is in `section6`).
    pub steps: u64,
    /// False if the step cap was reached first (bounded-queue minimal
    /// routers may stall — that is a *finding*, not an error).
    pub completed: bool,
    /// Largest per-queue occupancy (engine routers) or per-node load (§6).
    pub max_queue: u32,
    pub total_moves: u64,
    pub delivered: usize,
    pub total_packets: usize,
    /// The full engine report (engine-simulated algorithms only; the §6
    /// scheduler does not run through the engine and reports via `section6`).
    pub report: Option<mesh_engine::SimReport>,
    /// The full §6 report, when applicable.
    pub section6: Option<Section6Report>,
}

/// Routes `problem` with `algorithm` on the mesh, with a generous default
/// step cap of `64·n² + 4096`.
pub fn route(algorithm: Algorithm, problem: &RoutingProblem) -> RouteOutcome {
    let n = problem.n as u64;
    route_with_cap(algorithm, problem, 64 * n * n + 4096)
}

/// [`route`] with an explicit step cap (ignored by §6, which always
/// terminates by construction).
pub fn route_with_cap(algorithm: Algorithm, problem: &RoutingProblem, cap: u64) -> RouteOutcome {
    let topo = Mesh::new(problem.n);
    match algorithm {
        Algorithm::DimOrder { k } => engine_route(
            algorithm,
            Sim::new(&topo, Dx::new(DimOrder::new(k)), problem),
            cap,
        ),
        Algorithm::DimOrderYx { k } => engine_route(
            algorithm,
            Sim::new(&topo, Dx::new(DimOrder::yx(k)), problem),
            cap,
        ),
        Algorithm::AltAdaptive { k } => engine_route(
            algorithm,
            Sim::new(&topo, Dx::new(AltAdaptive::new(k)), problem),
            cap,
        ),
        Algorithm::Theorem15 { k } => engine_route(
            algorithm,
            Sim::new(&topo, Dx::new(Theorem15::new(k)), problem),
            cap,
        ),
        Algorithm::FarthestFirst { k } => engine_route(
            algorithm,
            Sim::new(&topo, FarthestFirst::new(k), problem),
            cap,
        ),
        Algorithm::GreedyUnbounded => engine_route(
            algorithm,
            Sim::new(&topo, FarthestFirst::unbounded(problem.n), problem),
            cap,
        ),
        Algorithm::HotPotato => engine_route(
            algorithm,
            Sim::new(&topo, Dx::new(HotPotato::new(problem.n)), problem),
            cap,
        ),
        Algorithm::BoundedDeflect { k, delta } => engine_route(
            algorithm,
            Sim::new(
                &topo,
                Dx::new(BoundedDeflect::new(problem.n, k, delta)),
                problem,
            ),
            cap,
        ),
        Algorithm::WestFirst { k } => engine_route(
            algorithm,
            Sim::new(&topo, Dx::new(WestFirst::new(k)), problem),
            cap,
        ),
        Algorithm::Section6 | Algorithm::Section6Improved => {
            let router = if algorithm == Algorithm::Section6 {
                Section6Router::new()
            } else {
                Section6Router::improved()
            };
            let r = router.route(problem);
            RouteOutcome {
                algorithm: algorithm.name(),
                workload: problem.label.clone(),
                n: problem.n,
                steps: r.scheduled_steps,
                completed: true,
                max_queue: r.max_node_load,
                total_moves: r.total_moves,
                delivered: r.delivered,
                total_packets: r.total_packets,
                report: None,
                section6: Some(r),
            }
        }
    }
}

fn engine_route<R: mesh_engine::Router>(
    algorithm: Algorithm,
    mut sim: Sim<'_, Mesh, R>,
    cap: u64,
) -> RouteOutcome {
    let _ = sim.run(cap);
    engine_outcome(algorithm, sim.report())
}

fn engine_outcome(algorithm: Algorithm, r: mesh_engine::SimReport) -> RouteOutcome {
    RouteOutcome {
        algorithm: algorithm.name(),
        workload: r.workload.clone(),
        n: r.n,
        steps: r.steps,
        completed: r.completed,
        max_queue: r.max_queue,
        total_moves: r.total_moves,
        delivered: r.delivered,
        total_packets: r.total_packets,
        report: Some(r),
        section6: None,
    }
}

/// Dispatches an engine algorithm to its concrete router value and runs
/// `$body` with it bound; the §6 schedulers do not run through the engine
/// and make the enclosing function return an error.
macro_rules! with_engine_router {
    ($algo:expr, $n:expr, |$router:ident| $body:expr) => {
        match $algo {
            Algorithm::DimOrder { k } => {
                let $router = Dx::new(DimOrder::new(k));
                $body
            }
            Algorithm::DimOrderYx { k } => {
                let $router = Dx::new(DimOrder::yx(k));
                $body
            }
            Algorithm::AltAdaptive { k } => {
                let $router = Dx::new(AltAdaptive::new(k));
                $body
            }
            Algorithm::Theorem15 { k } => {
                let $router = Dx::new(Theorem15::new(k));
                $body
            }
            Algorithm::FarthestFirst { k } => {
                let $router = FarthestFirst::new(k);
                $body
            }
            Algorithm::GreedyUnbounded => {
                let $router = FarthestFirst::unbounded($n);
                $body
            }
            Algorithm::HotPotato => {
                let $router = Dx::new(HotPotato::new($n));
                $body
            }
            Algorithm::BoundedDeflect { k, delta } => {
                let $router = Dx::new(BoundedDeflect::new($n, k, delta));
                $body
            }
            Algorithm::WestFirst { k } => {
                let $router = Dx::new(WestFirst::new(k));
                $body
            }
            Algorithm::Section6 | Algorithm::Section6Improved => {
                return Err(format!(
                    "{} does not run through the engine; checkpoint/resume needs an engine algorithm",
                    $algo.name()
                ))
            }
        }
    };
}

/// [`route_with_cap`] writing a cadenced checkpoint stream (`ckpt_<step>.json`,
/// plus `diag_<step>.json` on a watchdog trip) to `dir`. Checkpointing is a
/// pure observer: the outcome is byte-identical to an uncheckpointed run.
/// Returns the outcome and the path of the last checkpoint written, if any.
/// Engine algorithms only — the §6 schedulers yield `Err`.
pub fn route_checkpointed(
    algorithm: Algorithm,
    problem: &RoutingProblem,
    cap: u64,
    every: u64,
    dir: &Path,
) -> Result<(RouteOutcome, Option<PathBuf>), String> {
    let topo = Mesh::new(problem.n);
    let config = SimConfig {
        checkpoint_every: Some(every),
        ..SimConfig::default()
    };
    with_engine_router!(algorithm, problem.n, |router| {
        let mut sim = Sim::with_config(&topo, router, problem, config);
        let mut sink = DirectorySink::new(dir).map_err(|e| e.to_string())?;
        let _ = sim.run_checkpointed(cap, &mut sink);
        if let Some(err) = sink.error {
            return Err(err.to_string());
        }
        let last = sink.last_checkpoint().map(Path::to_path_buf);
        Ok((engine_outcome(algorithm, sim.report()), last))
    })
}

/// Restores a run from `snap` and drives it to completion (or `cap`),
/// producing the same [`RouteOutcome`] an uninterrupted [`route_with_cap`]
/// of the whole problem would — bit-identical, per the engine's
/// crash-recovery guarantee (DESIGN.md §11). The algorithm must match the
/// one the snapshot was taken under.
pub fn resume_route(
    algorithm: Algorithm,
    snap: &Snapshot,
    cap: u64,
) -> Result<RouteOutcome, String> {
    let topo = Mesh::new(snap.n);
    with_engine_router!(algorithm, snap.n, |router| {
        let mut sim = Sim::restore(&topo, router, SimConfig::default(), None, snap)
            .map_err(|e| e.to_string())?;
        let _ = sim.run(cap);
        Ok(engine_outcome(algorithm, sim.report()))
    })
}

/// Outcome of an open-system steady-state run (`mesh route --lambda`):
/// the windowed measurement frames plus the final engine report, which
/// carries the shed/expired admission-control totals.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SteadyOutcome {
    pub algorithm: String,
    pub workload: String,
    pub n: u32,
    /// Offered load, packets per node per step.
    pub lambda: f64,
    /// The measurement schedule the run followed.
    pub schedule: SteadyConfig,
    pub steady: SteadyReport,
    pub report: mesh_engine::SimReport,
}

fn steady_outcome(
    algorithm: Algorithm,
    lambda: f64,
    schedule: SteadyConfig,
    steady: SteadyReport,
    report: mesh_engine::SimReport,
) -> SteadyOutcome {
    SteadyOutcome {
        algorithm: algorithm.name(),
        workload: report.workload.clone(),
        n: report.n,
        lambda,
        schedule,
        steady,
        report,
    }
}

/// Maps a steady driver result: a step-cap stop is the *expected* outcome
/// of a `--halt-at` crash simulation (`Ok(None)`), any other failure is a
/// real error.
fn finish_steady(
    res: Result<SteadyReport, SimError>,
    halted: bool,
) -> Result<Option<SteadyReport>, String> {
    match res {
        Ok(rep) => Ok(Some(rep)),
        Err(SimError::StepCap(_)) if halted => Ok(None),
        Err(e) => Err(e.to_string()),
    }
}

/// Runs `problem` (typically an open Bernoulli source) under `algorithm`
/// on the steady-state measurement `schedule`. Engine algorithms only.
pub fn steady_route(
    algorithm: Algorithm,
    problem: &RoutingProblem,
    lambda: f64,
    schedule: SteadyConfig,
    config: SimConfig,
) -> Result<SteadyOutcome, String> {
    let topo = Mesh::new(problem.n);
    with_engine_router!(algorithm, problem.n, |router| {
        let mut sim = Sim::with_config(&topo, router, problem, config);
        let rep = sim.run_steady(schedule).map_err(|e| e.to_string())?;
        Ok(steady_outcome(
            algorithm,
            lambda,
            schedule,
            rep,
            sim.report(),
        ))
    })
}

/// [`steady_route`] writing a cadenced checkpoint stream to `dir`
/// (cadence from `config.checkpoint_every`). `halt_at` simulates a crash:
/// the run stops there with `Ok((None, last_checkpoint))`; resume it with
/// [`resume_steady_route`] for a byte-identical final outcome.
pub fn steady_route_checkpointed(
    algorithm: Algorithm,
    problem: &RoutingProblem,
    lambda: f64,
    schedule: SteadyConfig,
    config: SimConfig,
    dir: &Path,
    halt_at: Option<u64>,
) -> Result<(Option<SteadyOutcome>, Option<PathBuf>), String> {
    let topo = Mesh::new(problem.n);
    with_engine_router!(algorithm, problem.n, |router| {
        let mut sim = Sim::with_config(&topo, router, problem, config);
        let mut sink = DirectorySink::new(dir).map_err(|e| e.to_string())?;
        let res = sim.run_steady_checkpointed(schedule, lambda, None, &mut sink, halt_at);
        if let Some(err) = sink.error {
            return Err(err.to_string());
        }
        let last = sink.last_checkpoint().map(Path::to_path_buf);
        let rep = finish_steady(res, halt_at.is_some())?;
        Ok((
            rep.map(|r| steady_outcome(algorithm, lambda, schedule, r, sim.report())),
            last,
        ))
    })
}

/// Restores a steady-state run from `snap` and drives the remaining
/// schedule. The measurement schedule and offered-load label come from
/// the snapshot's own `steady` environment block (recorded since
/// snapshot format v2), so a resume re-passes nothing; a snapshot without
/// one (a v1 file, or a closed-system checkpoint) is rejected. The
/// observer's windowed measurement state rides the snapshot's `protocol`
/// slot, so frames and the final report are byte-identical to a run that
/// never stopped. `config.admission` must match the policy the snapshot
/// was taken under (the restore rejects a mismatch with a typed error).
/// Checkpointing continues into `dir` when `config.checkpoint_every` is
/// set.
pub fn resume_steady_route(
    algorithm: Algorithm,
    snap: &Snapshot,
    config: SimConfig,
    dir: &Path,
    halt_at: Option<u64>,
) -> Result<(Option<SteadyOutcome>, Option<PathBuf>), String> {
    let Some(env) = snap.steady else {
        return Err(
            "snapshot records no steady-state environment (a closed-system run, or a \
             pre-v2 checkpoint); resume it as a plain route or re-pass the steady flags"
                .to_string(),
        );
    };
    let (lambda, schedule) = (env.lambda, env.config);
    let topo = Mesh::new(snap.n);
    let cadenced = config.checkpoint_every.is_some();
    with_engine_router!(algorithm, snap.n, |router| {
        let mut sim = Sim::restore(&topo, router, config, None, snap).map_err(|e| e.to_string())?;
        let state = snap.protocol.as_ref();
        let (res, last) = if cadenced {
            let mut sink = DirectorySink::new(dir).map_err(|e| e.to_string())?;
            let res = sim.run_steady_checkpointed(schedule, lambda, state, &mut sink, halt_at);
            if let Some(err) = sink.error {
                return Err(err.to_string());
            }
            (res, sink.last_checkpoint().map(Path::to_path_buf))
        } else {
            let mut sink = MemorySink::default();
            (
                sim.run_steady_checkpointed(schedule, lambda, state, &mut sink, halt_at),
                None,
            )
        };
        let rep = finish_steady(res, halt_at.is_some())?;
        Ok((
            rep.map(|r| steady_outcome(algorithm, lambda, schedule, r, sim.report())),
            last,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_traffic::workloads;

    #[test]
    fn all_engine_algorithms_route_a_small_permutation() {
        let pb = workloads::random_permutation(16, 4);
        for algo in [
            Algorithm::DimOrder { k: 64 },
            Algorithm::DimOrderYx { k: 64 },
            Algorithm::AltAdaptive { k: 64 },
            Algorithm::Theorem15 { k: 2 },
            Algorithm::FarthestFirst { k: 64 },
            Algorithm::GreedyUnbounded,
            Algorithm::HotPotato,
            Algorithm::WestFirst { k: 64 },
            Algorithm::BoundedDeflect { k: 64, delta: 2 },
        ] {
            let out = route(algo, &pb);
            assert!(out.completed, "{} failed", out.algorithm);
            assert_eq!(out.delivered, 256);
        }
    }

    #[test]
    fn section6_via_api() {
        let pb = workloads::random_permutation(27, 9);
        let out = route(Algorithm::Section6, &pb);
        assert!(out.completed);
        assert!(out.section6.is_some());
        assert!(out.steps <= 972 * 27);
    }

    #[test]
    fn steady_route_halt_and_resume_is_byte_identical() {
        let schedule = SteadyConfig {
            warmup: 16,
            window: 16,
            windows: 3,
        };
        let pb = workloads::open_bernoulli(8, 0.4, schedule.horizon(), 5);
        let config = || SimConfig {
            admission: mesh_engine::AdmissionPolicy::DeadlineExpiry { ttl: 24 },
            checkpoint_every: Some(8),
            watchdog: Some(64),
            ..SimConfig::default()
        };
        let algo = Algorithm::DimOrder { k: 4 };
        let dir = std::env::temp_dir().join("mesh-api-steady-test");
        let _ = std::fs::remove_dir_all(&dir);

        // Uninterrupted reference run.
        let full = steady_route(algo, &pb, 0.4, schedule, config()).unwrap();
        let full_json = serde_json::to_string(&full).unwrap();

        // Crash mid-soak, then resume from the last checkpoint.
        let (halted, last) =
            steady_route_checkpointed(algo, &pb, 0.4, schedule, config(), &dir, Some(30)).unwrap();
        assert!(halted.is_none(), "halt-at 30 must stop before the horizon");
        let last = last.expect("cadence 8 must leave a checkpoint behind");
        let snap = Snapshot::read_from(&last).unwrap();
        // The snapshot itself carries the steady environment (format v2):
        // the resume re-passes neither lambda nor the schedule.
        let env = snap.steady.expect("steady checkpoints record their env");
        assert_eq!(env.lambda, 0.4);
        assert_eq!(env.config, schedule);
        let (resumed, _) = resume_steady_route(algo, &snap, config(), &dir, None).unwrap();
        let resumed = resumed.expect("resumed run must complete the schedule");
        assert_eq!(serde_json::to_string(&resumed).unwrap(), full_json);

        // A mismatched admission policy is a typed refusal, not divergence.
        let bad = SimConfig {
            admission: mesh_engine::AdmissionPolicy::RejectNew,
            ..config()
        };
        let err = resume_steady_route(algo, &snap, bad, &dir, None).unwrap_err();
        assert!(
            err.contains("admission policy"),
            "expected a typed admission mismatch, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dx_classification() {
        assert!(Algorithm::DimOrder { k: 1 }.is_destination_exchangeable());
        assert!(Algorithm::Theorem15 { k: 1 }.is_destination_exchangeable());
        assert!(!Algorithm::FarthestFirst { k: 1 }.is_destination_exchangeable());
        assert!(!Algorithm::Section6.is_destination_exchangeable());
        // Hot potato is destination-exchangeable but nonminimal — the §5
        // combination that escapes Theorem 14.
        assert!(Algorithm::HotPotato.is_destination_exchangeable());
    }
}
