//! Per-node protocol layers above the network: the hook a reliable
//! transport (sequence numbers, ACKs, retransmission) attaches by.
//!
//! Where [`StepHook`](crate::hook::StepHook) is the §3 *adversary* interface
//! (it observes the schedule mid-step and may exchange destinations), a
//! [`ProtocolHook`] is an *endpoint* interface: it runs after each step
//! completes, sees which packets were delivered or destroyed, and reacts by
//! [`spawn`](crate::Sim::spawn)ing new packets — ACKs from destinations,
//! retransmissions from sources. The engine stays ignorant of payload
//! semantics; the protocol stays ignorant of queues and scheduling. Drive
//! the pair with [`Sim::run_with_protocol`](crate::Sim::run_with_protocol).

use crate::router::Router;
use crate::sim::Sim;
use mesh_topo::Topology;
use mesh_traffic::PacketId;

/// What one completed step did, from a protocol endpoint's point of view.
#[derive(Clone, Debug, Default)]
pub struct StepEvents {
    /// The (1-based) step that just completed.
    pub step: u64,
    /// Packets that reached their destination this step, in deterministic
    /// schedule order. Includes trivially-delivered (src == dst) packets.
    pub delivered: Vec<PacketId>,
    /// Packets destroyed by lossy links this step.
    pub lost: Vec<PacketId>,
}

/// The protocol's verdict after processing a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolControl {
    /// Keep stepping. `outstanding` is the number of *released* payloads
    /// still awaiting acknowledgement — the quantity the protocol-aware
    /// watchdog keys on: while it is positive, retransmissions keep the
    /// network active forever, so only a delivery-starvation window counts
    /// as a wedge (payloads not yet handed to the transport must not be
    /// counted, or a long-idle schedule would read as starvation).
    Continue { outstanding: usize },
    /// Every payload is delivered and acknowledged; stop the run.
    Done,
}

/// An end-to-end protocol layered over the mesh.
///
/// Called once after every simulated step with that step's events. The hook
/// may spawn new packets into `sim` (ACKs, retransmissions) and must report
/// whether the protocol is finished. Determinism contract: react only to
/// `events`, `sim` state, and internally-seeded randomness — never to wall
/// clocks or iteration order of unordered containers.
pub trait ProtocolHook {
    fn on_step<T: Topology, R: Router>(
        &mut self,
        sim: &mut Sim<'_, T, R>,
        events: &StepEvents,
    ) -> ProtocolControl;
}
