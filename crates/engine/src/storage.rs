//! Flat packet and queue storage: the [`PacketStore`] struct-of-arrays
//! packet table and the [`NodeGrid`] flat-slab queue arena.
//!
//! Everything the step pipeline reads or writes about packets and queues
//! lives here, behind named accessors instead of ad-hoc index math. Queue
//! cells live inline in one contiguous node-major slab (see DESIGN.md
//! §14), and the grid keeps an incremental per-node **occupancy bitmask**
//! (`occ`, which slots are non-empty) and **occupancy index** (`load`,
//! how many packets), so "how full is this node" — the question the
//! route, rebuild, and diagnostics paths ask constantly — is O(1), and
//! [`Sim::packets_at`](crate::sim::Sim::packets_at) answers straight from
//! the node's own slab region without touching the packet table.

use crate::queue::{QueueArch, QueueKind};
use mesh_topo::Coord;
use mesh_traffic::{PacketId, RoutingProblem};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Where a packet currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loc {
    /// Not yet injected (dynamic problems, or waiting for queue space).
    Pending,
    /// In some queue of the node at the given coordinate.
    At(Coord),
    /// Delivered and removed from the network.
    Delivered,
    /// Destroyed by a lossy link: transmitted, never arrived, gone for good.
    /// Only the reliable-transport layer can recover the payload (by
    /// spawning a retransmission as a fresh packet).
    Lost,
    /// Rejected by admission control before ever entering the network
    /// (open-system overload: `RejectNew` / `DropOldestDeferred`).
    Shed,
    /// Expired: its deadline (TTL) passed while it was staged at the
    /// edge or queued inside the network, and it was dropped there
    /// (`DeadlineExpiry`).
    Expired,
}

/// Sentinel in `delivered_at` for packets still in flight.
pub(crate) const NOT_DELIVERED: u64 = u64::MAX;

/// The packet table: one struct-of-arrays entry per packet, indexed by
/// [`PacketId`]. Dense, append-only (protocol layers [`push`](Self::push)
/// retransmissions at runtime), never reordered.
pub(crate) struct PacketStore {
    pub(crate) src: Vec<Coord>,
    pub(crate) dst: Vec<Coord>,
    pub(crate) state: Vec<u64>,
    pub(crate) inject_at: Vec<u64>,
    pub(crate) loc: Vec<Loc>,
    pub(crate) queue_of: Vec<QueueKind>,
    pub(crate) delivered_at: Vec<u64>,
    pub(crate) hops: Vec<u32>,
    /// Cached profitable mask (`DirSet` bits) of the packet at its current
    /// location — the byte the bit-packed fast path reads instead of
    /// recomputing `topo.profitable(loc, dst)` per packet per step. Derived
    /// state, never serialized: maintained at injection, on every accepted
    /// move, after adversary exchanges, and rebuilt on snapshot restore.
    /// Meaningless (zero) while a packet is outside the network.
    pub(crate) mask: Vec<u8>,
    /// Injection cursor: packet ids sorted by `inject_at` (stable in id for
    /// ties); `inject_order[inject_cursor..]` is the uninjected tail.
    pub(crate) inject_order: Vec<PacketId>,
    pub(crate) inject_cursor: usize,
}

impl PacketStore {
    pub(crate) fn new(problem: &RoutingProblem) -> Self {
        let np = problem.len();
        let mut store = PacketStore {
            src: problem.packets.iter().map(|p| p.src).collect(),
            dst: problem.packets.iter().map(|p| p.dst).collect(),
            state: problem.packets.iter().map(|p| p.state).collect(),
            inject_at: problem.packets.iter().map(|p| p.inject_at).collect(),
            loc: vec![Loc::Pending; np],
            queue_of: vec![QueueKind::Central; np],
            delivered_at: vec![NOT_DELIVERED; np],
            hops: vec![0; np],
            mask: vec![0; np],
            inject_order: (0..np as u32).map(PacketId).collect(),
            inject_cursor: 0,
        };
        let inject_at = &store.inject_at;
        store.inject_order.sort_by_key(|p| inject_at[p.index()]);
        store
    }

    /// Total packets ever created (original problem plus runtime spawns).
    pub(crate) fn len(&self) -> usize {
        self.src.len()
    }

    /// Appends a fresh packet record, keeping the uninjected tail of
    /// `inject_order` sorted by `inject_at` (ties resolve in spawn order,
    /// matching the constructor's stable sort by id). Returns its id.
    pub(crate) fn push(&mut self, src: Coord, dst: Coord, inject_at: u64) -> PacketId {
        let id = PacketId(self.src.len() as u32);
        self.src.push(src);
        self.dst.push(dst);
        self.state.push(0);
        self.inject_at.push(inject_at);
        self.loc.push(Loc::Pending);
        self.queue_of.push(QueueKind::Central);
        self.delivered_at.push(NOT_DELIVERED);
        self.hops.push(0);
        self.mask.push(0);
        let inject_at_of = &self.inject_at;
        let tail = &self.inject_order[self.inject_cursor..];
        let at =
            self.inject_cursor + tail.partition_point(|p| inject_at_of[p.index()] <= inject_at);
        self.inject_order.insert(at, id);
        id
    }

    /// True when every scheduled injection has been staged (packets may
    /// still wait in per-node pending queues — see
    /// [`NodeGrid::has_pending`]).
    pub(crate) fn cursor_exhausted(&self) -> bool {
        self.inject_cursor >= self.inject_order.len()
    }

    /// Packets whose injection time has arrived so far (staged, entered,
    /// delivered, shed, or expired — everything past the cursor).
    pub(crate) fn offered(&self) -> usize {
        self.inject_cursor
    }
}

/// Filler id for unused arena cells; written on construction and after
/// compaction shifts, never read back.
const EMPTY_CELL: PacketId = PacketId(u32::MAX);

/// Per-node queue storage as a **flat-slab queue arena**: every queue's
/// cells live inline in one contiguous node-major allocation, so a move
/// is a couple of word writes into a region the route/accept paths have
/// already pulled into cache — no per-queue heap `Vec`s, no pointer
/// chasing. Alongside the slab the grid keeps per-(node, slot) lengths,
/// a per-node occupancy *bitmask* (which slots are non-empty) and the
/// existing per-node load index, plus the staging and bookkeeping the
/// step pipeline needs: pending (admission-controlled) injections, the
/// active-node worklist, and the peak-load congestion map.
pub(crate) struct NodeGrid {
    n: u32,
    arch: QueueArch,
    slots: usize,
    /// The queue arena. Node `ni` owns `slab[ni * stride ..][.. stride]`;
    /// within that region slot `s` owns the `caps[s]` cells starting at
    /// `slot_off[s]`, of which the first `lens[ni * slots + s]` are live,
    /// oldest first (FIFO order identical to the former per-queue `Vec`s).
    slab: Vec<PacketId>,
    /// Per-(node, slot) queue lengths, node-major slot-minor. The
    /// `queue_lens` slice a router's accept policy receives points
    /// straight into this array.
    lens: Vec<u32>,
    /// Inline capacity of each slot (identical for every node). Bounded
    /// queues hold exactly `k` cells; the unbounded injection slot starts
    /// at `k` and [`grow_slot`](Self::grow_slot) doubles it on demand.
    caps: [u32; 5],
    /// Cell offset of each slot within a node's region (prefix sums of
    /// `caps[..slots]`).
    slot_off: [u32; 5],
    /// Cells per node: `caps[..slots]` summed.
    stride: u32,
    /// Occupancy bitmask: bit `s` of `occ[ni]` is set iff slot `s` of
    /// node `ni` is non-empty. Lets the hot paths enumerate a node's
    /// packets by trailing-zeros walk instead of scanning every slot.
    occ: Vec<u8>,
    /// Occupancy index: packets currently queued at each node, maintained
    /// incrementally by [`push`](Self::push)/[`remove`](Self::remove).
    load: Vec<u32>,
    /// Packets staged for injection at a node, held outside the network by
    /// admission control until the origin queue has room.
    pub(crate) pending: HashMap<u32, VecDeque<PacketId>>,
    /// Worklist of nodes that may hold or receive packets this step.
    active: Vec<u32>,
    in_active: Vec<bool>,
    /// Per-node all-time peak occupancy (congestion map).
    pub(crate) peak_load: Vec<u16>,
}

/// Slab geometry for a capacity vector: per-slot cell offsets and the
/// per-node stride.
fn geometry(caps: &[u32; 5], slots: usize) -> ([u32; 5], u32) {
    let mut slot_off = [0u32; 5];
    let mut stride = 0u32;
    for s in 0..slots {
        slot_off[s] = stride;
        stride += caps[s];
    }
    (slot_off, stride)
}

impl NodeGrid {
    pub(crate) fn new(n: u32, arch: QueueArch) -> Self {
        let nodes = (n * n) as usize;
        let slots = arch.num_slots();
        let mut caps = [0u32; 5];
        for (s, cap) in caps.iter_mut().enumerate().take(slots) {
            *cap = arch.initial_slot_cap(s);
        }
        let (slot_off, stride) = geometry(&caps, slots);
        NodeGrid {
            n,
            arch,
            slots,
            slab: vec![EMPTY_CELL; nodes * stride as usize],
            lens: vec![0; nodes * slots],
            caps,
            slot_off,
            stride,
            occ: vec![0; nodes],
            load: vec![0; nodes],
            pending: HashMap::new(),
            active: Vec::new(),
            in_active: vec![false; nodes],
            peak_load: vec![0; nodes],
        }
    }

    /// Base cell index of `(ni, slot)`'s queue in the slab.
    #[inline]
    fn cell_base(&self, ni: usize, slot: usize) -> usize {
        ni * self.stride as usize + self.slot_off[slot] as usize
    }

    /// Rebuilds the slab with a doubled capacity for `slot`. Only the
    /// unbounded injection slot ever grows in practice (bounded slots are
    /// capacity-checked before every push by the accept machinery), and
    /// doubling makes the rebuild cost amortized O(1) per staged packet.
    /// Never called while [`GridRaw`] pointers are live: all pushes happen
    /// coordinator-side (injection precedes the tiled step's shared frame;
    /// arrival commits run while workers are parked at a barrier, and
    /// workers only dequeue).
    #[cold]
    fn grow_slot(&mut self, slot: usize) {
        let mut caps = self.caps;
        caps[slot] = (caps[slot] * 2).max(1);
        let (slot_off, stride) = geometry(&caps, self.slots);
        let mut slab = vec![EMPTY_CELL; self.nodes() * stride as usize];
        for ni in 0..self.nodes() {
            for (s, &off) in slot_off.iter().enumerate().take(self.slots) {
                let len = self.lens[ni * self.slots + s] as usize;
                let src = self.cell_base(ni, s);
                let dst = ni * stride as usize + off as usize;
                slab[dst..dst + len].copy_from_slice(&self.slab[src..src + len]);
            }
        }
        self.slab = slab;
        self.caps = caps;
        self.slot_off = slot_off;
        self.stride = stride;
    }

    #[inline]
    pub(crate) fn n(&self) -> u32 {
        self.n
    }

    #[inline]
    pub(crate) fn arch(&self) -> QueueArch {
        self.arch
    }

    #[inline]
    pub(crate) fn slots(&self) -> usize {
        self.slots
    }

    #[inline]
    pub(crate) fn nodes(&self) -> usize {
        (self.n * self.n) as usize
    }

    #[inline]
    pub(crate) fn node_index(&self, c: Coord) -> usize {
        (c.y * self.n + c.x) as usize
    }

    #[inline]
    pub(crate) fn coord_of(&self, ni: usize) -> Coord {
        Coord::new(ni as u32 % self.n, ni as u32 / self.n)
    }

    /// The [`QueueKind`] stored at a slot index under this architecture.
    #[inline]
    pub(crate) fn slot_kind(&self, slot: usize) -> QueueKind {
        self.arch.slot_kind(slot)
    }

    #[inline]
    pub(crate) fn queue(&self, ni: usize, slot: usize) -> &[PacketId] {
        let base = self.cell_base(ni, slot);
        &self.slab[base..base + self.lens[ni * self.slots + slot] as usize]
    }

    #[inline]
    pub(crate) fn queue_len(&self, ni: usize, slot: usize) -> usize {
        self.lens[ni * self.slots + slot] as usize
    }

    /// Per-slot queue lengths of a node, as a slice straight into the
    /// arena's length array — what the accept machinery hands to router
    /// policies without copying.
    #[inline]
    pub(crate) fn queue_lens_of(&self, ni: usize) -> &[u32] {
        &self.lens[ni * self.slots..(ni + 1) * self.slots]
    }

    /// Occupancy bitmask of a node: bit `s` set iff slot `s` is non-empty.
    #[inline]
    pub(crate) fn occ_mask(&self, ni: usize) -> u8 {
        self.occ[ni]
    }

    /// Appends a packet to a node's queue: two word writes plus a bitmask
    /// set in the common case (the slab only rebuilds when the unbounded
    /// injection slot outgrows its inline cells).
    pub(crate) fn push(&mut self, c: Coord, kind: QueueKind, pid: PacketId) {
        let ni = self.node_index(c);
        let s = kind.slot();
        let len = self.lens[ni * self.slots + s];
        if len == self.caps[s] {
            self.grow_slot(s);
        }
        let base = self.cell_base(ni, s);
        self.slab[base + len as usize] = pid;
        self.lens[ni * self.slots + s] = len + 1;
        self.occ[ni] |= 1 << s;
        self.load[ni] += 1;
    }

    /// Removes a packet from a node's queue (position scan — queues are
    /// short by construction) by shifting the younger cells down one,
    /// updating the length, bitmask, and occupancy index. Panics with
    /// `what` if the packet is not there: that is an engine bug, not a
    /// runtime condition.
    pub(crate) fn remove(&mut self, c: Coord, kind: QueueKind, pid: PacketId, what: &str) {
        let ni = self.node_index(c);
        let s = kind.slot();
        let len = self.lens[ni * self.slots + s] as usize;
        let base = self.cell_base(ni, s);
        let region = &mut self.slab[base..base + len];
        let pos = region.iter().position(|&p| p == pid).expect(what);
        region.copy_within(pos + 1.., pos);
        region[len - 1] = EMPTY_CELL;
        self.lens[ni * self.slots + s] = (len - 1) as u32;
        if len == 1 {
            self.occ[ni] &= !(1 << s);
        }
        self.load[ni] -= 1;
    }

    /// Removes every queued packet whose injection step is `ttl` or more
    /// steps in the past, in deterministic (node, slot, position) order,
    /// invoking `on_expired` for each — an in-place compacting sweep over
    /// each occupied slot, identical in survivor order to the former
    /// per-queue `Vec::retain`. Only the `DeadlineExpiry` admission policy
    /// pays it, and the occupancy bitmask skips empty nodes and slots.
    pub(crate) fn expire_queued(
        &mut self,
        t: u64,
        ttl: u64,
        inject_at: &[u64],
        mut on_expired: impl FnMut(PacketId),
    ) {
        let slots = self.slots;
        for ni in 0..self.nodes() {
            let mut o = self.occ[ni];
            while o != 0 {
                let s = o.trailing_zeros() as usize;
                o &= o - 1;
                let len = self.lens[ni * slots + s] as usize;
                let base = self.cell_base(ni, s);
                let mut w = 0usize;
                for r in 0..len {
                    let pid = self.slab[base + r];
                    if t >= inject_at[pid.index()].saturating_add(ttl) {
                        on_expired(pid);
                    } else {
                        self.slab[base + w] = pid;
                        w += 1;
                    }
                }
                if w < len {
                    self.slab[base + w..base + len].fill(EMPTY_CELL);
                    self.lens[ni * slots + s] = w as u32;
                    self.load[ni] -= (len - w) as u32;
                    if w == 0 {
                        self.occ[ni] &= !(1 << s);
                    }
                }
            }
        }
    }

    /// Total packets currently in the node's queues (excluding pending) —
    /// O(1) from the occupancy index.
    #[inline]
    pub(crate) fn node_load(&self, ni: usize) -> u32 {
        self.load[ni]
    }

    /// The non-empty queues of a node in slot order, as `(slot, contents)`
    /// slices into the slab — a zero-allocation trailing-zeros walk of the
    /// occupancy bitmask.
    #[inline]
    pub(crate) fn node_queues(&self, ni: usize) -> impl Iterator<Item = (usize, &[PacketId])> + '_ {
        let mut o = self.occ[ni];
        std::iter::from_fn(move || {
            if o == 0 {
                return None;
            }
            let s = o.trailing_zeros() as usize;
            o &= o - 1;
            Some((s, self.queue(ni, s)))
        })
    }

    /// The packets currently at a node, over all queues in slot order —
    /// answered straight from the node's slab region, no packet-table
    /// scan, no allocation.
    pub(crate) fn packets_at(&self, c: Coord) -> impl Iterator<Item = PacketId> + '_ {
        let ni = self.node_index(c);
        self.node_queues(ni).flat_map(|(_, q)| q.iter().copied())
    }

    /// The `i`-th packet at node `ni` in flattened slot order — the same
    /// order `build_views`/`build_packed` enumerate, so an index returned
    /// by an outqueue policy resolves to its packet without materializing
    /// per-packet views. At most four lookups happen per node per step.
    #[inline]
    pub(crate) fn nth_packet(&self, ni: usize, mut i: usize) -> PacketId {
        let mut o = self.occ[ni];
        while o != 0 {
            let s = o.trailing_zeros() as usize;
            o &= o - 1;
            let len = self.lens[ni * self.slots + s] as usize;
            if i < len {
                return self.slab[self.cell_base(ni, s) + i];
            }
            i -= len;
        }
        panic!("nth_packet index out of range at node {ni}");
    }

    pub(crate) fn mark_active(&mut self, ni: usize) {
        if !self.in_active[ni] {
            self.in_active[ni] = true;
            self.active.push(ni as u32);
        }
    }

    /// Moves the active worklist into `out` (clearing membership flags),
    /// leaving the grid's list empty for the step to rebuild.
    pub(crate) fn drain_active_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        std::mem::swap(&mut self.active, out);
        for &ni in out.iter() {
            self.in_active[ni as usize] = false;
        }
    }

    #[inline]
    pub(crate) fn active_len(&self) -> usize {
        self.active.len()
    }

    #[inline]
    pub(crate) fn active_at(&self, idx: usize) -> usize {
        self.active[idx] as usize
    }

    /// Pops the next pending (admission-deferred) packet of a node,
    /// dropping the node's entry once drained. `None` means nothing is
    /// staged there.
    pub(crate) fn pop_pending(&mut self, ni: u32) -> Option<PacketId> {
        let q = self.pending.get_mut(&ni)?;
        match q.pop_front() {
            Some(pid) => {
                if q.is_empty() {
                    self.pending.remove(&ni);
                }
                Some(pid)
            }
            None => {
                self.pending.remove(&ni);
                None
            }
        }
    }

    /// Pops the *newest* pending packet of a node (freshest-first
    /// admission, used by `DeadlineExpiry`): under sustained overload a
    /// FIFO edge admits only packets whose deadline budget is already
    /// spent waiting, so everything expires mid-flight — admitting the
    /// freshest packet instead gives it its full TTL to cross the mesh
    /// while stale backlog expires at the edge.
    pub(crate) fn pop_pending_back(&mut self, ni: u32) -> Option<PacketId> {
        let q = self.pending.get_mut(&ni)?;
        match q.pop_back() {
            Some(pid) => {
                if q.is_empty() {
                    self.pending.remove(&ni);
                }
                Some(pid)
            }
            None => {
                self.pending.remove(&ni);
                None
            }
        }
    }

    #[inline]
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Packets currently staged at injection edges (admission-deferred),
    /// over all nodes.
    pub(crate) fn staged_total(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum()
    }

    /// Records a node's end-of-step load into the congestion map.
    #[inline]
    pub(crate) fn note_peak(&mut self, ni: usize, load: u16) {
        if load > self.peak_load[ni] {
            self.peak_load[ni] = load;
        }
    }

    /// Every queue's live contents in node-major, slot-minor order (empty
    /// queues included, so positions line up with the flat length array) —
    /// a zero-allocation walk of the slab; the snapshot path concatenates
    /// it into the dense v3 form.
    pub(crate) fn export_queues(&self) -> impl Iterator<Item = &[PacketId]> + '_ {
        (0..self.nodes() * self.slots).map(move |qi| self.queue(qi / self.slots, qi % self.slots))
    }

    /// Clones the active worklist *in order* for a snapshot. The order is
    /// part of the engine's deterministic state: the route phase walks it
    /// verbatim, so restoring a permuted list would reorder schedules and
    /// break bit-identical resumption.
    pub(crate) fn export_active(&self) -> Vec<u32> {
        self.active.clone()
    }

    /// Rebuilds a grid from snapshotted parts — `slab` is the dense
    /// concatenation of every queue's contents in (node, slot, position)
    /// order and `lens` the per-(node, slot) cut points — re-deriving the
    /// occupancy bitmask, load index, and active-membership flags and
    /// validating the internal invariants a live grid maintains. Errors
    /// describe the corruption; they never panic. Slot capacities widen to
    /// fit whatever the snapshot holds, so an over-capacity bounded queue
    /// still loads here and is then *reported* (not panicked on) by the
    /// snapshot layer's cross-reference validation.
    pub(crate) fn from_parts(
        n: u32,
        arch: QueueArch,
        dense: &[PacketId],
        lens: Vec<u32>,
        pending: &[(u32, Vec<PacketId>)],
        active: &[u32],
        peak_load: Vec<u16>,
    ) -> Result<NodeGrid, String> {
        let nodes = (n * n) as usize;
        let slots = arch.num_slots();
        if lens.len() != nodes * slots {
            return Err(format!(
                "queue table has {} slots, expected {} ({} nodes x {} slots)",
                lens.len(),
                nodes * slots,
                nodes,
                slots
            ));
        }
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        if total != dense.len() as u64 {
            return Err(format!(
                "queue contents hold {} packets but lengths sum to {total}",
                dense.len()
            ));
        }
        if peak_load.len() != nodes {
            return Err(format!(
                "peak-load map has {} entries, expected {nodes}",
                peak_load.len()
            ));
        }
        let mut caps = [0u32; 5];
        for (s, cap) in caps.iter_mut().enumerate().take(slots) {
            *cap = arch.initial_slot_cap(s);
        }
        for (li, &len) in lens.iter().enumerate() {
            let s = li % slots;
            caps[s] = caps[s].max(len);
        }
        let (slot_off, stride) = geometry(&caps, slots);
        let mut slab = vec![EMPTY_CELL; nodes * stride as usize];
        let mut occ = vec![0u8; nodes];
        let mut load = vec![0u32; nodes];
        let mut cursor = 0usize;
        for ni in 0..nodes {
            for s in 0..slots {
                let len = lens[ni * slots + s] as usize;
                let dst = ni * stride as usize + slot_off[s] as usize;
                slab[dst..dst + len].copy_from_slice(&dense[cursor..cursor + len]);
                cursor += len;
                if len > 0 {
                    occ[ni] |= 1 << s;
                    load[ni] += len as u32;
                }
            }
        }
        let mut pending_map: HashMap<u32, VecDeque<PacketId>> = HashMap::new();
        for (ni, pids) in pending {
            if *ni as usize >= nodes {
                return Err(format!("pending bucket for out-of-grid node {ni}"));
            }
            if pids.is_empty() {
                // A live grid drops a node's bucket when it drains.
                return Err(format!("empty pending bucket at node {ni}"));
            }
            if pending_map
                .insert(*ni, pids.iter().copied().collect())
                .is_some()
            {
                return Err(format!("duplicate pending bucket for node {ni}"));
            }
        }
        let mut in_active = vec![false; nodes];
        for &ni in active {
            if ni as usize >= nodes {
                return Err(format!("active worklist names out-of-grid node {ni}"));
            }
            if in_active[ni as usize] {
                return Err(format!("node {ni} appears twice in the active worklist"));
            }
            in_active[ni as usize] = true;
        }
        // The worklist's *set* is determined: exactly the nodes holding or
        // awaiting packets (its order is history-dependent and preserved
        // verbatim above).
        for ni in 0..nodes {
            let expect = load[ni] > 0 || pending_map.contains_key(&(ni as u32));
            if expect != in_active[ni] {
                return Err(format!(
                    "active worklist disagrees with occupancy at node {ni} \
                     (load {}, pending {}, listed {})",
                    load[ni],
                    pending_map.contains_key(&(ni as u32)),
                    in_active[ni]
                ));
            }
        }
        Ok(NodeGrid {
            n,
            arch,
            slots,
            slab,
            lens,
            caps,
            slot_off,
            stride,
            occ,
            load,
            pending: pending_map,
            active: active.to_vec(),
            in_active,
            peak_load,
        })
    }

    /// Raw base pointers into the queue arena for the tile-sharded step:
    /// workers dequeue packets of their own (disjoint) node sets through
    /// these while the coordinator is parked at a barrier. Everything is a
    /// scalar array into the slab — no per-queue `Vec` indirection — and
    /// the slab never reallocates while these are live, because only the
    /// coordinator pushes (see [`grow_slot`](Self::grow_slot)).
    pub(crate) fn raw(&mut self) -> GridRaw {
        GridRaw {
            slab: self.slab.as_mut_ptr(),
            lens: self.lens.as_mut_ptr(),
            load: self.load.as_mut_ptr(),
            occ: self.occ.as_mut_ptr(),
            slots: self.slots,
            stride: self.stride,
            slot_off: self.slot_off,
        }
    }
}

/// Raw parts of a [`NodeGrid`]'s queue arena (see [`NodeGrid::raw`]):
/// scalar base pointers plus the slab geometry needed to locate any
/// `(node, slot)` region without touching the grid itself.
#[derive(Clone, Copy)]
pub(crate) struct GridRaw {
    pub(crate) slab: *mut PacketId,
    pub(crate) lens: *mut u32,
    pub(crate) load: *mut u32,
    pub(crate) occ: *mut u8,
    pub(crate) slots: usize,
    pub(crate) stride: u32,
    pub(crate) slot_off: [u32; 5],
}

#[cfg(test)]
mod arena_tests {
    use super::*;

    /// Deterministic 64-bit LCG (`Date`/`rand` stay out of the engine's
    /// dev-deps); top bits only.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// Asserts the arena agrees with a reference `Vec<Vec<_>>` grid on
    /// every observable: per-queue contents, lengths, the occupancy
    /// bitmask, the load index, and all four read paths (`queue`,
    /// `node_queues`, `packets_at`, `nth_packet`, `export_queues`).
    fn assert_matches(grid: &NodeGrid, shadow: &[Vec<PacketId>]) {
        let slots = grid.slots();
        let mut export = grid.export_queues();
        for ni in 0..grid.nodes() {
            let mut occ = 0u8;
            let mut load = 0u32;
            for s in 0..slots {
                let sq = &shadow[ni * slots + s];
                assert_eq!(grid.queue(ni, s), &sq[..], "queue ({ni},{s})");
                assert_eq!(grid.queue_len(ni, s), sq.len(), "len ({ni},{s})");
                assert_eq!(grid.queue_lens_of(ni)[s], sq.len() as u32);
                assert_eq!(export.next().unwrap(), &sq[..], "export ({ni},{s})");
                if !sq.is_empty() {
                    occ |= 1 << s;
                    load += sq.len() as u32;
                }
            }
            assert_eq!(grid.occ_mask(ni), occ, "occ bitmask at node {ni}");
            assert_eq!(grid.node_load(ni), load, "load index at node {ni}");
            let flat: Vec<PacketId> = shadow[ni * slots..(ni + 1) * slots]
                .iter()
                .flatten()
                .copied()
                .collect();
            let c = grid.coord_of(ni);
            assert_eq!(grid.packets_at(c).collect::<Vec<_>>(), flat);
            let walked: Vec<PacketId> = grid
                .node_queues(ni)
                .flat_map(|(_, q)| q.iter().copied())
                .collect();
            assert_eq!(walked, flat, "node_queues at node {ni}");
            for (i, &pid) in flat.iter().enumerate() {
                assert_eq!(grid.nth_packet(ni, i), pid, "nth_packet({ni},{i})");
            }
        }
        assert!(export.next().is_none());
    }

    /// Op-level differential: a random push/remove/expire stream against
    /// the reference grid, for both queue architectures. Pushes past a
    /// slot's inline capacity force `grow_slot` rebuilds mid-stream; the
    /// shadow must survive every one of them.
    #[test]
    fn arena_matches_reference_under_random_ops() {
        for (arch, seed) in [
            (QueueArch::Central { k: 2 }, 11u64),
            (QueueArch::PerInlink { k: 1 }, 12),
            (QueueArch::PerInlink { k: 3 }, 13),
        ] {
            let n = 4u32;
            let mut grid = NodeGrid::new(n, arch);
            let slots = grid.slots();
            let mut shadow: Vec<Vec<PacketId>> = vec![Vec::new(); grid.nodes() * slots];
            let mut inject_at: Vec<u64> = Vec::new();
            let mut rng = seed;
            for t in 0..4_000u64 {
                match lcg(&mut rng) % 10 {
                    0..=5 => {
                        let ni = (lcg(&mut rng) as usize) % grid.nodes();
                        let s = (lcg(&mut rng) as usize) % slots;
                        let pid = PacketId(inject_at.len() as u32);
                        inject_at.push(t);
                        grid.push(grid.coord_of(ni), grid.slot_kind(s), pid);
                        shadow[ni * slots + s].push(pid);
                    }
                    6..=8 => {
                        let occupied: Vec<usize> = (0..shadow.len())
                            .filter(|&i| !shadow[i].is_empty())
                            .collect();
                        if occupied.is_empty() {
                            continue;
                        }
                        let qi = occupied[(lcg(&mut rng) as usize) % occupied.len()];
                        let pos = (lcg(&mut rng) as usize) % shadow[qi].len();
                        let pid = shadow[qi].remove(pos);
                        grid.remove(
                            grid.coord_of(qi / slots),
                            grid.slot_kind(qi % slots),
                            pid,
                            "op-test remove",
                        );
                    }
                    _ => {
                        let ttl = 1 + lcg(&mut rng) % 16;
                        let mut expected = Vec::new();
                        for q in shadow.iter_mut() {
                            q.retain(|&pid| {
                                let gone = t >= inject_at[pid.index()].saturating_add(ttl);
                                if gone {
                                    expected.push(pid);
                                }
                                !gone
                            });
                        }
                        let mut got = Vec::new();
                        grid.expire_queued(t, ttl, &inject_at, |pid| got.push(pid));
                        assert_eq!(got, expected, "expiry order ({arch:?}, t={t})");
                    }
                }
                assert_matches(&grid, &shadow);
            }
        }
    }

    /// Growth keeps FIFO order across the whole slab, not just the grown
    /// slot: neighbors' queues must be byte-identical after a rebuild.
    #[test]
    fn grow_slot_preserves_all_queues() {
        let mut grid = NodeGrid::new(3, QueueArch::PerInlink { k: 1 });
        let slots = grid.slots();
        let mut shadow: Vec<Vec<PacketId>> = vec![Vec::new(); grid.nodes() * slots];
        // Seed every queue of every node with one packet...
        let mut next = 0u32;
        for ni in 0..grid.nodes() {
            for s in 0..slots {
                let pid = PacketId(next);
                next += 1;
                grid.push(grid.coord_of(ni), grid.slot_kind(s), pid);
                shadow[ni * slots + s].push(pid);
            }
        }
        // ...then overflow one node's injection slot far past its inline
        // capacity, forcing repeated doublings.
        let inj = slots - 1;
        for _ in 0..40 {
            let pid = PacketId(next);
            next += 1;
            grid.push(grid.coord_of(4), grid.slot_kind(inj), pid);
            shadow[4 * slots + inj].push(pid);
        }
        assert_matches(&grid, &shadow);
    }
}
