//! Flat packet and queue storage: the [`PacketStore`] struct-of-arrays
//! packet table and the [`NodeGrid`] node-major queue layout.
//!
//! Everything the step pipeline reads or writes about packets and queues
//! lives here, behind named accessors instead of ad-hoc index math. The
//! grid keeps an incremental per-node **occupancy index** (`load`), so
//! "how full is this node" — the question the route, rebuild, and
//! diagnostics paths ask constantly — is O(1), and
//! [`Sim::packets_at`](crate::sim::Sim::packets_at) answers straight from
//! the node's own slots without touching the packet table.

use crate::queue::{QueueArch, QueueKind};
use mesh_topo::{Coord, Dir};
use mesh_traffic::{PacketId, RoutingProblem};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Where a packet currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loc {
    /// Not yet injected (dynamic problems, or waiting for queue space).
    Pending,
    /// In some queue of the node at the given coordinate.
    At(Coord),
    /// Delivered and removed from the network.
    Delivered,
    /// Destroyed by a lossy link: transmitted, never arrived, gone for good.
    /// Only the reliable-transport layer can recover the payload (by
    /// spawning a retransmission as a fresh packet).
    Lost,
    /// Rejected by admission control before ever entering the network
    /// (open-system overload: `RejectNew` / `DropOldestDeferred`).
    Shed,
    /// Expired: its deadline (TTL) passed while it was staged at the
    /// edge or queued inside the network, and it was dropped there
    /// (`DeadlineExpiry`).
    Expired,
}

/// Sentinel in `delivered_at` for packets still in flight.
pub(crate) const NOT_DELIVERED: u64 = u64::MAX;

/// The packet table: one struct-of-arrays entry per packet, indexed by
/// [`PacketId`]. Dense, append-only (protocol layers [`push`](Self::push)
/// retransmissions at runtime), never reordered.
pub(crate) struct PacketStore {
    pub(crate) src: Vec<Coord>,
    pub(crate) dst: Vec<Coord>,
    pub(crate) state: Vec<u64>,
    pub(crate) inject_at: Vec<u64>,
    pub(crate) loc: Vec<Loc>,
    pub(crate) queue_of: Vec<QueueKind>,
    pub(crate) delivered_at: Vec<u64>,
    pub(crate) hops: Vec<u32>,
    /// Cached profitable mask (`DirSet` bits) of the packet at its current
    /// location — the byte the bit-packed fast path reads instead of
    /// recomputing `topo.profitable(loc, dst)` per packet per step. Derived
    /// state, never serialized: maintained at injection, on every accepted
    /// move, after adversary exchanges, and rebuilt on snapshot restore.
    /// Meaningless (zero) while a packet is outside the network.
    pub(crate) mask: Vec<u8>,
    /// Injection cursor: packet ids sorted by `inject_at` (stable in id for
    /// ties); `inject_order[inject_cursor..]` is the uninjected tail.
    pub(crate) inject_order: Vec<PacketId>,
    pub(crate) inject_cursor: usize,
}

impl PacketStore {
    pub(crate) fn new(problem: &RoutingProblem) -> Self {
        let np = problem.len();
        let mut store = PacketStore {
            src: problem.packets.iter().map(|p| p.src).collect(),
            dst: problem.packets.iter().map(|p| p.dst).collect(),
            state: problem.packets.iter().map(|p| p.state).collect(),
            inject_at: problem.packets.iter().map(|p| p.inject_at).collect(),
            loc: vec![Loc::Pending; np],
            queue_of: vec![QueueKind::Central; np],
            delivered_at: vec![NOT_DELIVERED; np],
            hops: vec![0; np],
            mask: vec![0; np],
            inject_order: (0..np as u32).map(PacketId).collect(),
            inject_cursor: 0,
        };
        let inject_at = &store.inject_at;
        store.inject_order.sort_by_key(|p| inject_at[p.index()]);
        store
    }

    /// Total packets ever created (original problem plus runtime spawns).
    pub(crate) fn len(&self) -> usize {
        self.src.len()
    }

    /// Appends a fresh packet record, keeping the uninjected tail of
    /// `inject_order` sorted by `inject_at` (ties resolve in spawn order,
    /// matching the constructor's stable sort by id). Returns its id.
    pub(crate) fn push(&mut self, src: Coord, dst: Coord, inject_at: u64) -> PacketId {
        let id = PacketId(self.src.len() as u32);
        self.src.push(src);
        self.dst.push(dst);
        self.state.push(0);
        self.inject_at.push(inject_at);
        self.loc.push(Loc::Pending);
        self.queue_of.push(QueueKind::Central);
        self.delivered_at.push(NOT_DELIVERED);
        self.hops.push(0);
        self.mask.push(0);
        let inject_at_of = &self.inject_at;
        let tail = &self.inject_order[self.inject_cursor..];
        let at =
            self.inject_cursor + tail.partition_point(|p| inject_at_of[p.index()] <= inject_at);
        self.inject_order.insert(at, id);
        id
    }

    /// True when every scheduled injection has been staged (packets may
    /// still wait in per-node pending queues — see
    /// [`NodeGrid::has_pending`]).
    pub(crate) fn cursor_exhausted(&self) -> bool {
        self.inject_cursor >= self.inject_order.len()
    }

    /// Packets whose injection time has arrived so far (staged, entered,
    /// delivered, shed, or expired — everything past the cursor).
    pub(crate) fn offered(&self) -> usize {
        self.inject_cursor
    }
}

/// Per-node queue storage in a flat node-major, slot-minor layout
/// (`queues[ni * slots + slot]`), plus the staging and bookkeeping the
/// step pipeline needs per node: pending (admission-controlled)
/// injections, the active-node worklist, the O(1) occupancy index, and
/// the peak-load congestion map.
pub(crate) struct NodeGrid {
    n: u32,
    arch: QueueArch,
    slots: usize,
    queues: Vec<Vec<PacketId>>,
    /// Occupancy index: packets currently queued at each node, maintained
    /// incrementally by [`push`](Self::push)/[`remove`](Self::remove).
    load: Vec<u32>,
    /// Packets staged for injection at a node, held outside the network by
    /// admission control until the origin queue has room.
    pub(crate) pending: HashMap<u32, VecDeque<PacketId>>,
    /// Worklist of nodes that may hold or receive packets this step.
    active: Vec<u32>,
    in_active: Vec<bool>,
    /// Per-node all-time peak occupancy (congestion map).
    pub(crate) peak_load: Vec<u16>,
}

impl NodeGrid {
    pub(crate) fn new(n: u32, arch: QueueArch) -> Self {
        let nodes = (n * n) as usize;
        let slots = arch.num_slots();
        NodeGrid {
            n,
            arch,
            slots,
            queues: (0..nodes * slots).map(|_| Vec::new()).collect(),
            load: vec![0; nodes],
            pending: HashMap::new(),
            active: Vec::new(),
            in_active: vec![false; nodes],
            peak_load: vec![0; nodes],
        }
    }

    #[inline]
    pub(crate) fn n(&self) -> u32 {
        self.n
    }

    #[inline]
    pub(crate) fn arch(&self) -> QueueArch {
        self.arch
    }

    #[inline]
    pub(crate) fn slots(&self) -> usize {
        self.slots
    }

    #[inline]
    pub(crate) fn nodes(&self) -> usize {
        (self.n * self.n) as usize
    }

    #[inline]
    pub(crate) fn node_index(&self, c: Coord) -> usize {
        (c.y * self.n + c.x) as usize
    }

    #[inline]
    pub(crate) fn coord_of(&self, ni: usize) -> Coord {
        Coord::new(ni as u32 % self.n, ni as u32 / self.n)
    }

    /// The [`QueueKind`] stored at a slot index under this architecture —
    /// the single source of the slot↔kind mapping.
    #[inline]
    pub(crate) fn slot_kind(&self, slot: usize) -> QueueKind {
        match (self.arch, slot) {
            (QueueArch::Central { .. }, _) => QueueKind::Central,
            (QueueArch::PerInlink { .. }, 4) => QueueKind::Injection,
            (QueueArch::PerInlink { .. }, s) => QueueKind::Inlink(Dir::from_index(s)),
        }
    }

    #[inline]
    pub(crate) fn queue(&self, ni: usize, slot: usize) -> &[PacketId] {
        &self.queues[ni * self.slots + slot]
    }

    #[inline]
    pub(crate) fn queue_len(&self, ni: usize, slot: usize) -> usize {
        self.queues[ni * self.slots + slot].len()
    }

    /// Appends a packet to a node's queue, updating the occupancy index.
    pub(crate) fn push(&mut self, c: Coord, kind: QueueKind, pid: PacketId) {
        let ni = self.node_index(c);
        self.queues[ni * self.slots + kind.slot()].push(pid);
        self.load[ni] += 1;
    }

    /// Removes a packet from a node's queue (position scan — queues are
    /// short by construction), updating the occupancy index. Panics with
    /// `what` if the packet is not there: that is an engine bug, not a
    /// runtime condition.
    pub(crate) fn remove(&mut self, c: Coord, kind: QueueKind, pid: PacketId, what: &str) {
        let ni = self.node_index(c);
        let q = &mut self.queues[ni * self.slots + kind.slot()];
        let pos = q.iter().position(|&p| p == pid).expect(what);
        q.remove(pos);
        self.load[ni] -= 1;
    }

    /// Removes every queued packet whose injection step is `ttl` or more
    /// steps in the past, in deterministic (node, slot, position) order,
    /// invoking `on_expired` for each. O(total queued packets); only the
    /// `DeadlineExpiry` admission policy pays it.
    pub(crate) fn expire_queued(
        &mut self,
        t: u64,
        ttl: u64,
        inject_at: &[u64],
        mut on_expired: impl FnMut(PacketId),
    ) {
        let slots = self.slots;
        for ni in 0..self.nodes() {
            for s in 0..slots {
                let q = &mut self.queues[ni * slots + s];
                let before = q.len();
                q.retain(|&pid| {
                    if t >= inject_at[pid.index()].saturating_add(ttl) {
                        on_expired(pid);
                        false
                    } else {
                        true
                    }
                });
                self.load[ni] -= (before - q.len()) as u32;
            }
        }
    }

    /// Total packets currently in the node's queues (excluding pending) —
    /// O(1) from the occupancy index.
    #[inline]
    pub(crate) fn node_load(&self, ni: usize) -> u32 {
        self.load[ni]
    }

    /// The packets currently at a node, over all queues in slot order —
    /// answered from the node's own slots, no packet-table scan, no
    /// allocation.
    pub(crate) fn packets_at(&self, c: Coord) -> impl Iterator<Item = PacketId> + '_ {
        let ni = self.node_index(c);
        (0..self.slots).flat_map(move |s| self.queues[ni * self.slots + s].iter().copied())
    }

    /// The `i`-th packet at node `ni` in flattened slot order — the same
    /// order `build_views`/`build_packed` enumerate, so an index returned
    /// by an outqueue policy resolves to its packet without materializing
    /// per-packet views. At most four lookups happen per node per step.
    #[inline]
    pub(crate) fn nth_packet(&self, ni: usize, mut i: usize) -> PacketId {
        for s in 0..self.slots {
            let q = &self.queues[ni * self.slots + s];
            if i < q.len() {
                return q[i];
            }
            i -= q.len();
        }
        panic!("nth_packet index out of range at node {ni}");
    }

    pub(crate) fn mark_active(&mut self, ni: usize) {
        if !self.in_active[ni] {
            self.in_active[ni] = true;
            self.active.push(ni as u32);
        }
    }

    /// Moves the active worklist into `out` (clearing membership flags),
    /// leaving the grid's list empty for the step to rebuild.
    pub(crate) fn drain_active_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        std::mem::swap(&mut self.active, out);
        for &ni in out.iter() {
            self.in_active[ni as usize] = false;
        }
    }

    #[inline]
    pub(crate) fn active_len(&self) -> usize {
        self.active.len()
    }

    #[inline]
    pub(crate) fn active_at(&self, idx: usize) -> usize {
        self.active[idx] as usize
    }

    /// Pops the next pending (admission-deferred) packet of a node,
    /// dropping the node's entry once drained. `None` means nothing is
    /// staged there.
    pub(crate) fn pop_pending(&mut self, ni: u32) -> Option<PacketId> {
        let q = self.pending.get_mut(&ni)?;
        match q.pop_front() {
            Some(pid) => {
                if q.is_empty() {
                    self.pending.remove(&ni);
                }
                Some(pid)
            }
            None => {
                self.pending.remove(&ni);
                None
            }
        }
    }

    /// Pops the *newest* pending packet of a node (freshest-first
    /// admission, used by `DeadlineExpiry`): under sustained overload a
    /// FIFO edge admits only packets whose deadline budget is already
    /// spent waiting, so everything expires mid-flight — admitting the
    /// freshest packet instead gives it its full TTL to cross the mesh
    /// while stale backlog expires at the edge.
    pub(crate) fn pop_pending_back(&mut self, ni: u32) -> Option<PacketId> {
        let q = self.pending.get_mut(&ni)?;
        match q.pop_back() {
            Some(pid) => {
                if q.is_empty() {
                    self.pending.remove(&ni);
                }
                Some(pid)
            }
            None => {
                self.pending.remove(&ni);
                None
            }
        }
    }

    #[inline]
    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Packets currently staged at injection edges (admission-deferred),
    /// over all nodes.
    pub(crate) fn staged_total(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum()
    }

    /// Records a node's end-of-step load into the congestion map.
    #[inline]
    pub(crate) fn note_peak(&mut self, ni: usize, load: u16) {
        if load > self.peak_load[ni] {
            self.peak_load[ni] = load;
        }
    }

    /// Clones the flat queue table (node-major, slot-minor) for a snapshot.
    pub(crate) fn export_queues(&self) -> Vec<Vec<PacketId>> {
        self.queues.clone()
    }

    /// Clones the active worklist *in order* for a snapshot. The order is
    /// part of the engine's deterministic state: the route phase walks it
    /// verbatim, so restoring a permuted list would reorder schedules and
    /// break bit-identical resumption.
    pub(crate) fn export_active(&self) -> Vec<u32> {
        self.active.clone()
    }

    /// Rebuilds a grid from snapshotted parts, re-deriving the occupancy
    /// index and active-membership flags and validating the internal
    /// invariants a live grid maintains. Errors describe the corruption;
    /// they never panic.
    pub(crate) fn from_parts(
        n: u32,
        arch: QueueArch,
        queues: Vec<Vec<PacketId>>,
        pending: &[(u32, Vec<PacketId>)],
        active: &[u32],
        peak_load: Vec<u16>,
    ) -> Result<NodeGrid, String> {
        let nodes = (n * n) as usize;
        let slots = arch.num_slots();
        if queues.len() != nodes * slots {
            return Err(format!(
                "queue table has {} slots, expected {} ({} nodes x {} slots)",
                queues.len(),
                nodes * slots,
                nodes,
                slots
            ));
        }
        if peak_load.len() != nodes {
            return Err(format!(
                "peak-load map has {} entries, expected {nodes}",
                peak_load.len()
            ));
        }
        let mut load = vec![0u32; nodes];
        for (qi, q) in queues.iter().enumerate() {
            load[qi / slots] += q.len() as u32;
        }
        let mut pending_map: HashMap<u32, VecDeque<PacketId>> = HashMap::new();
        for (ni, pids) in pending {
            if *ni as usize >= nodes {
                return Err(format!("pending bucket for out-of-grid node {ni}"));
            }
            if pids.is_empty() {
                // A live grid drops a node's bucket when it drains.
                return Err(format!("empty pending bucket at node {ni}"));
            }
            if pending_map
                .insert(*ni, pids.iter().copied().collect())
                .is_some()
            {
                return Err(format!("duplicate pending bucket for node {ni}"));
            }
        }
        let mut in_active = vec![false; nodes];
        for &ni in active {
            if ni as usize >= nodes {
                return Err(format!("active worklist names out-of-grid node {ni}"));
            }
            if in_active[ni as usize] {
                return Err(format!("node {ni} appears twice in the active worklist"));
            }
            in_active[ni as usize] = true;
        }
        // The worklist's *set* is determined: exactly the nodes holding or
        // awaiting packets (its order is history-dependent and preserved
        // verbatim above).
        for ni in 0..nodes {
            let expect = load[ni] > 0 || pending_map.contains_key(&(ni as u32));
            if expect != in_active[ni] {
                return Err(format!(
                    "active worklist disagrees with occupancy at node {ni} \
                     (load {}, pending {}, listed {})",
                    load[ni],
                    pending_map.contains_key(&(ni as u32)),
                    in_active[ni]
                ));
            }
        }
        Ok(NodeGrid {
            n,
            arch,
            slots,
            queues,
            load,
            pending: pending_map,
            active: active.to_vec(),
            in_active,
            peak_load,
        })
    }

    /// Raw base pointers into the per-node queue storage for the
    /// tile-sharded step: workers dequeue packets of their own (disjoint)
    /// node sets through these while the coordinator is parked at a
    /// barrier. The outer vectors have fixed length for the grid's
    /// lifetime, so the bases stay valid as long as the grid does.
    pub(crate) fn raw(&mut self) -> GridRaw {
        GridRaw {
            queues: self.queues.as_mut_ptr(),
            load: self.load.as_mut_ptr(),
        }
    }
}

/// Raw parts of a [`NodeGrid`] (see [`NodeGrid::raw`]).
#[derive(Clone, Copy)]
pub(crate) struct GridRaw {
    pub(crate) queues: *mut Vec<PacketId>,
    pub(crate) load: *mut u32,
}
