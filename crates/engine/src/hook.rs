//! The adversary interface: step hooks that may exchange destinations.
//!
//! §3 of the paper interposes, between the outqueue scheduling (a) and the
//! inqueue acceptance (c) of every step, an adversary that may *exchange*
//! the destination addresses of chosen packet pairs (rules EX1–EX4). The
//! [`StepHook`] trait is that interposition point. The engine exposes, via
//! [`HookCtx`], full omniscient access — the adversary is *not* bound by the
//! destination-exchangeable restriction; only the algorithm is.

use crate::sim::Loc;
use mesh_topo::{Coord, Dir};
use mesh_traffic::PacketId;

/// One scheduled transmission: the outqueue policy of the node at `from`
/// chose packet `pkt` for its `travel` outlink, toward `to`.
#[derive(Clone, Copy, Debug)]
pub struct ScheduledMove {
    pub pkt: PacketId,
    pub from: Coord,
    pub to: Coord,
    pub travel: Dir,
}

/// Omniscient, mutating view of the network between steps (a) and (c).
pub struct HookCtx<'a> {
    /// The 1-based step number `t` (the paper's first step is `t = 1`).
    pub t: u64,
    /// Grid side.
    pub n: u32,
    /// Every transmission scheduled this step.
    pub moves: &'a [ScheduledMove],
    pub(crate) dst: &'a mut [Coord],
    pub(crate) loc: &'a [Loc],
    pub(crate) src: &'a [Coord],
    pub(crate) exchanges: &'a mut u64,
    /// Packets whose destination changed this step: the engine refreshes
    /// their cached profitable masks after the hook returns (it has the
    /// topology; this context deliberately does not).
    pub(crate) dirty: &'a mut Vec<PacketId>,
}

impl<'a> HookCtx<'a> {
    /// Current destination of a packet.
    #[inline]
    pub fn dst(&self, p: PacketId) -> Coord {
        self.dst[p.index()]
    }

    /// Source of a packet.
    #[inline]
    pub fn src(&self, p: PacketId) -> Coord {
        self.src[p.index()]
    }

    /// Current location of a packet (`None` once delivered or not injected).
    #[inline]
    pub fn node_of(&self, p: PacketId) -> Option<Coord> {
        match self.loc[p.index()] {
            Loc::At(c) => Some(c),
            _ => None,
        }
    }

    /// Total number of packets.
    #[inline]
    pub fn num_packets(&self) -> usize {
        self.dst.len()
    }

    /// Number of exchanges performed so far in the whole run.
    #[inline]
    pub fn exchange_count(&self) -> u64 {
        *self.exchanges
    }

    /// Exchanges the destination addresses of two packets, leaving all other
    /// packet information (state, source — hence identity) untouched. This
    /// is the paper's *exchange* operation; by Lemma 10 it is invisible to
    /// any destination-exchangeable algorithm.
    pub fn exchange(&mut self, a: PacketId, b: PacketId) {
        assert_ne!(a, b, "cannot exchange a packet with itself");
        self.dst.swap(a.index(), b.index());
        *self.exchanges += 1;
        self.dirty.push(a);
        self.dirty.push(b);
    }
}

/// An observer/adversary invoked once per step between scheduling and
/// acceptance.
pub trait StepHook {
    /// Inspect the schedule and perform exchanges as needed.
    fn on_scheduled(&mut self, ctx: &mut HookCtx<'_>);
}

/// The trivial hook: no adversary (ordinary simulation).
pub struct NoHook;

impl StepHook for NoHook {
    #[inline]
    fn on_scheduled(&mut self, _ctx: &mut HookCtx<'_>) {}
}

impl<F: FnMut(&mut HookCtx<'_>)> StepHook for F {
    fn on_scheduled(&mut self, ctx: &mut HookCtx<'_>) {
        self(ctx)
    }
}
