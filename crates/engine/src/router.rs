//! The two routing-algorithm interfaces: unrestricted [`Router`] and
//! destination-exchangeable [`DxRouter`], plus the [`Dx`] adapter.

use crate::queue::QueueArch;
use crate::view::{Arrival, DxView, FullView, PackedArrival, PackedView};
use mesh_topo::Coord;
use std::cell::Cell;

/// A deterministic routing algorithm with **full** information: its policies
/// may inspect complete destination addresses. Implemented directly only by
/// algorithms the paper explicitly places outside the destination-
/// exchangeable class (farthest-first dimension order in §5; the §6
/// algorithm's base case).
///
/// All policy methods are deterministic functions of their arguments; the
/// engine stores one `NodeState` per node and threads it through. Policies
/// may mutate the node state in place — everything they can observe is
/// within the information the model grants them, so any state so computed is
/// expressible in the paper's "state update at end of step" formulation.
///
/// Routers are `Sync` (and node states `Send`): the tile-sharded engine
/// shares one router across its worker threads, each invoking policies on
/// the node states of its own tiles. Policies already had to be pure
/// functions of their arguments, so the bound costs implementations nothing
/// beyond keeping scratch space off `self` (use thread-locals, as
/// [`Dx`] does).
pub trait Router: Sync {
    /// Per-node algorithm state (the paper's "state of a node").
    type NodeState: Clone + Default + Send;

    /// Human-readable algorithm name for reports.
    fn name(&self) -> String;

    /// The queue architecture this algorithm runs on.
    fn queue_arch(&self) -> QueueArch;

    /// Whether the algorithm promises minimal (always-profitable) moves.
    /// When `true` the engine panics if a packet is ever scheduled on a
    /// non-profitable outlink — catching implementation bugs early.
    fn is_minimal(&self) -> bool {
        true
    }

    /// Step (a): choose at most one resident packet per outlink.
    /// `out[d]` is an index into `pkts`; a packet may appear at most once.
    fn outqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[FullView],
        out: &mut [Option<usize>; 4],
    );

    /// Step (c): decide which scheduled arrivals to accept. `accept` has one
    /// flag per entry of `arrivals`, all initially `false`. The policy must
    /// not accept more packets than its queues can hold by the end of the
    /// step (the engine verifies and panics on overflow).
    fn inqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[FullView],
        arrivals: &[Arrival<FullView>],
        accept: &mut [bool],
    );

    /// Step (e): update node state and resident packets' state words after
    /// transmission. `states[i]` is the mutable state word of `residents[i]`.
    /// Default: no-op.
    fn end_of_step(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[FullView],
        states: &mut [u64],
    ) {
        let _ = (step, node, state, residents, states);
    }

    /// True when this router implements the bit-packed fast-path policies
    /// ([`Router::outqueue_packed`] and [`Router::inqueue_packed`]) and
    /// guarantees they make exactly the same decisions, packet for packet,
    /// as the view-based methods. The engine then skips building per-packet
    /// view vectors on the hot path; the differential battery cross-checks
    /// the promise against the view-based oracle.
    fn mask_capable(&self) -> bool {
        false
    }

    /// Fast-path step (a): like [`Router::outqueue`], but over bit-packed
    /// resident descriptors (`pkts[i]` describes the same packet, in the
    /// same order, as the `pkts[i]` the view-based method would see). Only
    /// called when [`Router::mask_capable`] returns `true`.
    fn outqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[PackedView],
        out: &mut [Option<usize>; 4],
    ) {
        let _ = (step, node, state, pkts, out);
        unreachable!("outqueue_packed called on a router that is not mask_capable");
    }

    /// Fast-path step (c): like [`Router::inqueue`], but residents are
    /// summarized as per-slot occupancy counts (`queue_lens[s]` = packets
    /// currently in slot `s` of this node, indexed per the router's declared
    /// arch) and arrivals as [`PackedArrival`]s in the same order the
    /// view-based method would see them. Only called when
    /// [`Router::mask_capable`] returns `true`.
    fn inqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        queue_lens: &[u32],
        arrivals: &[PackedArrival],
        accept: &mut [bool],
    ) {
        let _ = (step, node, state, queue_lens, arrivals, accept);
        unreachable!("inqueue_packed called on a router that is not mask_capable");
    }

    /// Whether step (e) can do anything. Routers whose `end_of_step` is the
    /// inherited no-op return `false`, letting the engine skip the
    /// UpdateState view-building pass entirely (the skipped writes are
    /// identity writes, so skipping is byte-identical). Conservative default:
    /// `true`.
    fn uses_end_of_step(&self) -> bool {
        true
    }
}

/// A deterministic **destination-exchangeable** routing algorithm (§2): its
/// policies see packets only through [`DxView`]s — state, source address,
/// and profitable outlinks. The destination never reaches the policy, so the
/// exchange-invariance Lemma 10 holds for every implementation by
/// construction.
///
/// Run a `DxRouter` by wrapping it: `Dx(MyRouter)`.
pub trait DxRouter: Sync {
    /// Per-node algorithm state.
    type NodeState: Clone + Default + Send;

    /// Human-readable algorithm name for reports.
    fn name(&self) -> String;

    /// The queue architecture this algorithm runs on.
    fn queue_arch(&self) -> QueueArch;

    /// Whether the algorithm is minimal. The §3 lower bound needs both
    /// destination-exchangeability *and* minimality; §5 notes that
    /// destination-exchangeable **nonminimal** algorithms exist (hot-potato
    /// routing) and get a weaker Ω(n²/(δ+1)³k²) bound.
    fn is_minimal(&self) -> bool {
        true
    }

    /// Step (a): choose at most one resident packet per outlink; indices
    /// into `pkts`.
    ///
    /// For a minimal algorithm every scheduled direction must be profitable
    /// for its packet (engine-enforced).
    fn outqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    );

    /// Step (c): decide which scheduled arrivals to accept.
    fn inqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[DxView],
        arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    );

    /// Step (e): update node state and resident packet states. The mutable
    /// state access is mediated: the callback receives the restricted views
    /// plus a parallel slice of state words to rewrite.
    fn end_of_step(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[DxView],
        states: &mut [u64],
    ) {
        let _ = (step, node, state, residents, states);
    }

    /// See [`Router::mask_capable`]. A [`PackedView`] carries strictly less
    /// than a [`DxView`] (no id, source, or state word), so a packed policy
    /// is destination-exchangeable by construction.
    fn mask_capable(&self) -> bool {
        false
    }

    /// See [`Router::outqueue_packed`].
    fn outqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[PackedView],
        out: &mut [Option<usize>; 4],
    ) {
        let _ = (step, node, state, pkts, out);
        unreachable!("outqueue_packed called on a router that is not mask_capable");
    }

    /// See [`Router::inqueue_packed`].
    fn inqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        queue_lens: &[u32],
        arrivals: &[PackedArrival],
        accept: &mut [bool],
    ) {
        let _ = (step, node, state, queue_lens, arrivals, accept);
        unreachable!("inqueue_packed called on a router that is not mask_capable");
    }

    /// See [`Router::uses_end_of_step`].
    fn uses_end_of_step(&self) -> bool {
        true
    }
}

/// Adapter running a [`DxRouter`] as a [`Router`] by projecting every view
/// down to the destination-free [`DxView`]. The engine stays monomorphic;
/// the restriction is purely in what crosses this boundary.
pub struct Dx<R> {
    pub inner: R,
}

// Projection scratch lives per *thread*, not per adapter: the tile-sharded
// engine shares one `Dx` across workers, and each worker projects views for
// its own tiles. `Cell` + take/set (instead of `RefCell`) keeps nested
// adapters reentrant: an inner call simply sees an empty buffer and the
// outer one wins the put-back.
thread_local! {
    static DX_RESIDENTS: Cell<Vec<DxView>> = const { Cell::new(Vec::new()) };
    static DX_ARRIVALS: Cell<Vec<Arrival<DxView>>> = const { Cell::new(Vec::new()) };
}

impl<R> Dx<R> {
    /// Wraps a destination-exchangeable router for execution.
    pub fn new(inner: R) -> Dx<R> {
        Dx { inner }
    }
}

impl<R: DxRouter> Router for Dx<R> {
    type NodeState = R::NodeState;

    fn name(&self) -> String {
        self.inner.name()
    }

    fn queue_arch(&self) -> QueueArch {
        self.inner.queue_arch()
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn outqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[FullView],
        out: &mut [Option<usize>; 4],
    ) {
        let mut buf = DX_RESIDENTS.take();
        buf.clear();
        buf.extend(pkts.iter().map(FullView::dx));
        self.inner.outqueue(step, node, state, &buf, out);
        DX_RESIDENTS.set(buf);
    }

    fn inqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[FullView],
        arrivals: &[Arrival<FullView>],
        accept: &mut [bool],
    ) {
        let mut rbuf = DX_RESIDENTS.take();
        rbuf.clear();
        rbuf.extend(residents.iter().map(FullView::dx));
        let mut abuf = DX_ARRIVALS.take();
        abuf.clear();
        abuf.extend(arrivals.iter().map(|a| Arrival {
            view: a.view.dx(),
            travel: a.travel,
        }));
        self.inner.inqueue(step, node, state, &rbuf, &abuf, accept);
        DX_RESIDENTS.set(rbuf);
        DX_ARRIVALS.set(abuf);
    }

    fn end_of_step(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[FullView],
        states: &mut [u64],
    ) {
        let mut rbuf = DX_RESIDENTS.take();
        rbuf.clear();
        rbuf.extend(residents.iter().map(FullView::dx));
        self.inner.end_of_step(step, node, state, &rbuf, states);
        DX_RESIDENTS.set(rbuf);
    }

    // The packed fast path forwards without any projection: a PackedView is
    // already destination-free, so there is nothing to strip and no
    // thread-local copy to pay for.

    fn mask_capable(&self) -> bool {
        self.inner.mask_capable()
    }

    fn outqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[PackedView],
        out: &mut [Option<usize>; 4],
    ) {
        self.inner.outqueue_packed(step, node, state, pkts, out);
    }

    fn inqueue_packed(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        queue_lens: &[u32],
        arrivals: &[PackedArrival],
        accept: &mut [bool],
    ) {
        self.inner
            .inqueue_packed(step, node, state, queue_lens, arrivals, accept);
    }

    fn uses_end_of_step(&self) -> bool {
        self.inner.uses_end_of_step()
    }
}
