//! # mesh-engine
//!
//! A synchronous, multi-port packet-routing simulator implementing §2 of
//! Chinn, Leighton & Tompa (SPAA 1994) exactly.
//!
//! ## The step (§3 of the paper)
//!
//! Every simulated step performs, in order:
//!
//! 1. **(a) Outqueue** — each node's outqueue policy chooses at most one
//!    packet per outlink to attempt to transmit.
//! 2. **(b) Hook** — an optional [`StepHook`] observes the schedule and may
//!    *exchange* the destinations of packet pairs. This is the adversary
//!    interface used by the lower-bound constructions of §§3 and 5; ordinary
//!    simulations use [`NoHook`].
//! 3. **(c) Inqueue** — each node's inqueue policy decides which scheduled
//!    incoming packets to accept (it must not overflow its queues).
//! 4. **(d) Transmit** — packets that were both scheduled and accepted move;
//!    a packet arriving at its destination is delivered and removed.
//! 5. **(e) State update** — node and packet states update as a function of
//!    the information the model permits.
//!
//! ## Destination exchangeability, enforced by types
//!
//! The lower bound applies to *destination-exchangeable* algorithms: routing
//! decisions may depend only on packet **states**, **source addresses**, and
//! **profitable outlinks** — never on the destination itself. The engine
//! encodes this restriction in the [`DxRouter`] trait, whose policy methods
//! receive [`DxView`]s that simply contain no destination field. Any
//! `DxRouter` is run through the [`Dx`] adapter, which projects the full
//! packet information down to the permitted view. Lemma 10 of the paper
//! (exchanges are invisible to the algorithm) therefore holds for every
//! `DxRouter` by parametricity — and is additionally checked empirically in
//! tests.
//!
//! Algorithms that legitimately use full destinations (the farthest-first
//! outqueue policy of §5, the §6 algorithm's base case) implement the
//! unrestricted [`Router`] trait directly.
//!
//! ## Queue architectures (§2 and §5 "Other Queue Types")
//!
//! [`QueueArch::Central`] gives every node one queue of capacity `k`;
//! [`QueueArch::PerInlink`] gives every node four inlink queues of capacity
//! `k` each (the Theorem 15 model). In both cases queues need not be FIFO —
//! order is the policies' business; the engine only enforces capacity.

pub mod diag;
mod driver;
pub mod hook;
pub mod metrics;
pub mod phases;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod steady;
mod storage;
mod tiles;
pub mod view;
mod watchdog;

#[cfg(test)]
mod engine_tests;

pub use diag::{DiagnosticSnapshot, NodeOccupancy, StuckPacket};
pub use hook::{HookCtx, NoHook, ScheduledMove, StepHook};
pub use metrics::{ReportAggregate, SimReport};
pub use phases::AdmissionPolicy;
pub use phases::{Phase, STEP_PIPELINE};
pub use protocol::{ProtocolControl, ProtocolHook, StepEvents};
pub use queue::{QueueArch, QueueKind};
pub use router::{Dx, DxRouter, Router};
pub use sim::Loc;
pub use sim::{Sim, SimConfig, SimError};
pub use snapshot::{
    CheckpointSink, DirectorySink, MemorySink, Snapshot, SnapshotError, SnapshotHook, SteadySnap,
    SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MIN_READ_VERSION,
};
pub use steady::{SteadyConfig, SteadyReport, WindowFrame};

// Fault plans are part of the engine's public vocabulary (constructors take
// them); re-export the crate so downstream users need not depend on
// `mesh-faults` directly.
pub use mesh_faults as faults;
pub use stats::{DeliveryCurve, Distribution, NodeField, Summary};
pub use view::{Arrival, DxView, FullView, PackedArrival, PackedView};
