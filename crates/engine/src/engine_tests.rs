//! Behavior tests of the engine, exercised through the [`Sim`] façade —
//! step semantics, faults, statistics, conservation invariants, chaos
//! fuzzing, and the protocol driving loop. These predate the phase-
//! pipeline split and pin its behavior from the outside.

use crate::hook::HookCtx;
use crate::router::Router;
use crate::sim::{Loc, Sim, SimConfig, SimError};
use crate::view::Arrival;
use mesh_topo::{Coord, Dir, Topology};
use mesh_traffic::PacketId;

mod tests {
    use super::*;
    use crate::queue::QueueArch;
    use crate::router::{Dx, DxRouter};
    use crate::view::DxView;
    use mesh_topo::Mesh;
    use mesh_traffic::RoutingProblem;

    /// Minimal destination-exchangeable test router: greedy "first profitable
    /// direction in canonical order", FIFO outqueue, accept while the central
    /// queue has strict headroom at the beginning of the step.
    pub(super) struct Greedy {
        pub(super) k: u32,
    }

    impl DxRouter for Greedy {
        type NodeState = ();

        fn name(&self) -> String {
            format!("test-greedy(k={})", self.k)
        }

        fn queue_arch(&self) -> QueueArch {
            QueueArch::Central { k: self.k }
        }

        fn outqueue(
            &self,
            _step: u64,
            _node: Coord,
            _state: &mut (),
            pkts: &[DxView],
            out: &mut [Option<usize>; 4],
        ) {
            // Oldest packet first; each packet takes its first profitable
            // direction whose outlink is still free.
            let mut order: Vec<usize> = (0..pkts.len()).collect();
            order.sort_by_key(|&i| pkts[i].pos);
            for i in order {
                if let Some(d) = pkts[i].profitable.iter().find(|d| out[d.index()].is_none()) {
                    out[d.index()] = Some(i);
                }
            }
        }

        fn inqueue(
            &self,
            _step: u64,
            _node: Coord,
            _state: &mut (),
            residents: &[DxView],
            arrivals: &[Arrival<DxView>],
            accept: &mut [bool],
        ) {
            let mut room = (self.k as usize).saturating_sub(residents.len());
            for (i, _a) in arrivals.iter().enumerate() {
                if room > 0 {
                    accept[i] = true;
                    room -= 1;
                }
            }
        }
    }

    fn greedy(k: u32) -> Dx<Greedy> {
        Dx::new(Greedy { k })
    }

    #[test]
    fn single_packet_takes_shortest_path_time() {
        let topo = Mesh::new(8);
        let pb = RoutingProblem::from_pairs(8, "one", [(Coord::new(0, 0), Coord::new(5, 3))]);
        let mut sim = Sim::new(&topo, greedy(2), &pb);
        let steps = sim.run(100).unwrap();
        assert_eq!(steps, 8); // manhattan distance
        let r = sim.report();
        assert!(r.completed);
        assert_eq!(r.total_moves, 8);
        assert_eq!(r.max_queue, 1);
        assert_eq!(sim.delivered_step(PacketId(0)), Some(8));
    }

    #[test]
    fn trivial_packet_is_delivered_at_injection() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_pairs(4, "trivial", [(Coord::new(2, 2), Coord::new(2, 2))]);
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        assert!(sim.done());
        assert_eq!(sim.run(10).unwrap(), 0);
        assert_eq!(sim.delivered_step(PacketId(0)), Some(0));
    }

    #[test]
    fn two_packets_share_a_link_one_waits() {
        // Both packets must traverse the single link (0,0)->(1,0) ... build a
        // 2x1-ish scenario on a 2x2 mesh: packets at (0,0) and (0,1), both to
        // (1,1) is not a partial permutation; instead two packets whose only
        // profitable dir from their shared node differs. Simpler: two packets
        // starting at the same node is impossible (k=1). Use k=2 with both
        // packets at (0,0): to (1,0) and (2,0) on a 3x1 row — they compete for
        // the East outlink.
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(
            3,
            "contend",
            [
                (Coord::new(0, 0), Coord::new(2, 0)),
                (Coord::new(0, 0), Coord::new(1, 0)),
            ],
        );
        let mut sim = Sim::new(&topo, greedy(2), &pb);
        let steps = sim.run(100).unwrap();
        // Packet 0 (older in queue) goes first: delivered at step 2.
        // Packet 1 waits one step, delivered at step 2 as well (moves at
        // step 2 after the link frees at step 2? it moves at step 2).
        assert!(sim.done());
        assert!(steps >= 2);
        let r = sim.report();
        assert_eq!(r.total_moves, 3);
    }

    #[test]
    fn capacity_blocks_acceptance() {
        // k=1: a chain 4 long with all packets moving east; heads block tails.
        let topo = Mesh::new(5);
        let pairs: Vec<_> = (0..4u32)
            .map(|x| (Coord::new(x, 0), Coord::new(x + 1, 0)))
            .collect();
        let pb = RoutingProblem::from_pairs(5, "chain", pairs);
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let steps = sim.run(100).unwrap();
        assert!(sim.done());
        // The head (packet at x=3) is delivered at step 1, freeing space;
        // everything drains in a wave.
        assert!(steps <= 4, "chain should drain quickly, took {steps}");
        assert_eq!(sim.report().max_queue, 1, "k=1 never exceeded");
    }

    #[test]
    fn dynamic_injection_waits_for_time() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_packets(
            4,
            "late",
            vec![mesh_traffic::Packet::injected_at(
                0,
                Coord::new(0, 0),
                Coord::new(1, 0),
                5,
            )],
        );
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let steps = sim.run(100).unwrap();
        assert_eq!(steps, 6); // waits 5 steps, moves during step 6
        assert_eq!(sim.delivered_step(PacketId(0)), Some(6));
        // Latency counts from injection: 6 - 5 = 1.
        assert_eq!(sim.report().max_latency, 1);
    }

    #[test]
    fn hook_exchange_swaps_destinations() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_pairs(
            4,
            "swap",
            [
                (Coord::new(0, 0), Coord::new(3, 0)),
                (Coord::new(0, 1), Coord::new(3, 1)),
            ],
        );
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let mut swapped = false;
        let mut hook = |ctx: &mut HookCtx<'_>| {
            if !swapped {
                ctx.exchange(PacketId(0), PacketId(1));
                swapped = true;
            }
        };
        sim.run_with_hook(100, &mut hook).unwrap();
        assert!(sim.done());
        // Destinations were exchanged before any move: packet 0 now ends at (3,1).
        assert_eq!(sim.dst(PacketId(0)), Coord::new(3, 1));
        assert_eq!(sim.dst(PacketId(1)), Coord::new(3, 0));
        assert_eq!(sim.report().exchanges, 1);
    }

    #[test]
    fn exchange_is_invisible_to_dx_router_lemma_10() {
        // Run the same problem twice: once plainly, once with an adversary
        // that exchanges two same-profitable-direction packets at step 1.
        // The *trajectories as a multiset* must be identical with the two
        // packets' roles swapped — here we check the coarser consequence
        // that total steps and total moves agree.
        let topo = Mesh::new(6);
        let pb = RoutingProblem::from_pairs(
            6,
            "lemma10",
            [
                (Coord::new(0, 0), Coord::new(4, 3)),
                (Coord::new(1, 1), Coord::new(3, 4)),
                (Coord::new(2, 0), Coord::new(5, 5)),
            ],
        );
        let mut plain = Sim::new(&topo, greedy(2), &pb);
        plain.run(1000).unwrap();

        let mut adv = Sim::new(&topo, greedy(2), &pb);
        let mut done_once = false;
        let mut hook = |ctx: &mut HookCtx<'_>| {
            if !done_once {
                // Both packets are northeast-bound; exchange is legal in the
                // Lemma 10 sense (both destinations stay northeast of both).
                ctx.exchange(PacketId(0), PacketId(1));
                done_once = true;
            }
        };
        adv.run_with_hook(1000, &mut hook).unwrap();

        assert_eq!(plain.steps(), adv.steps());
        assert_eq!(plain.report().total_moves, adv.report().total_moves);
        assert_eq!(plain.report().max_queue, adv.report().max_queue);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn engine_panics_on_overflowing_router() {
        /// A broken router that accepts everything regardless of capacity.
        struct Overflower;
        impl DxRouter for Overflower {
            type NodeState = ();
            fn name(&self) -> String {
                "overflower".into()
            }
            fn queue_arch(&self) -> QueueArch {
                QueueArch::Central { k: 1 }
            }
            fn outqueue(
                &self,
                _s: u64,
                _n: Coord,
                _st: &mut (),
                pkts: &[DxView],
                out: &mut [Option<usize>; 4],
            ) {
                for (i, p) in pkts.iter().enumerate() {
                    if let Some(d) = p.profitable.iter().find(|d| out[d.index()].is_none()) {
                        out[d.index()] = Some(i);
                    }
                }
            }
            fn inqueue(
                &self,
                _s: u64,
                _n: Coord,
                _st: &mut (),
                _r: &[DxView],
                _a: &[Arrival<DxView>],
                accept: &mut [bool],
            ) {
                accept.iter_mut().for_each(|f| *f = true);
            }
        }
        let topo = Mesh::new(3);
        // Two packets converge on (1,1) from both sides and both keep going;
        // with k=1 and accept-everything the queue must overflow.
        let pb = RoutingProblem::from_pairs(
            3,
            "overflow",
            [
                (Coord::new(0, 1), Coord::new(2, 1)),
                (Coord::new(1, 0), Coord::new(1, 2)),
            ],
        );
        let mut sim = Sim::new(&topo, Dx::new(Overflower), &pb);
        let _ = sim.run(10);
    }

    #[test]
    fn determinism() {
        // k = 64 is effectively unbounded on an 8x8 mesh (64 packets total),
        // so the naive test router cannot deadlock.
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 42);
        let mut a = Sim::new(&topo, greedy(64), &pb);
        let mut b = Sim::new(&topo, greedy(64), &pb);
        a.run(10_000).unwrap();
        b.run(10_000).unwrap();
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.packet_snapshot(), b.packet_snapshot());
    }

    #[test]
    fn report_counts_are_consistent() {
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 7);
        let mut sim = Sim::new(&topo, greedy(64), &pb);
        sim.run(100_000).unwrap();
        let r = sim.report();
        assert!(r.completed);
        assert_eq!(r.delivered, r.total_packets);
        // Every packet moved exactly its manhattan distance (greedy is
        // minimal): total moves == total work.
        assert_eq!(r.total_moves, pb.total_work());
        assert!(r.max_latency as u64 <= r.steps);
        assert!(r.steps >= pb.diameter_bound() as u64);
    }

    #[test]
    fn step_limit_reports_error() {
        let topo = Mesh::new(8);
        let pb = RoutingProblem::from_pairs(8, "far", [(Coord::new(0, 0), Coord::new(7, 7))]);
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let err = sim.run(3).unwrap_err();
        assert!(matches!(err, SimError::StepCap(_)));
        assert_eq!(err.kind(), "step-cap");
        let snap = err.snapshot();
        assert_eq!(snap.step, 3);
        assert_eq!(snap.delivered, 0);
        assert_eq!(snap.total, 1);
        assert_eq!(snap.stuck.len(), 1);
        assert_eq!(snap.stuck[0].dst, Coord::new(7, 7));
        assert_eq!(snap.stuck[0].hops, 3);
        let msg = err.to_string();
        assert!(msg.contains("step limit reached"), "got: {msg}");
        assert!(msg.contains("0/1 delivered"), "got: {msg}");
    }

    /// A two-packet cyclic wait: on a 1-wide corridor with k=1 and a router
    /// that never yields, the two packets face each other forever. The
    /// watchdog must report `Deadlock` within its window — not spin to the
    /// step cap.
    #[test]
    fn watchdog_reports_cyclic_wait_as_deadlock() {
        let topo = Mesh::new(2);
        // (0,0)->(1,0) and (1,0)->(0,0): each needs the cell the other holds;
        // greedy's inqueue demands strict headroom, so neither ever moves.
        let pb = RoutingProblem::from_pairs(
            2,
            "face-off",
            [
                (Coord::new(0, 0), Coord::new(1, 0)),
                (Coord::new(1, 0), Coord::new(0, 0)),
            ],
        );
        let config = SimConfig {
            watchdog: Some(25),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, greedy(1), &pb, config);
        let err = sim.run(100_000).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)), "got {err}");
        assert!(sim.steps() <= 30, "watchdog should fire within the window");
        let snap = err.snapshot();
        assert_eq!(snap.stuck.len(), 2);
        assert_eq!(snap.occupancy.len(), 2);
        assert!(snap.active_faults.is_empty());
    }

    /// The watchdog must never fire on a fault-free run that is making
    /// progress — even with the smallest sensible window.
    #[test]
    fn watchdog_never_trips_on_healthy_permutation() {
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 13);
        let config = SimConfig {
            watchdog: Some(20),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, greedy(64), &pb, config);
        sim.run(100_000).expect("healthy run must complete");
        assert!(sim.done());
    }

    /// The watchdog stays disarmed while injections are still scheduled:
    /// a long quiet gap before a late packet is not a deadlock.
    #[test]
    fn watchdog_waits_for_scheduled_injections() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_packets(
            4,
            "late",
            vec![mesh_traffic::Packet::injected_at(
                0,
                Coord::new(0, 0),
                Coord::new(1, 0),
                80,
            )],
        );
        let config = SimConfig {
            watchdog: Some(10),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, greedy(1), &pb, config);
        let steps = sim.run(1000).expect("late injection is not a deadlock");
        assert_eq!(steps, 81);
    }
}

mod fault_tests {
    use super::tests::Greedy;
    use super::*;
    use crate::router::Dx;
    use mesh_faults::FaultPlan;
    use mesh_topo::Mesh;
    use mesh_traffic::{workloads, RoutingProblem};

    fn greedy(k: u32) -> Dx<Greedy> {
        Dx::new(Greedy { k })
    }

    /// An *empty* fault plan must be indistinguishable from no plan at all:
    /// identical step counts and identical per-packet trajectories.
    #[test]
    fn empty_plan_is_exactly_no_plan() {
        let topo = Mesh::new(8);
        let pb = workloads::random_permutation(8, 99);
        let mut plain = Sim::new(&topo, greedy(3), &pb);
        let mut faulted = Sim::with_faults(
            &topo,
            greedy(3),
            &pb,
            SimConfig::default(),
            FaultPlan::none(8).compile(),
        );
        let a = plain.run(100_000).unwrap();
        let b = faulted.run(100_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.packet_snapshot(), faulted.packet_snapshot());
        assert_eq!(plain.report().total_moves, faulted.report().total_moves);
    }

    /// A down link carries nothing while down; traffic resumes once it
    /// lifts. One packet, one link on its only path, fault for steps [0, 10).
    #[test]
    fn transient_link_fault_delays_crossing() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "cross", [(Coord::new(0, 0), Coord::new(1, 0))]);
        let faults = FaultPlan::none(3)
            .link_down(Coord::new(0, 0), Dir::East, 0, Some(10))
            .compile();
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, SimConfig::default(), faults);
        let steps = sim.run(100).unwrap();
        // The link is down during steps 0..10 (t0 = 0..=9); the move happens
        // during t0 = 10, i.e. run completes after 11 steps.
        assert_eq!(steps, 11);
    }

    /// A stalled node neither sends nor accepts: neighbors' packets aimed at
    /// it wait, and its own packets freeze.
    #[test]
    fn stalled_node_freezes_traffic_through_it() {
        let topo = Mesh::new(3);
        // Packet A crosses the center; packet B starts at the center.
        let pb = RoutingProblem::from_pairs(
            3,
            "through-center",
            [
                (Coord::new(0, 1), Coord::new(2, 1)),
                (Coord::new(1, 1), Coord::new(1, 2)),
            ],
        );
        let faults = FaultPlan::none(3)
            .stall(Coord::new(1, 1), 0, Some(5))
            .compile();
        let mut sim = Sim::with_faults(&topo, greedy(2), &pb, SimConfig::default(), faults);
        for _ in 0..5 {
            sim.step();
        }
        // While stalled: A could not enter the center, and B — whose source
        // *is* the stalled node — could not even inject.
        assert_eq!(
            sim.loc(mesh_traffic::PacketId(0)),
            Loc::At(Coord::new(0, 1))
        );
        assert_eq!(sim.loc(mesh_traffic::PacketId(1)), Loc::Pending);
        let steps = sim.run(100).unwrap();
        assert!(sim.done());
        assert!(
            steps >= 7,
            "stall must have cost at least 5 steps, took {steps}"
        );
    }

    /// Queue degradation clamps *new* acceptance without evicting residents:
    /// with k=2 degraded by 1, a node holding one packet accepts nothing.
    #[test]
    fn degraded_queue_rejects_at_reduced_capacity() {
        let topo = Mesh::new(3);
        // B parks at (1,0) (its destination is further, but it is boxed in by
        // A's passage); simpler: A at (0,0) moving east to (2,0), B resident
        // at (1,0) headed to (1,2) but stalled by... use a plain check: A
        // wants to enter (1,0) which already holds B; degraded k=2 -> room 0.
        let pb = RoutingProblem::from_pairs(
            3,
            "degrade",
            [
                (Coord::new(0, 0), Coord::new(2, 0)),
                (Coord::new(1, 0), Coord::new(1, 1)),
            ],
        );
        // Stall B's node? No: degrade (1,0) by one slot for the whole run and
        // ALSO make B immobile by downing its only profitable link. Then A
        // can never pass through (1,0) while degradation holds.
        let faults = FaultPlan::none(3)
            .degrade(Coord::new(1, 0), 1, 0, Some(20))
            .link_down(Coord::new(1, 0), Dir::North, 0, Some(20))
            .compile();
        let mut sim = Sim::with_faults(&topo, greedy(2), &pb, SimConfig::default(), faults);
        for _ in 0..20 {
            sim.step();
        }
        // Throughout the fault window, A never entered (1,0): k=2 minus one
        // degraded slot leaves room 1, fully used by resident B.
        assert_eq!(
            sim.loc(mesh_traffic::PacketId(0)),
            Loc::At(Coord::new(0, 0))
        );
        // After the faults lift everything drains.
        sim.run(100).unwrap();
        assert!(sim.done());
    }

    /// Deliveries are exempt from degradation: a packet arriving *at its
    /// destination* consumes no queue slot and must not be clamped.
    #[test]
    fn degradation_does_not_block_delivery() {
        let topo = Mesh::new(2);
        let pb = RoutingProblem::from_pairs(2, "deliver", [(Coord::new(0, 0), Coord::new(1, 0))]);
        // Degrade the destination to zero effective capacity.
        let faults = FaultPlan::none(2)
            .degrade(Coord::new(1, 0), 1, 0, None)
            .compile();
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, SimConfig::default(), faults);
        assert_eq!(sim.run(10).unwrap(), 1);
    }

    /// A permanent link fault on the only profitable path, plus the watchdog:
    /// the run must end in `Deadlock` carrying the fault in its snapshot —
    /// not a panic, not a step-cap timeout.
    #[test]
    fn permanent_fault_is_reported_as_deadlock_with_fault_context() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "blocked", [(Coord::new(0, 0), Coord::new(2, 0))]);
        let faults = FaultPlan::none(3)
            .link_down(Coord::new(0, 0), Dir::East, 0, None)
            .compile();
        let config = SimConfig {
            watchdog: Some(30),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, config, faults);
        let err = sim.run(100_000).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)), "got {err}");
        let snap = err.snapshot();
        assert_eq!(snap.active_faults.len(), 1);
        assert_eq!(snap.stuck.len(), 1);
        assert!(err.to_string().contains("link (0,0)-E down"), "got {err}");
    }

    /// The watchdog holds off while a *transient* fault might still lift,
    /// then the run completes normally.
    #[test]
    fn watchdog_waits_out_transient_faults() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "patience", [(Coord::new(0, 0), Coord::new(1, 0))]);
        let faults = FaultPlan::none(3)
            .link_down(Coord::new(0, 0), Dir::East, 0, Some(200))
            .compile();
        let config = SimConfig {
            watchdog: Some(10),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, config, faults);
        let steps = sim.run(1000).expect("fault lifts; not a deadlock");
        assert_eq!(steps, 201);
    }

    /// A node stalled from step 0 does not inject its static packet until
    /// the stall lifts.
    #[test]
    fn stall_at_step_zero_blocks_injection() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "held", [(Coord::new(0, 0), Coord::new(1, 0))]);
        let faults = FaultPlan::none(3)
            .stall(Coord::new(0, 0), 0, Some(4))
            .compile();
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, SimConfig::default(), faults);
        assert_eq!(sim.loc(mesh_traffic::PacketId(0)), Loc::Pending);
        let steps = sim.run(100).unwrap();
        assert!(steps >= 5, "stall held injection, took {steps}");
        assert!(sim.done());
    }
}

mod stats_tests {
    use super::*;
    use crate::router::Dx;
    use mesh_topo::Mesh;

    #[test]
    fn stats_accessors_are_consistent() {
        // Reuse the greedy test router defined in `tests`.
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 21);
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 64 }), &pb);
        sim.run(10_000).unwrap();
        let d = sim.latency_distribution();
        assert_eq!(d.count, 64);
        assert!(d.max as u64 <= sim.steps());
        assert!(d.min >= 1 || pb.packets.iter().any(|p| p.src == p.dst));
        let map = sim.congestion_map();
        assert_eq!(map.values.len(), 64);
        assert_eq!(
            map.values.iter().copied().max().unwrap(),
            sim.report().max_node_load
        );
        let curve = sim.delivery_curve();
        assert_eq!(
            curve.per_step.iter().map(|&c| c as usize).sum::<usize>(),
            64
        );
        assert_eq!(
            curve.completion_step(64, 1.0),
            Some(sim.report().max_latency)
        );
    }
}

mod conservation_tests {
    use super::*;
    use crate::router::Dx;
    use mesh_topo::{Mesh, Topology};
    use mesh_traffic::workloads;

    /// Packet conservation: at every step, delivered + in-network + pending
    /// partitions the packet set, and queue contents are globally consistent
    /// with per-packet locations.
    #[test]
    fn packets_are_conserved_every_step() {
        let topo = Mesh::new(12);
        let pb = workloads::dynamic_bernoulli(12, 0.05, 40, 3);
        let mut sim = Sim::new(&topo, Dx::new(super::tests::Greedy { k: 3 }), &pb);
        for _ in 0..600 {
            let done = sim.step();
            let mut delivered = 0;
            let mut in_network = 0;
            let mut pending = 0;
            let mut lost = 0;
            for i in 0..sim.num_packets() {
                match sim.loc(mesh_traffic::PacketId(i as u32)) {
                    Loc::Delivered => delivered += 1,
                    Loc::At(c) => {
                        in_network += 1;
                        // The node's queues must actually contain it.
                        assert!(
                            sim.packets_at(c)
                                .any(|p| p == mesh_traffic::PacketId(i as u32)),
                            "packet {i} location desynchronized"
                        );
                    }
                    Loc::Pending => pending += 1,
                    Loc::Lost => lost += 1,
                    Loc::Shed | Loc::Expired => {
                        panic!("packet {i} shed/expired under the closed-system default policy")
                    }
                }
            }
            assert_eq!(delivered + in_network + pending + lost, sim.num_packets());
            assert_eq!(delivered, sim.delivered());
            assert_eq!(lost, sim.lost());
            assert_eq!(lost, 0, "no lossy faults in this plan");
            // And the reverse: every queued id maps back to that node.
            for c in topo.coords() {
                for p in sim.packets_at(c) {
                    assert_eq!(sim.loc(p), Loc::At(c));
                }
            }
            if done {
                break;
            }
        }
        assert!(sim.done(), "dynamic traffic should drain");
    }

    /// Moves are monotone: total_moves never decreases and increases by at
    /// most one per directed link per step (4·n² absolute cap).
    #[test]
    fn move_accounting_is_bounded_per_step() {
        let topo = Mesh::new(10);
        let pb = workloads::random_permutation(10, 5);
        let mut sim = Sim::new(&topo, Dx::new(super::tests::Greedy { k: 100 }), &pb);
        let mut last = 0;
        while !sim.step() {
            let now = sim.report().total_moves;
            assert!(now >= last);
            assert!(now - last <= 4 * 100, "more moves than links in a step");
            last = now;
            assert!(
                sim.steps() <= 10_000,
                "did not finish within 10000 steps: {}",
                sim.diagnostics()
            );
        }
    }
}

mod chaos_tests {
    //! Fuzzing the engine with a "chaos router": a deterministic but
    //! arbitrary-looking destination-exchangeable policy (decisions from a
    //! hash of step/node/packet data). Whatever the policy does, the engine
    //! must uphold the model: one packet per link, capacity bounds, packet
    //! conservation, minimality of scheduled moves.

    use super::*;
    use crate::queue::QueueArch;
    use crate::router::{Dx, DxRouter};
    use crate::view::DxView;
    use mesh_topo::{Mesh, ALL_DIRS};
    use mesh_traffic::workloads;

    struct Chaos {
        seed: u64,
        k: u32,
    }

    fn hash(mut x: u64) -> u64 {
        // splitmix64
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    impl DxRouter for Chaos {
        type NodeState = u64;

        fn name(&self) -> String {
            format!("chaos({})", self.seed)
        }

        fn queue_arch(&self) -> QueueArch {
            QueueArch::Central { k: self.k }
        }

        fn outqueue(
            &self,
            step: u64,
            node: Coord,
            state: &mut u64,
            pkts: &[DxView],
            out: &mut [Option<usize>; 4],
        ) {
            *state = hash(*state ^ step);
            for (i, p) in pkts.iter().enumerate() {
                let dirs: Vec<_> = p.profitable.iter().collect();
                if dirs.is_empty() {
                    continue;
                }
                let h = hash(
                    self.seed ^ step ^ ((node.x as u64) << 32) ^ node.y as u64 ^ p.id.0 as u64,
                );
                // Sometimes refuse to schedule at all.
                if h.is_multiple_of(5) {
                    continue;
                }
                let d = dirs[(h as usize / 7) % dirs.len()];
                if out[d.index()].is_none() {
                    out[d.index()] = Some(i);
                }
            }
        }

        fn inqueue(
            &self,
            step: u64,
            node: Coord,
            _state: &mut u64,
            residents: &[DxView],
            arrivals: &[crate::view::Arrival<DxView>],
            accept: &mut [bool],
        ) {
            let mut room = (self.k as usize).saturating_sub(residents.len());
            for (i, a) in arrivals.iter().enumerate() {
                let h = hash(
                    self.seed ^ step ^ node.x as u64 ^ ((node.y as u64) << 16) ^ a.view.id.0 as u64,
                );
                if room > 0 && !h.is_multiple_of(3) {
                    accept[i] = true;
                    room -= 1;
                }
            }
        }

        fn end_of_step(
            &self,
            step: u64,
            _node: Coord,
            _state: &mut u64,
            _residents: &[DxView],
            states: &mut [u64],
        ) {
            for s in states.iter_mut() {
                *s = hash(*s ^ step);
            }
        }
    }

    #[test]
    fn engine_invariants_hold_under_arbitrary_policies() {
        for seed in 0..8u64 {
            for k in [1u32, 2, 5] {
                for tile_threads in [1usize, 4] {
                    let topo = Mesh::new(9);
                    let pb = workloads::random_partial_permutation(9, 0.6, seed);
                    let config = SimConfig {
                        tile_threads,
                        ..SimConfig::default()
                    };
                    let mut sim = Sim::with_config(&topo, Dx::new(Chaos { seed, k }), &pb, config);
                    // Chaos may never finish; run a bounded window. The
                    // engine's internal validation (capacity, minimality, one
                    // packet per link) panics on any violation — and the
                    // occupancy-within-capacity audit must hold after *every*
                    // step, not just at the end.
                    for _ in 0..600 {
                        let done = sim.step();
                        sim.assert_queue_invariants();
                        if done {
                            break;
                        }
                    }
                    let r = sim.report();
                    assert!(r.max_queue <= k, "seed={seed} k={k}");
                    assert!(r.delivered <= r.total_packets);
                    // Moves of delivered packets are exactly their distances
                    // (minimal moves only) — undelivered ones are en route,
                    // so total moves never exceeds total work.
                    assert!(r.total_moves <= pb.total_work());
                }
            }
        }
    }

    #[test]
    fn chaos_runs_are_reproducible() {
        let topo = Mesh::new(9);
        let pb = workloads::random_partial_permutation(9, 0.5, 3);
        let run = |seed| {
            let mut sim = Sim::new(&topo, Dx::new(Chaos { seed, k: 2 }), &pb);
            let _ = sim.run(400);
            sim.packet_snapshot()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different chaos seeds should diverge");
    }

    #[test]
    fn chaos_respects_link_exclusivity() {
        // Count arrivals per (node, from) per step via a hook: at most one.
        let topo = Mesh::new(9);
        let pb = workloads::random_partial_permutation(9, 0.8, 11);
        let mut sim = Sim::new(&topo, Dx::new(Chaos { seed: 5, k: 3 }), &pb);
        let mut hook = |ctx: &mut crate::hook::HookCtx<'_>| {
            let mut seen = std::collections::HashSet::new();
            for m in ctx.moves {
                assert!(
                    seen.insert((m.from, m.travel)),
                    "two packets scheduled on one link"
                );
                for d in ALL_DIRS {
                    let _ = d;
                }
            }
        };
        let _ = sim.run_with_hook(400, &mut hook);
    }
}

mod loss_and_protocol_tests {
    //! Lossy links, runtime spawning, and the protocol driving loop.

    use super::*;
    use crate::protocol::{ProtocolControl, ProtocolHook, StepEvents};
    use crate::router::Dx;
    use mesh_faults::FaultPlan;
    use mesh_topo::Mesh;
    use mesh_traffic::RoutingProblem;

    fn one_packet(n: u32, src: Coord, dst: Coord) -> RoutingProblem {
        RoutingProblem::from_pairs(n, "one", [(src, dst)])
    }

    #[test]
    fn lossy_link_destroys_the_packet_in_flight() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(1, 0), Dir::East, 0, None)
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig {
                watchdog: Some(8),
                ..SimConfig::default()
            },
            faults,
        );
        // Step 1: (0,0) -> (1,0). Step 2: transmitted over the lossy link,
        // destroyed.
        assert!(!sim.step());
        assert_eq!(sim.loc(PacketId(0)), Loc::At(Coord::new(1, 0)));
        assert!(!sim.step());
        assert_eq!(sim.loc(PacketId(0)), Loc::Lost);
        assert_eq!(sim.lost(), 1);
        assert_eq!(sim.last_step_losses(), &[PacketId(0)]);
        assert_eq!(sim.packet_hops()[0], 2, "the fatal hop counts");
        assert_eq!(sim.report().total_moves, 2);
        assert!(sim.packets_at(Coord::new(1, 0)).next().is_none());
        // The run can never finish; the watchdog reports the wedge and the
        // diagnostics account for the loss.
        let err = sim.run(1_000).unwrap_err();
        let snap = err.snapshot();
        assert_eq!(snap.lost, 1);
        assert_eq!(snap.pending, 0);
        assert!(snap.stuck.is_empty());
        assert!(err.to_string().contains("1 lost to faulty links"), "{err}");
    }

    #[test]
    fn loss_interval_boundaries_are_respected() {
        // The same route, but the loss interval ends before the packet
        // reaches the link: it crosses unharmed.
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(1, 0), Dir::East, 0, Some(1))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig::default(),
            faults,
        );
        assert_eq!(sim.run(100).unwrap(), 3);
        assert_eq!(sim.lost(), 0);
    }

    #[test]
    fn down_takes_precedence_over_lossy_on_the_same_link() {
        // A link both down and lossy blocks the move (packet survives at
        // its sender) rather than eating the packet.
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(2, 0));
        let faults = FaultPlan::none(4)
            .link_down(Coord::new(1, 0), Dir::East, 0, Some(5))
            .lossy(Coord::new(1, 0), Dir::East, 0, Some(5))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig::default(),
            faults,
        );
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.loc(PacketId(0)), Loc::At(Coord::new(1, 0)));
        assert_eq!(sim.lost(), 0);
        assert!(sim.run(100).is_ok(), "delivers after the fault lifts");
    }

    #[test]
    fn spawn_injects_like_any_other_packet() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 3));
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 4 }), &pb);
        sim.step();
        let id = sim.spawn(Coord::new(3, 0), Coord::new(0, 0), sim.steps());
        assert_eq!(id, PacketId(1));
        assert_eq!(sim.num_packets(), 2);
        assert_eq!(sim.loc(id), Loc::Pending);
        sim.run(100).unwrap();
        assert!(sim.done());
        assert_eq!(sim.delivered(), 2);
        assert!(sim.delivered_step(id).unwrap() >= 2);
        // Deliveries surfaced through the per-step events as they happened.
        assert_eq!(sim.last_step_deliveries().len(), 1);
    }

    #[test]
    #[should_panic(expected = "spawn at step")]
    fn spawn_rejects_past_injection_times() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 3));
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 4 }), &pb);
        sim.step();
        sim.spawn(Coord::new(0, 0), Coord::new(1, 1), 0);
    }

    #[test]
    fn deferred_injections_are_counted() {
        // k = 1 and three same-source packets: two wait outside the network
        // on the first step.
        let n = 4;
        let topo = Mesh::new(n);
        let s = Coord::new(0, 0);
        let pb = RoutingProblem::from_pairs(
            n,
            "burst",
            [
                (s, Coord::new(3, 0)),
                (s, Coord::new(3, 1)),
                (s, Coord::new(3, 2)),
            ],
        );
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 1 }), &pb);
        assert_eq!(sim.deferred_injections(), 2, "two deferred at t=0");
        assert!(!sim.injections_exhausted());
        sim.run(100).unwrap();
        assert!(sim.injections_exhausted());
        assert!(sim.report().deferred_injections >= 2);
    }

    /// A deliberately minimal transport: resend every lost packet once per
    /// loss event, succeed when everything (original or resend) arrived.
    struct Resend {
        outstanding: usize,
    }

    impl ProtocolHook for Resend {
        fn on_step<T: Topology, R: Router>(
            &mut self,
            sim: &mut Sim<'_, T, R>,
            events: &StepEvents,
        ) -> ProtocolControl {
            self.outstanding -= events.delivered.len();
            for &p in &events.lost {
                let (src, dst) = (sim.src(p), sim.dst(p));
                sim.spawn(src, dst, events.step);
            }
            if self.outstanding == 0 {
                ProtocolControl::Done
            } else {
                ProtocolControl::Continue {
                    outstanding: self.outstanding,
                }
            }
        }
    }

    #[test]
    fn run_with_protocol_recovers_a_lost_packet() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        // Lossy only during the first crossing; the resend gets through.
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(1, 0), Dir::East, 0, Some(2))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig {
                watchdog: Some(16),
                ..SimConfig::default()
            },
            faults,
        );
        let mut proto = Resend { outstanding: 1 };
        let steps = sim.run_with_protocol(1_000, &mut proto).unwrap();
        assert_eq!(sim.lost(), 1);
        assert_eq!(sim.delivered(), 1);
        assert_eq!(sim.num_packets(), 2, "one original + one resend");
        assert!(steps > 3, "loss plus resend costs extra steps");
    }

    #[test]
    fn run_with_protocol_reports_livelock_when_starved() {
        // Permanently lossy link on the only minimal path: every resend is
        // eaten too. The protocol-aware watchdog must flag the wedge (as
        // delivery starvation) instead of waiting forever on the endless
        // resend activity.
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(0, 0), Dir::East, 0, None)
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig {
                watchdog: Some(12),
                ..SimConfig::default()
            },
            faults,
        );
        let mut proto = Resend { outstanding: 1 };
        let err = sim.run_with_protocol(10_000, &mut proto).unwrap_err();
        assert!(matches!(err, SimError::Livelock(_)), "got {err}");
        assert!(err.snapshot().lost >= 1);
    }
}

mod steady_tests {
    use super::*;
    use crate::router::Dx;
    use crate::sim::AdmissionPolicy;
    use crate::snapshot::MemorySink;
    use crate::steady::SteadyConfig;
    use mesh_topo::Mesh;
    use mesh_traffic::workloads;

    fn config(admission: AdmissionPolicy) -> SimConfig {
        SimConfig {
            admission,
            watchdog: Some(64),
            ..SimConfig::default()
        }
    }

    #[test]
    fn sub_saturation_run_measures_all_windows() {
        let topo = Mesh::new(8);
        let cfg = SteadyConfig {
            warmup: 32,
            window: 32,
            windows: 3,
        };
        let pb = workloads::open_bernoulli(8, 0.05, cfg.horizon(), 11);
        let mut sim = Sim::with_config(
            &topo,
            Dx::new(tests::Greedy { k: 3 }),
            &pb,
            config(AdmissionPolicy::DeferIndefinitely),
        );
        let rep = sim.run_steady(cfg).expect("sub-saturation steady run");
        assert_eq!(rep.frames.len(), 3);
        assert!(rep.goodput() > 0.0, "λ=0.05 must deliver");
        for f in &rep.frames {
            assert_eq!(f.shed + f.expired, 0, "closed-system policy never sheds");
            assert!(f.end_step > f.start_step);
        }
        assert!(rep.latency.count > 0);
        sim.assert_conservation();
    }

    #[test]
    fn overloaded_reject_new_sheds_and_stays_live() {
        let topo = Mesh::new(6);
        let cfg = SteadyConfig {
            warmup: 32,
            window: 32,
            windows: 3,
        };
        // λ = 2.0: two packets per node per step, far past saturation.
        let pb = workloads::open_bernoulli(6, 2.0, cfg.horizon(), 7);
        let mut sim = Sim::with_config(
            &topo,
            Dx::new(tests::Greedy { k: 2 }),
            &pb,
            config(AdmissionPolicy::RejectNew),
        );
        let rep = sim
            .run_steady(cfg)
            .expect("overload watchdog must not trip while shedding");
        assert!(sim.shed() > 0, "2x saturation under RejectNew must shed");
        assert_eq!(
            sim.pending_injections(),
            0,
            "RejectNew never leaves an edge backlog"
        );
        assert!(rep.goodput() > 0.0, "saturated but making progress");
        sim.assert_conservation();
        let r = sim.report();
        assert_eq!(r.shed, sim.shed());
        assert_eq!(r.expired, 0);
    }

    #[test]
    fn deadline_expiry_expires_stale_staged_packets() {
        let topo = Mesh::new(6);
        let cfg = SteadyConfig {
            warmup: 32,
            window: 32,
            windows: 3,
        };
        let pb = workloads::open_bernoulli(6, 1.5, cfg.horizon(), 9);
        let mut sim = Sim::with_config(
            &topo,
            Dx::new(tests::Greedy { k: 2 }),
            &pb,
            config(AdmissionPolicy::DeadlineExpiry { ttl: 4 }),
        );
        sim.run_steady(cfg).expect("expiry keeps the run live");
        assert!(sim.expired() > 0, "stale staged packets must expire");
        assert_eq!(sim.shed(), 0, "expiry is not shedding");
        sim.assert_conservation();
    }

    #[test]
    fn drop_oldest_bounds_the_edge_backlog_every_step() {
        let topo = Mesh::new(6);
        let horizon = 120;
        let pb = workloads::open_bernoulli(6, 1.5, horizon, 13);
        let max_deferred = 2u32;
        let mut sim = Sim::with_config(
            &topo,
            Dx::new(tests::Greedy { k: 2 }),
            &pb,
            config(AdmissionPolicy::DropOldestDeferred { max_deferred }),
        );
        let cap = max_deferred as usize * 36;
        for _ in 0..horizon {
            sim.step();
            assert!(
                sim.pending_injections() <= cap,
                "edge backlog {} exceeds bound {cap}",
                sim.pending_injections()
            );
            sim.assert_conservation();
            sim.assert_queue_invariants();
        }
        assert!(sim.shed() > 0, "1.5x saturation must evict oldest");
    }

    #[test]
    fn diagnostics_surface_overload_counters() {
        let topo = Mesh::new(6);
        let pb = workloads::open_bernoulli(6, 2.0, 64, 3);
        let mut sim = Sim::with_config(
            &topo,
            Dx::new(tests::Greedy { k: 2 }),
            &pb,
            config(AdmissionPolicy::RejectNew),
        );
        for _ in 0..64 {
            sim.step();
        }
        let d = sim.diagnostics();
        assert_eq!(d.shed, sim.shed());
        assert!(d.shed > 0);
        assert_eq!(d.offered, sim.offered());
        let text = d.to_string();
        assert!(text.contains("overload:"), "got: {text}");
        assert!(text.contains("offered rate"), "got: {text}");
    }

    #[test]
    fn steady_resume_mid_soak_is_byte_identical() {
        let topo = Mesh::new(6);
        let cfg = SteadyConfig {
            warmup: 24,
            window: 24,
            windows: 4,
        };
        let pb = workloads::open_bernoulli(6, 0.4, cfg.horizon(), 21);
        let mk_config = || SimConfig {
            admission: AdmissionPolicy::DeadlineExpiry { ttl: 16 },
            watchdog: Some(64),
            checkpoint_every: Some(10),
            ..SimConfig::default()
        };
        let mut full_sink = MemorySink::default();
        let mut sim = Sim::with_config(&topo, Dx::new(tests::Greedy { k: 2 }), &pb, mk_config());
        let full = sim
            .run_steady_checkpointed(cfg, 0.4, None, &mut full_sink, None)
            .expect("full soak");
        let full_json = serde_json::to_string(&full).unwrap();
        let full_report = serde_json::to_string(&sim.report()).unwrap();
        assert!(
            !full_sink.checkpoints.is_empty(),
            "cadence 10 must checkpoint"
        );
        // Every steady checkpoint carries its environment block (v2).
        for snap in &full_sink.checkpoints {
            let env = snap.steady.expect("steady checkpoint must stamp env");
            assert_eq!(env.lambda, 0.4);
            assert_eq!(env.config, cfg);
        }
        // Resume from every checkpoint (warmup, mid-window, boundary) and
        // demand the identical report each time.
        for snap in &full_sink.checkpoints {
            let mut resumed = Sim::restore(
                &topo,
                Dx::new(tests::Greedy { k: 2 }),
                mk_config(),
                None,
                snap,
            )
            .expect("restore mid-soak checkpoint");
            let mut sink = MemorySink::default();
            let rep = resumed
                .run_steady_checkpointed(cfg, 0.4, snap.protocol.as_ref(), &mut sink, None)
                .expect("resumed soak");
            assert_eq!(
                serde_json::to_string(&rep).unwrap(),
                full_json,
                "resume from step {} diverged",
                snap.step
            );
            assert_eq!(
                serde_json::to_string(&resumed.report()).unwrap(),
                full_report,
                "final report after resume from step {} diverged",
                snap.step
            );
        }
    }

    #[test]
    fn restore_rejects_admission_policy_mismatch() {
        let topo = Mesh::new(6);
        let pb = workloads::open_bernoulli(6, 0.3, 40, 5);
        let cfg = SimConfig {
            admission: AdmissionPolicy::RejectNew,
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, Dx::new(tests::Greedy { k: 2 }), &pb, cfg);
        for _ in 0..10 {
            sim.step();
        }
        let snap = sim.snapshot();
        let res = Sim::restore(
            &topo,
            Dx::new(tests::Greedy { k: 2 }),
            SimConfig::default(),
            None,
            &snap,
        );
        match res {
            Err(crate::snapshot::SnapshotError::Mismatch(_)) => {}
            Err(other) => panic!("wrong error kind: {other}"),
            Ok(_) => panic!("restore must reject an admission-policy mismatch"),
        }
    }

    #[test]
    fn tiled_steady_run_is_byte_identical_to_sequential() {
        let topo = Mesh::new(8);
        let cfg = SteadyConfig {
            warmup: 24,
            window: 24,
            windows: 3,
        };
        let pb = workloads::open_bernoulli(8, 1.2, cfg.horizon(), 17);
        let mut base: Option<String> = None;
        for tile_threads in [1usize, 2, 4] {
            let mut sim = Sim::with_config(
                &topo,
                Dx::new(tests::Greedy { k: 2 }),
                &pb,
                SimConfig {
                    admission: AdmissionPolicy::DropOldestDeferred { max_deferred: 3 },
                    watchdog: Some(64),
                    tile_threads,
                    ..SimConfig::default()
                },
            );
            let rep = sim.run_steady(cfg).expect("steady run");
            let j = format!(
                "{}|{}",
                serde_json::to_string(&rep).unwrap(),
                serde_json::to_string(&sim.report()).unwrap()
            );
            match &base {
                None => base = Some(j),
                Some(b) => assert_eq!(&j, b, "tile_threads={tile_threads} diverged"),
            }
        }
    }
}
