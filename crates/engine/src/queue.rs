//! Queue architectures: central queues (§2) and per-inlink queues (§5,
//! Theorem 15).

use mesh_topo::Dir;
use serde::{Deserialize, Serialize};

/// Which queue within a node a packet occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// The single central queue of the §2 model.
    Central,
    /// The inlink queue at the given side of the node: `Inlink(North)` holds
    /// packets that entered across the link *from the northern neighbor*
    /// (i.e. packets travelling south) — the paper's "North queue"
    /// (Theorem 15).
    Inlink(Dir),
    /// Packets that originate at the node and have not yet been transmitted,
    /// in the per-inlink architecture (which has no central queue to start
    /// them in). Capacity is not bounded by `k`; for a permutation it never
    /// holds more than the one originating packet.
    Injection,
}

impl QueueKind {
    /// Dense per-node index: 0 for the central queue (or `Inlink(North)`),
    /// 1–3 the other inlink queues, 4 the injection queue. Stable across a
    /// run — usable as an array index when bucketing per-queue counts.
    pub fn slot(self) -> usize {
        match self {
            QueueKind::Central => 0,
            QueueKind::Inlink(d) => d.index(),
            QueueKind::Injection => 4,
        }
    }
}

/// The queue architecture of every node in a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueArch {
    /// One central queue of capacity `k ≥ 1` per node (§2 model). Packets
    /// originating at a node start in its central queue.
    Central { k: u32 },
    /// Four inlink queues of capacity `k ≥ 1` each (§5 "Other Queue Types",
    /// used by Theorem 15), plus an injection queue for originating packets.
    PerInlink { k: u32 },
}

impl QueueArch {
    /// The per-queue capacity parameter `k`.
    pub fn k(self) -> u32 {
        match self {
            QueueArch::Central { k } | QueueArch::PerInlink { k } => k,
        }
    }

    /// The queue an arriving packet joins, given its direction of travel.
    pub fn arrival_queue(self, travel: Dir) -> QueueKind {
        match self {
            QueueArch::Central { .. } => QueueKind::Central,
            // Travelling north means entering from the southern side.
            QueueArch::PerInlink { .. } => QueueKind::Inlink(travel.opposite()),
        }
    }

    /// The queue an originating packet starts in.
    pub fn origin_queue(self) -> QueueKind {
        match self {
            QueueArch::Central { .. } => QueueKind::Central,
            QueueArch::PerInlink { .. } => QueueKind::Injection,
        }
    }

    /// Capacity of a given queue kind (`None` = unbounded).
    pub fn capacity(self, kind: QueueKind) -> Option<u32> {
        match (self, kind) {
            (QueueArch::Central { k }, QueueKind::Central) => Some(k),
            (QueueArch::PerInlink { k }, QueueKind::Inlink(_)) => Some(k),
            (_, QueueKind::Injection) => None,
            // Mixed combinations never occur; treat as unbounded for safety.
            _ => None,
        }
    }

    /// Number of queue slots a node needs under this architecture.
    pub(crate) fn num_slots(self) -> usize {
        match self {
            QueueArch::Central { .. } => 1,
            QueueArch::PerInlink { .. } => 5,
        }
    }

    /// The [`QueueKind`] stored at a dense slot index — the inverse of
    /// [`QueueKind::slot`] and the single source of the slot↔kind mapping
    /// the queue arena indexes by.
    pub(crate) fn slot_kind(self, slot: usize) -> QueueKind {
        match (self, slot) {
            (QueueArch::Central { .. }, _) => QueueKind::Central,
            (QueueArch::PerInlink { .. }, 4) => QueueKind::Injection,
            (QueueArch::PerInlink { .. }, s) => QueueKind::Inlink(Dir::from_index(s)),
        }
    }

    /// Initial arena capacity of a slot: bounded queues get exactly `k`
    /// inline cells (they can never legally exceed it), and the unbounded
    /// injection queue starts at `k` cells — the arena rebuilds itself
    /// with a doubled slot if open-system staging ever outruns that.
    pub(crate) fn initial_slot_cap(self, slot: usize) -> u32 {
        self.capacity(self.slot_kind(slot))
            .unwrap_or_else(|| self.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_queue_is_entry_side() {
        let a = QueueArch::PerInlink { k: 2 };
        // Travelling north = entering from the south side.
        assert_eq!(a.arrival_queue(Dir::North), QueueKind::Inlink(Dir::South));
        assert_eq!(a.arrival_queue(Dir::South), QueueKind::Inlink(Dir::North));
        let c = QueueArch::Central { k: 2 };
        assert_eq!(c.arrival_queue(Dir::East), QueueKind::Central);
    }

    #[test]
    fn capacities() {
        let c = QueueArch::Central { k: 3 };
        assert_eq!(c.capacity(QueueKind::Central), Some(3));
        let p = QueueArch::PerInlink { k: 2 };
        assert_eq!(p.capacity(QueueKind::Inlink(Dir::West)), Some(2));
        assert_eq!(p.capacity(QueueKind::Injection), None);
        assert_eq!(c.k(), 3);
        assert_eq!(p.k(), 2);
    }

    #[test]
    fn origin_queues() {
        assert_eq!(
            QueueArch::Central { k: 1 }.origin_queue(),
            QueueKind::Central
        );
        assert_eq!(
            QueueArch::PerInlink { k: 1 }.origin_queue(),
            QueueKind::Injection
        );
    }

    #[test]
    fn slots_are_distinct() {
        let kinds = [
            QueueKind::Inlink(Dir::North),
            QueueKind::Inlink(Dir::East),
            QueueKind::Inlink(Dir::South),
            QueueKind::Inlink(Dir::West),
            QueueKind::Injection,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for (j, b) in kinds.iter().enumerate() {
                assert_eq!(a.slot() == b.slot(), i == j);
            }
        }
    }
}
