//! Failure diagnostics: what the simulation looked like when it got stuck.
//!
//! A [`SimError`](crate::SimError) carries a [`DiagnosticSnapshot`] instead
//! of bare counters, so a failed run can explain *which* packets are stuck
//! *where*, how full every node is, and which faults were active — the
//! information needed to tell a router bug from an injected partition.

use mesh_faults::ActiveFault;
use mesh_topo::Coord;
use mesh_traffic::PacketId;
use serde::{Deserialize, Serialize};

/// One undelivered, in-network packet at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckPacket {
    pub id: PacketId,
    /// The node whose queue holds the packet.
    pub at: Coord,
    /// Its (current, post-exchange) destination.
    pub dst: Coord,
    /// Link traversals it managed before getting stuck.
    pub hops: u32,
}

/// Occupancy of one non-empty node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeOccupancy {
    pub node: Coord,
    /// Packets across all the node's queues — read straight off the queue
    /// arena's per-node load index (DESIGN.md §14), so building a snapshot
    /// of a large, mostly-empty mesh costs one word per node.
    pub load: u32,
}

/// The state of a simulation at the moment a run failed (step cap, deadlock,
/// or livelock). Serializable, so chaos sweeps can persist outcomes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DiagnosticSnapshot {
    /// Steps executed when the snapshot was taken.
    pub step: u64,
    pub delivered: usize,
    pub total: usize,
    /// Packets still outside the network (waiting for injection or queue
    /// space at their source).
    pub pending: usize,
    /// Packets destroyed by lossy links — undeliverable without a
    /// retransmission layer.
    pub lost: usize,
    /// Packets rejected at the injection edge by admission control.
    pub shed: usize,
    /// Packets whose deadline passed while staged at the injection edge.
    pub expired: usize,
    /// Packets currently staged at injection edges — due but not yet
    /// admitted (the instantaneous backlog, not the cumulative
    /// packet-step counter).
    pub deferred: usize,
    /// Packets whose injection time had been reached when the snapshot
    /// was taken; `offered / step` is the realized offered rate.
    pub offered: usize,
    /// Every undelivered in-network packet: id, location, destination, hops.
    pub stuck: Vec<StuckPacket>,
    /// Queue occupancy of every non-empty node.
    pub occupancy: Vec<NodeOccupancy>,
    /// Faults active at `step` (empty when running without a fault plan).
    pub active_faults: Vec<ActiveFault>,
}

impl DiagnosticSnapshot {
    /// Undelivered packets, in-network and pending combined.
    pub fn undelivered(&self) -> usize {
        self.total - self.delivered
    }
}

/// How many stuck packets / hot nodes / faults `Display` spells out before
/// eliding. One limit for every list, so every rendering of a snapshot —
/// `SimError` messages, panic messages, log lines — elides the same way.
const DISPLAY_LIMIT: usize = 8;

impl core::fmt::Display for DiagnosticSnapshot {
    /// The one human-readable rendering of a snapshot. `SimError`'s
    /// `Display` delegates here; nothing else in the workspace formats
    /// snapshots by hand.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "step {}: {}/{} delivered, {} stuck in network, {} pending",
            self.step,
            self.delivered,
            self.total,
            self.stuck.len(),
            self.pending
        )?;
        if self.lost > 0 {
            write!(f, ", {} lost to faulty links", self.lost)?;
        }
        // Overload segment: only open-system runs (admission control
        // shedding/expiring or an edge backlog) produce it, so closed-system
        // diagnostics render exactly as before.
        if self.shed > 0 || self.expired > 0 || self.deferred > 0 {
            write!(
                f,
                "; overload: {} shed, {} expired, {} deferred at edges",
                self.shed, self.expired, self.deferred
            )?;
            if self.step > 0 {
                write!(
                    f,
                    ", offered rate {:.3}/step",
                    self.offered as f64 / self.step as f64
                )?;
            }
        }
        if !self.stuck.is_empty() {
            write!(f, "; stuck:")?;
            for p in self.stuck.iter().take(DISPLAY_LIMIT) {
                write!(f, " #{} at {} -> {} ({} hops)", p.id.0, p.at, p.dst, p.hops)?;
            }
            if self.stuck.len() > DISPLAY_LIMIT {
                write!(f, " … and {} more", self.stuck.len() - DISPLAY_LIMIT)?;
            }
        }
        if !self.occupancy.is_empty() {
            // Hottest nodes first; ties resolve by grid order so the
            // rendering is deterministic.
            let mut hot: Vec<&NodeOccupancy> = self.occupancy.iter().collect();
            hot.sort_by_key(|o| (core::cmp::Reverse(o.load), o.node.y, o.node.x));
            write!(f, "; hottest:")?;
            for (i, o) in hot.iter().take(DISPLAY_LIMIT).enumerate() {
                write!(f, "{} {}={}", if i == 0 { "" } else { "," }, o.node, o.load)?;
            }
            if hot.len() > DISPLAY_LIMIT {
                write!(f, " … and {} more", hot.len() - DISPLAY_LIMIT)?;
            }
        }
        if !self.active_faults.is_empty() {
            write!(f, "; active faults:")?;
            for (i, fault) in self.active_faults.iter().take(DISPLAY_LIMIT).enumerate() {
                write!(f, "{} {fault}", if i == 0 { "" } else { "," })?;
            }
            if self.active_faults.len() > DISPLAY_LIMIT {
                write!(
                    f,
                    " … and {} more",
                    self.active_faults.len() - DISPLAY_LIMIT
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_elides_long_stuck_lists() {
        let snap = DiagnosticSnapshot {
            step: 100,
            delivered: 3,
            total: 20,
            pending: 2,
            lost: 0,
            shed: 0,
            expired: 0,
            deferred: 0,
            offered: 20,
            stuck: (0..15)
                .map(|i| StuckPacket {
                    id: PacketId(i),
                    at: Coord::new(i, 0),
                    dst: Coord::new(i, 5),
                    hops: 0,
                })
                .collect(),
            occupancy: vec![],
            active_faults: vec![],
        };
        let s = snap.to_string();
        assert!(s.contains("3/20 delivered"));
        assert!(s.contains("… and 7 more"), "got: {s}");
    }

    #[test]
    fn display_renders_losses_and_hottest_nodes() {
        let snap = DiagnosticSnapshot {
            step: 9,
            delivered: 5,
            total: 10,
            pending: 1,
            lost: 2,
            shed: 0,
            expired: 0,
            deferred: 0,
            offered: 10,
            stuck: vec![],
            occupancy: vec![
                NodeOccupancy {
                    node: Coord::new(0, 0),
                    load: 1,
                },
                NodeOccupancy {
                    node: Coord::new(3, 1),
                    load: 4,
                },
            ],
            active_faults: vec![],
        };
        let s = snap.to_string();
        assert!(s.contains("2 lost to faulty links"), "got: {s}");
        // Hottest node leads the occupancy list.
        assert!(s.contains("hottest: (3,1)=4, (0,0)=1"), "got: {s}");
    }

    #[test]
    fn display_renders_overload_segment_only_when_present() {
        let mut snap = DiagnosticSnapshot {
            step: 50,
            delivered: 40,
            total: 100,
            pending: 45,
            lost: 0,
            shed: 7,
            expired: 3,
            deferred: 5,
            offered: 60,
            stuck: vec![],
            occupancy: vec![],
            active_faults: vec![],
        };
        let s = snap.to_string();
        assert!(
            s.contains("overload: 7 shed, 3 expired, 5 deferred at edges"),
            "got: {s}"
        );
        assert!(s.contains("offered rate 1.200/step"), "got: {s}");
        // A closed-system snapshot renders without the segment.
        (snap.shed, snap.expired, snap.deferred) = (0, 0, 0);
        assert!(!snap.to_string().contains("overload:"));
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let snap = DiagnosticSnapshot {
            step: 7,
            delivered: 1,
            total: 2,
            pending: 0,
            lost: 0,
            shed: 1,
            expired: 2,
            deferred: 3,
            offered: 2,
            stuck: vec![StuckPacket {
                id: PacketId(1),
                at: Coord::new(0, 0),
                dst: Coord::new(3, 3),
                hops: 2,
            }],
            occupancy: vec![NodeOccupancy {
                node: Coord::new(0, 0),
                load: 1,
            }],
            active_faults: vec![],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: DiagnosticSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
