//! The open-system steady-state driver: windowed measurement of a
//! simulation under continuous injection (ROADMAP item 3, the overload
//! robustness layer).
//!
//! Closed-system runs (`run`, `run_with_hook`) terminate when every
//! packet is delivered; an open system never drains, so
//! [`Sim::run_steady`] terminates by *measurement schedule* instead: a
//! warmup of `warmup` steps (transients discarded), then `windows`
//! measurement windows of `window` steps each. Every window produces a
//! [`WindowFrame`] — offered/delivered/shed/expired/lost deltas, goodput,
//! and the p50/p99/p99.9 latency distribution of the deliveries that
//! completed inside it — and the run returns a [`SteadyReport`] pooling
//! the per-window frames.
//!
//! The driver plugs into the same [`RunObserver`] seam as every other run
//! flavor and arms the watchdog in [`WatchdogMode::Overload`]: arrivals
//! never stop, so the standard cursor-exhaustion gate would disarm it
//! forever, and a saturated run that keeps shedding counts as live.
//!
//! Checkpoint/resume composes exactly as for protocol runs: the
//! observer's measurement state (finished frames, the current window's
//! latency samples, counter bases) rides the snapshot's opaque `protocol`
//! slot, so a run killed mid-soak and resumed from its last checkpoint
//! reproduces the remaining frames — and the final report — byte for
//! byte.

use crate::driver::{run_driver, RunObserver, Verdict};
use crate::hook::NoHook;
use crate::router::Router;
use crate::sim::{Sim, SimError};
use crate::snapshot::{self, CheckpointSink, SteadySnap};
use crate::stats::Distribution;
use crate::watchdog::WatchdogMode;
use mesh_topo::Topology;
use serde::{Deserialize, Error, Serialize, Value};

/// Measurement schedule of a steady-state run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteadyConfig {
    /// Steps to run before measurement starts (transients discarded).
    pub warmup: u64,
    /// Steps per measurement window.
    pub window: u64,
    /// Number of measurement windows; the run ends after
    /// `warmup + windows * window` steps.
    pub windows: u32,
}

impl Default for SteadyConfig {
    fn default() -> Self {
        SteadyConfig {
            warmup: 128,
            window: 64,
            windows: 4,
        }
    }
}

impl SteadyConfig {
    /// Total steps the schedule runs: `warmup + windows * window`.
    pub fn horizon(&self) -> u64 {
        self.warmup + self.windows as u64 * self.window
    }
}

/// One measurement window's worth of steady-state observations.
#[derive(Clone, Debug, Serialize)]
pub struct WindowFrame {
    /// 0-based window index.
    pub index: u32,
    /// First step of the window (1-based, inclusive).
    pub start_step: u64,
    /// Last step of the window (inclusive; short on an early finish).
    pub end_step: u64,
    /// Packets whose injection time arrived during the window.
    pub offered: u64,
    /// Packets delivered during the window.
    pub delivered: u64,
    /// Packets shed by admission control during the window.
    pub shed: u64,
    /// Packets whose deadline expired (edge or in-network) during the
    /// window.
    pub expired: u64,
    /// Packets destroyed by lossy links during the window.
    pub lost: u64,
    /// Deliveries per step over the window.
    pub goodput: f64,
    /// Latency distribution (p50/p90/p99/p99.9) of the deliveries that
    /// completed inside the window.
    pub latency: Distribution,
    /// Number of latency samples behind the window's percentiles. Nearest-
    /// rank percentiles whose rank exceeds the sample count clamp to the
    /// max (a p999 from fewer than 1000 samples is really the window max),
    /// so consumers must treat sub-percentile windows as low-confidence.
    pub samples: usize,
}

impl Deserialize for WindowFrame {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let latency: Distribution = Deserialize::deserialize(v.field("latency")?)?;
        // Hand-written for v1 snapshot tolerance: frames checkpointed
        // before the `samples` field existed carry none; the latency
        // distribution's own count is the exact historical value.
        let samples = match v.field("samples")? {
            Value::Null => latency.count,
            other => Deserialize::deserialize(other)?,
        };
        Ok(WindowFrame {
            index: Deserialize::deserialize(v.field("index")?)?,
            start_step: Deserialize::deserialize(v.field("start_step")?)?,
            end_step: Deserialize::deserialize(v.field("end_step")?)?,
            offered: Deserialize::deserialize(v.field("offered")?)?,
            delivered: Deserialize::deserialize(v.field("delivered")?)?,
            shed: Deserialize::deserialize(v.field("shed")?)?,
            expired: Deserialize::deserialize(v.field("expired")?)?,
            lost: Deserialize::deserialize(v.field("lost")?)?,
            goodput: Deserialize::deserialize(v.field("goodput")?)?,
            latency,
            samples,
        })
    }
}

/// The outcome of a steady-state run: per-window frames plus the pooled
/// latency distribution over every measurement window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SteadyReport {
    pub frames: Vec<WindowFrame>,
    /// Latency distribution pooled over all measurement windows.
    pub latency: Distribution,
}

impl SteadyReport {
    /// Mean goodput (deliveries per step) over the measurement windows.
    pub fn goodput(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(|f| f.goodput).sum::<f64>() / self.frames.len() as f64
    }
}

/// Monotone counters sampled at a window boundary, for delta framing.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct CounterBase {
    offered: u64,
    delivered: u64,
    shed: u64,
    expired: u64,
    lost: u64,
}

impl CounterBase {
    fn sample<T: Topology, R: Router>(sim: &Sim<'_, T, R>) -> CounterBase {
        CounterBase {
            offered: sim.offered() as u64,
            delivered: sim.delivered() as u64,
            shed: sim.shed() as u64,
            expired: sim.expired() as u64,
            lost: sim.lost() as u64,
        }
    }
}

/// The serializable measurement state: everything the observer has
/// accumulated, so a checkpoint mid-soak resumes the remaining windows
/// byte-identically. Rides the snapshot's opaque `protocol` slot.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct SteadyState {
    frames: Vec<WindowFrame>,
    /// Latencies collected so far in the (unfinished) current window.
    cur_lat: Vec<u64>,
    /// Latencies pooled over the finished windows.
    pooled: Vec<u64>,
    base: Option<CounterBase>,
}

/// The steady-state [`RunObserver`]: collects per-delivery latencies,
/// closes a [`WindowFrame`] at every boundary, and finishes when the
/// schedule is complete (or the sim drains entirely — possible far below
/// saturation).
struct SteadyObserver {
    cfg: SteadyConfig,
    st: SteadyState,
}

impl SteadyObserver {
    fn new(cfg: SteadyConfig, state: Option<&Value>) -> Result<SteadyObserver, serde::Error> {
        let st = match state {
            Some(v) => SteadyState::deserialize(v)?,
            None => SteadyState::default(),
        };
        Ok(SteadyObserver { cfg, st })
    }

    /// Closes the current window as frame `index` ending at `end_step`.
    fn close_window<T: Topology, R: Router>(&mut self, sim: &Sim<'_, T, R>, end_step: u64) {
        let index = self.st.frames.len() as u32;
        let start_step = self.cfg.warmup + index as u64 * self.cfg.window + 1;
        let base = self
            .st
            .base
            .expect("measurement window closed without a counter base");
        let now = CounterBase::sample(sim);
        let span = end_step.saturating_sub(start_step - 1).max(1);
        let lat = std::mem::take(&mut self.st.cur_lat);
        self.st.frames.push(WindowFrame {
            index,
            start_step,
            end_step,
            offered: now.offered - base.offered,
            delivered: now.delivered - base.delivered,
            shed: now.shed - base.shed,
            expired: now.expired - base.expired,
            lost: now.lost - base.lost,
            goodput: (now.delivered - base.delivered) as f64 / span as f64,
            latency: Distribution::of(&lat),
            samples: lat.len(),
        });
        self.st.pooled.extend(lat);
        self.st.base = Some(now);
    }

    fn into_report(self) -> SteadyReport {
        SteadyReport {
            latency: Distribution::of(&self.st.pooled),
            frames: self.st.frames,
        }
    }

    /// The common per-step judgement for both runner flavors.
    fn judge<T: Topology, R: Router>(&mut self, sim: &Sim<'_, T, R>, done: bool) -> Verdict {
        let s = sim.steps();
        if s <= self.cfg.warmup {
            if s == self.cfg.warmup {
                self.st.base = Some(CounterBase::sample(sim));
            }
            // A sub-saturation run can drain entirely during warmup; the
            // schedule still defines the report (zero-delivery windows).
            if done {
                while self.st.frames.len() < self.cfg.windows as usize {
                    if self.st.base.is_none() {
                        self.st.base = Some(CounterBase::sample(sim));
                    }
                    let end = self.cfg.warmup + (self.st.frames.len() as u64 + 1) * self.cfg.window;
                    self.close_window(sim, end);
                }
                return Verdict::Finished;
            }
            return Verdict::Watch(WatchdogMode::Overload);
        }
        for &pid in sim.last_step_deliveries() {
            let d = sim.delivered_step(pid).unwrap_or(s);
            self.st.cur_lat.push(d.saturating_sub(sim.inject_step(pid)));
        }
        let in_measurement = s - self.cfg.warmup;
        if in_measurement.is_multiple_of(self.cfg.window) {
            self.close_window(sim, s);
            if self.st.frames.len() >= self.cfg.windows as usize {
                return Verdict::Finished;
            }
        } else if done {
            // Drained before the schedule completed: close the partial
            // window early so its deliveries are not lost.
            self.close_window(sim, s);
            return Verdict::Finished;
        }
        Verdict::Watch(WatchdogMode::Overload)
    }
}

/// Plain steady-state runner (no checkpointing).
struct SteadyRunner<'o> {
    obs: &'o mut SteadyObserver,
}

impl<T: Topology, R: Router> RunObserver<T, R> for SteadyRunner<'_> {
    fn begin(&mut self, sim: &mut Sim<'_, T, R>) -> Option<u64> {
        steady_begin(self.obs, sim)
    }

    fn step(&mut self, sim: &mut Sim<'_, T, R>) -> bool {
        sim.step_with_hook(&mut NoHook)
    }

    fn observe(&mut self, sim: &mut Sim<'_, T, R>, done: bool, _packets_before: usize) -> Verdict {
        self.obs.judge(sim, done)
    }
}

/// Steady-state runner with periodic checkpoints: the observer state is
/// serialized into each snapshot's `protocol` slot once the step fully
/// survives, so a resumed run replays the remaining windows exactly.
struct SteadyCheckpointRunner<'o, 's, S> {
    obs: &'o mut SteadyObserver,
    sink: &'s mut S,
    /// Environment block stamped into every checkpoint so a resume needs
    /// nothing beyond the snapshot itself.
    env: SteadySnap,
}

impl<T, R, S> RunObserver<T, R> for SteadyCheckpointRunner<'_, '_, S>
where
    T: Topology,
    R: Router,
    R::NodeState: Serialize,
    S: CheckpointSink,
{
    fn begin(&mut self, sim: &mut Sim<'_, T, R>) -> Option<u64> {
        steady_begin(self.obs, sim)
    }

    fn step(&mut self, sim: &mut Sim<'_, T, R>) -> bool {
        sim.step_with_hook(&mut NoHook)
    }

    fn observe(&mut self, sim: &mut Sim<'_, T, R>, done: bool, _packets_before: usize) -> Verdict {
        self.obs.judge(sim, done)
    }

    fn survived(&mut self, sim: &mut Sim<'_, T, R>) {
        let st = &self.obs.st;
        snapshot::maybe_checkpoint(sim, self.sink, Some(self.env), || Some(st.serialize()));
    }
}

/// Shared pre-loop action: a fresh observer on a sim already at or past
/// the warmup boundary (warmup 0, or a resume whose checkpoint landed
/// exactly on it before the base was recorded) needs its counter base.
fn steady_begin<T: Topology, R: Router>(
    obs: &mut SteadyObserver,
    sim: &mut Sim<'_, T, R>,
) -> Option<u64> {
    if sim.steps() >= obs.cfg.warmup && obs.st.base.is_none() {
        obs.st.base = Some(CounterBase::sample(sim));
    }
    None
}

impl<'t, T: Topology, R: Router> Sim<'t, T, R> {
    /// Runs the open-system steady-state schedule: `cfg.warmup` steps of
    /// discarded transients, then `cfg.windows` measurement windows of
    /// `cfg.window` steps, each yielding a [`WindowFrame`]. The watchdog
    /// (when [`SimConfig::watchdog`](crate::SimConfig::watchdog) is set)
    /// runs in overload mode: saturation with shedding never trips it,
    /// a window with no delivery/shed/expiry at all does.
    pub fn run_steady(&mut self, cfg: SteadyConfig) -> Result<SteadyReport, SimError> {
        assert!(cfg.window >= 1 && cfg.windows >= 1, "empty steady schedule");
        let mut obs = SteadyObserver::new(cfg, None).expect("fresh state is infallible");
        run_driver(self, cfg.horizon(), &mut SteadyRunner { obs: &mut obs })?;
        Ok(obs.into_report())
    }

    /// [`Sim::run_steady`] with crash-safe checkpointing (and resume).
    ///
    /// `lambda` is the offered-load label of the open workload; together
    /// with `cfg` it is stamped into every checkpoint's `steady` block,
    /// so `--resume-from` needs no re-passed schedule flags.
    ///
    /// `state` is `None` for a fresh run, or the `protocol` slot of the
    /// snapshot this sim was [restored](Sim::restore) from — the
    /// observer's windowed measurement state rides there, so a run killed
    /// mid-soak and resumed from its last checkpoint produces frames and
    /// a final report byte-identical to one that never stopped.
    ///
    /// `halt_at` simulates a crash: the run stops at that step (if it is
    /// before the schedule's horizon) with [`SimError::StepCap`], leaving
    /// the sink's checkpoints behind to resume from. `None` runs the full
    /// schedule.
    pub fn run_steady_checkpointed<S: CheckpointSink>(
        &mut self,
        cfg: SteadyConfig,
        lambda: f64,
        state: Option<&Value>,
        sink: &mut S,
        halt_at: Option<u64>,
    ) -> Result<SteadyReport, SimError>
    where
        R::NodeState: Serialize,
    {
        assert!(cfg.window >= 1 && cfg.windows >= 1, "empty steady schedule");
        let mut obs = SteadyObserver::new(cfg, state)
            .expect("malformed steady-state resume state in the snapshot's protocol slot");
        let cap = halt_at.map_or(cfg.horizon(), |h| h.min(cfg.horizon()));
        let res = run_driver(
            self,
            cap,
            &mut SteadyCheckpointRunner {
                obs: &mut obs,
                sink,
                env: SteadySnap {
                    lambda,
                    config: cfg,
                },
            },
        );
        snapshot::report_failure(sink, &res);
        res?;
        Ok(obs.into_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(samples: usize) -> WindowFrame {
        let lat: Vec<u64> = (1..=samples as u64).collect();
        WindowFrame {
            index: 0,
            start_step: 1,
            end_step: 64,
            offered: samples as u64,
            delivered: samples as u64,
            shed: 0,
            expired: 0,
            lost: 0,
            goodput: samples as f64 / 64.0,
            latency: Distribution::of(&lat),
            samples,
        }
    }

    #[test]
    fn window_frame_samples_matches_latency_count() {
        // A 40-delivery window: p99/p999 clamp to the max, and `samples`
        // is the field that flags it.
        let f = frame(40);
        assert_eq!(f.samples, 40);
        assert_eq!(f.samples, f.latency.count);
        assert_eq!(f.latency.p99, f.latency.max);
        assert_eq!(f.latency.p999, f.latency.max);
    }

    #[test]
    fn window_frame_roundtrips_and_tolerates_v1_frames() {
        let f = frame(7);
        let v = f.serialize();
        let back = WindowFrame::deserialize(&v).expect("roundtrip");
        assert_eq!(back.samples, 7);
        assert_eq!(back.latency, f.latency);

        // A v1 frame (checkpointed before `samples` existed): the field is
        // absent, and deserialization backfills it from the latency count.
        let Value::Object(mut pairs) = v else {
            panic!("frames serialize as objects")
        };
        pairs.retain(|(k, _)| k != "samples");
        let old = WindowFrame::deserialize(&Value::Object(pairs)).expect("v1 frame");
        assert_eq!(old.samples, old.latency.count);
        assert_eq!(old.samples, 7);
    }
}
