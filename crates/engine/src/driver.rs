//! The single run driver behind `run`, `run_with_hook`, and
//! `run_with_protocol`.
//!
//! [`run_driver`] owns the loop shape every run shares — step-cap check,
//! execute one step, let the observer judge it, consult the watchdog —
//! and a [`RunObserver`] supplies the parts that differ: which hook the
//! step runs under, whether a pre-loop action applies (the protocol's
//! synthetic step-0 batch), and what verdict each step earns. The
//! watchdog and protocol logic thereby exist exactly once instead of as
//! divergent copies per entry point.

use crate::hook::StepHook;
use crate::protocol::{ProtocolControl, ProtocolHook, StepEvents};
use crate::router::Router;
use crate::sim::{Sim, SimError};
use crate::snapshot::{self, CheckpointSink, SnapshotHook};
use crate::watchdog::{self, WatchdogMode};
use mesh_topo::Topology;

/// The observer's judgement of one executed step.
pub(crate) enum Verdict {
    /// The run is complete: return `Ok(steps)`.
    Finished,
    /// The run can never complete (protocol wedge): return `Deadlock` now.
    Wedged,
    /// Keep going; let the watchdog check under the given mode.
    Watch(WatchdogMode),
}

/// What a particular run flavor plugs into [`run_driver`].
pub(crate) trait RunObserver<T: Topology, R: Router> {
    /// Pre-loop action; returning `Some(steps)` finishes the run with
    /// `Ok(steps)` before any step executes.
    fn begin(&mut self, _sim: &mut Sim<'_, T, R>) -> Option<u64> {
        None
    }

    /// Executes one step (under whatever hook this flavor wires in);
    /// returns the step's "all delivered" flag.
    fn step(&mut self, sim: &mut Sim<'_, T, R>) -> bool;

    /// Judges the just-executed step. `packets_before` is the packet count
    /// sampled before the step (protocol hooks may have spawned since).
    fn observe(&mut self, sim: &mut Sim<'_, T, R>, done: bool, packets_before: usize) -> Verdict;

    /// Post-judgement action, called only when the step fully survived —
    /// `Watch` verdict and a quiet watchdog. Checkpointing runners write
    /// their snapshot here: a state the run is provably continuing from,
    /// so resuming it replays the remaining steps bit-identically. A
    /// terminal step (finished, wedged, or watchdog-tripped) must never
    /// become a checkpoint — the driver can only judge *after* stepping,
    /// so a resumed terminal state would take one spurious extra step.
    fn survived(&mut self, _sim: &mut Sim<'_, T, R>) {}
}

/// Runs `sim` to completion, the step cap, or a watchdog/wedge verdict.
pub(crate) fn run_driver<T: Topology, R: Router, O: RunObserver<T, R>>(
    sim: &mut Sim<'_, T, R>,
    max_steps: u64,
    obs: &mut O,
) -> Result<u64, SimError> {
    // The watchdog only arms once nothing external can still change the
    // picture: all injections done and every transient fault lifted
    // (permanent faults never lift, so they do not hold it off).
    let settle = sim.fault_settle();
    if let Some(steps) = obs.begin(sim) {
        return Ok(steps);
    }
    loop {
        if sim.steps() >= max_steps {
            return if sim.done() {
                Ok(sim.steps())
            } else {
                Err(SimError::StepCap(Box::new(sim.diagnostics())))
            };
        }
        let packets_before = sim.num_packets();
        let done = obs.step(sim);
        match obs.observe(sim, done, packets_before) {
            Verdict::Finished => return Ok(sim.steps()),
            Verdict::Wedged => return Err(SimError::Deadlock(Box::new(sim.diagnostics()))),
            Verdict::Watch(mode) => {
                watchdog::check(sim, mode, settle)?;
                obs.survived(sim);
            }
        }
    }
}

/// Plain and adversary runs: step under a [`StepHook`], standard watchdog.
pub(crate) struct HookRunner<'h, H> {
    pub(crate) hook: &'h mut H,
}

impl<T: Topology, R: Router, H: StepHook> RunObserver<T, R> for HookRunner<'_, H> {
    fn step(&mut self, sim: &mut Sim<'_, T, R>) -> bool {
        sim.step_with_hook(self.hook)
    }

    fn observe(&mut self, _sim: &mut Sim<'_, T, R>, done: bool, _packets_before: usize) -> Verdict {
        if done {
            Verdict::Finished
        } else {
            Verdict::Watch(WatchdogMode::Standard)
        }
    }
}

/// Protocol runs: feed every step's delivery/loss events to a
/// [`ProtocolHook`], which may spawn ACKs/retransmissions and decides
/// when the run is finished; the watchdog arms protocol-aware.
pub(crate) struct ProtocolRunner<'p, P> {
    pub(crate) proto: &'p mut P,
}

/// The protocol pre-loop action, shared by [`ProtocolRunner`] and
/// [`CheckpointProtocolRunner`]: trivial (src == dst) packets due at step
/// 0 were delivered during construction, before any step could report
/// them; surface them to the protocol as a synthetic step-0 batch so
/// their payloads get acknowledged like any other. Self-skipping on a
/// restored run (`steps() > 0`): the batch was already presented before
/// the checkpoint was taken.
fn protocol_begin<T: Topology, R: Router, P: ProtocolHook>(
    proto: &mut P,
    sim: &mut Sim<'_, T, R>,
) -> Option<u64> {
    if sim.steps() == 0 && !sim.events.delivered.is_empty() {
        let events = StepEvents {
            step: 0,
            delivered: std::mem::take(&mut sim.events.delivered),
            lost: Vec::new(),
        };
        let ctl = proto.on_step(sim, &events);
        sim.events.delivered = events.delivered;
        sim.events.delivered.clear();
        if ctl == ProtocolControl::Done {
            return Some(0);
        }
    }
    None
}

/// The protocol per-step judgement, shared by [`ProtocolRunner`] and
/// [`CheckpointProtocolRunner`]: feed the step's events to the hook,
/// recycle the (emptied) buffers, and map its control decision.
fn protocol_observe<T: Topology, R: Router, P: ProtocolHook>(
    proto: &mut P,
    sim: &mut Sim<'_, T, R>,
    done: bool,
    packets_before: usize,
) -> Verdict {
    let events = StepEvents {
        step: sim.steps(),
        delivered: std::mem::take(&mut sim.events.delivered),
        lost: std::mem::take(&mut sim.events.lost),
    };
    let ctl = proto.on_step(sim, &events);
    // Recycle the event buffers, emptied: a later early-returning
    // step must not re-present stale events.
    sim.events.delivered = events.delivered;
    sim.events.delivered.clear();
    sim.events.lost = events.lost;
    sim.events.lost.clear();
    match ctl {
        ProtocolControl::Done => Verdict::Finished,
        ProtocolControl::Continue { outstanding } => {
            if done && sim.num_packets() == packets_before {
                // Network empty and the protocol spawned nothing.
                // With work outstanding that is a protocol wedge
                // (nothing in flight can ever ack it); without, the
                // run is simply complete.
                if outstanding == 0 {
                    Verdict::Finished
                } else {
                    Verdict::Wedged
                }
            } else if outstanding > 0 {
                Verdict::Watch(WatchdogMode::DeliveryStarvation)
            } else {
                Verdict::Watch(WatchdogMode::ActivityStarvation)
            }
        }
    }
}

impl<T: Topology, R: Router, P: ProtocolHook> RunObserver<T, R> for ProtocolRunner<'_, P> {
    fn begin(&mut self, sim: &mut Sim<'_, T, R>) -> Option<u64> {
        protocol_begin(self.proto, sim)
    }

    fn step(&mut self, sim: &mut Sim<'_, T, R>) -> bool {
        sim.step()
    }

    fn observe(&mut self, sim: &mut Sim<'_, T, R>, done: bool, packets_before: usize) -> Verdict {
        protocol_observe(self.proto, sim, done, packets_before)
    }
}

/// [`HookRunner`] plus periodic checkpoints: once a step fully survives
/// (judged `Watch`, watchdog quiet) a snapshot goes to the sink when the
/// cadence says so. Terminal steps are never checkpointed — see
/// [`RunObserver::survived`].
pub(crate) struct CheckpointHookRunner<'h, 's, H, S> {
    pub(crate) hook: &'h mut H,
    pub(crate) sink: &'s mut S,
}

impl<T, R, H, S> RunObserver<T, R> for CheckpointHookRunner<'_, '_, H, S>
where
    T: Topology,
    R: Router,
    R::NodeState: serde::Serialize,
    H: StepHook,
    S: CheckpointSink,
{
    fn step(&mut self, sim: &mut Sim<'_, T, R>) -> bool {
        sim.step_with_hook(self.hook)
    }

    fn observe(&mut self, _sim: &mut Sim<'_, T, R>, done: bool, _packets_before: usize) -> Verdict {
        if done {
            Verdict::Finished
        } else {
            Verdict::Watch(WatchdogMode::Standard)
        }
    }

    fn survived(&mut self, sim: &mut Sim<'_, T, R>) {
        snapshot::maybe_checkpoint(sim, self.sink, None, || None);
    }
}

/// [`ProtocolRunner`] plus periodic checkpoints. The checkpoint fires
/// only once the step fully survives — the protocol has consumed the
/// step's events (buffers empty), judged the run still in flight, and
/// the watchdog stayed quiet — so the snapshot captures sim and protocol
/// state at a consistent boundary a restored run re-enters exactly.
pub(crate) struct CheckpointProtocolRunner<'p, 's, P, S> {
    pub(crate) proto: &'p mut P,
    pub(crate) sink: &'s mut S,
}

impl<T, R, P, S> RunObserver<T, R> for CheckpointProtocolRunner<'_, '_, P, S>
where
    T: Topology,
    R: Router,
    R::NodeState: serde::Serialize,
    P: ProtocolHook + SnapshotHook,
    S: CheckpointSink,
{
    fn begin(&mut self, sim: &mut Sim<'_, T, R>) -> Option<u64> {
        protocol_begin(self.proto, sim)
    }

    fn step(&mut self, sim: &mut Sim<'_, T, R>) -> bool {
        sim.step()
    }

    fn observe(&mut self, sim: &mut Sim<'_, T, R>, done: bool, packets_before: usize) -> Verdict {
        protocol_observe(self.proto, sim, done, packets_before)
    }

    fn survived(&mut self, sim: &mut Sim<'_, T, R>) {
        let proto = &*self.proto;
        snapshot::maybe_checkpoint(sim, self.sink, None, || Some(proto.snapshot_state()));
    }
}
