//! Extended measurement: latency distributions, per-node congestion maps,
//! and delivery time series. All derived from per-packet delivery records
//! the simulator keeps anyway, so collection is free.

use serde::{Deserialize, Serialize};

/// Summary statistics of a set of samples (latencies, loads, …).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    pub count: usize,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    /// Percentiles at 50/90/99/99.9 (nearest-rank).
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl Distribution {
    /// Computes the distribution of a sample set (empty ⇒ all zeros).
    pub fn of(samples: &[u64]) -> Distribution {
        if samples.is_empty() {
            return Distribution {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p90: 0,
                p99: 0,
                p999: 0,
            };
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let pct = |p: f64| -> u64 {
            // Nearest-rank percentile.
            let rank = ((p / 100.0) * v.len() as f64).ceil().max(1.0) as usize;
            v[rank - 1]
        };
        Distribution {
            count: v.len(),
            min: v[0],
            max: *v.last().unwrap(),
            mean: v.iter().sum::<u64>() as f64 / v.len() as f64,
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
            p999: pct(99.9),
        }
    }
}

/// Mean/min/max/stddev of a set of scalar samples, for aggregating one
/// metric across repeated trials of the same experiment cell.
///
/// Unlike [`Distribution`] (per-packet samples within one run, percentiles),
/// a `Summary` condenses *per-trial* samples, which are few and real-valued.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    /// Population standard deviation (0 for a single sample).
    pub stddev: f64,
}

impl Summary {
    /// Computes the summary of a sample set (empty ⇒ all zeros).
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            stddev: var.sqrt(),
        }
    }

    /// Convenience for integer-valued metrics (steps, moves, queue peaks).
    pub fn of_u64(samples: impl IntoIterator<Item = u64>) -> Summary {
        let v: Vec<f64> = samples.into_iter().map(|s| s as f64).collect();
        Summary::of(&v)
    }
}

/// A per-node scalar field (congestion map): row-major over the grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeField {
    pub n: u32,
    pub values: Vec<u32>,
}

impl NodeField {
    /// The hottest nodes, as `(x, y, value)` sorted descending, capped at
    /// `top`.
    pub fn hottest(&self, top: usize) -> Vec<(u32, u32, u32)> {
        let mut v: Vec<(u32, u32, u32)> = self
            .values
            .iter()
            .enumerate()
            .filter(|(_, &val)| val > 0)
            .map(|(i, &val)| (i as u32 % self.n, i as u32 / self.n, val))
            .collect();
        v.sort_by_key(|&(x, y, val)| (std::cmp::Reverse(val), y, x));
        v.truncate(top);
        v
    }

    /// Renders a coarse ASCII heat map (small grids only), north at the top.
    pub fn ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self.values.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::with_capacity((self.n as usize + 1) * self.n as usize);
        for y in (0..self.n).rev() {
            for x in 0..self.n {
                let v = self.values[(y * self.n + x) as usize] as usize;
                let idx = (v * (SHADES.len() - 1)).div_ceil(max as usize);
                out.push(SHADES[idx.min(SHADES.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Time series of deliveries: `delivered[t]` = packets delivered during
/// (1-based) step `t+1`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeliveryCurve {
    pub per_step: Vec<u32>,
}

impl DeliveryCurve {
    /// Builds the curve from per-packet delivery steps (1-based; 0 =
    /// delivered at injection).
    pub fn from_delivery_steps(steps: impl IntoIterator<Item = u64>) -> DeliveryCurve {
        let mut per_step: Vec<u32> = Vec::new();
        for s in steps {
            let idx = s as usize;
            if per_step.len() <= idx {
                per_step.resize(idx + 1, 0);
            }
            per_step[idx] += 1;
        }
        DeliveryCurve { per_step }
    }

    /// The step by which `frac` (0..=1) of `total` packets were delivered.
    pub fn completion_step(&self, total: usize, frac: f64) -> Option<u64> {
        let need = (total as f64 * frac).ceil() as u64;
        let mut acc = 0u64;
        for (t, &c) in self.per_step.iter().enumerate() {
            acc += c as u64;
            if acc >= need {
                return Some(t as u64);
            }
        }
        None
    }

    /// Peak deliveries in a single step (the router's drain throughput).
    pub fn peak_rate(&self) -> u32 {
        self.per_step.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_basics() {
        let d = Distribution::of(&[5, 1, 9, 3, 7]);
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 9);
        assert!((d.mean - 5.0).abs() < 1e-9);
        assert_eq!(d.p50, 5);
        assert_eq!(d.p99, 9);
    }

    #[test]
    fn distribution_empty() {
        let d = Distribution::of(&[]);
        assert_eq!(d.count, 0);
        assert_eq!(d.max, 0);
    }

    #[test]
    fn distribution_single() {
        let d = Distribution::of(&[42]);
        assert_eq!(
            (d.min, d.p50, d.p90, d.p99, d.p999, d.max),
            (42, 42, 42, 42, 42, 42)
        );
    }

    #[test]
    fn distribution_p999_tracks_the_tail() {
        let v: Vec<u64> = (1..=1000).collect();
        let d = Distribution::of(&v);
        assert_eq!(d.p99, 990);
        // p99.9 sits strictly inside the extreme tail.
        assert!(d.p999 > d.p99 && d.p999 <= d.max, "p999 = {}", d.p999);
        // A heavy-tailed set: one outlier in 1000 must move p999 (which
        // reaches the last rank there) but not p50.
        let mut w = vec![1u64; 999];
        w.push(1_000_000);
        let h = Distribution::of(&w);
        assert_eq!(h.p50, 1);
        assert_eq!(h.p99, 1);
        assert_eq!(h.p999, 1_000_000);
    }

    #[test]
    fn sub_percentile_sample_counts_clamp_to_max() {
        // Nearest-rank with rank = ceil(p/100 * len): when the sample count
        // is below the percentile's resolution the rank saturates at the
        // last element, so the reported percentile IS the max — consumers
        // must check the sample count before trusting the tail.
        let d = Distribution::of(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(d.count, 10);
        assert_eq!(d.p90, 9); // rank ceil(0.9*10)=9 still resolves
        assert_eq!(d.p99, 10); // rank ceil(0.99*10)=10 → max
        assert_eq!(d.p999, 10); // rank ceil(0.999*10)=10 → max
                                // 999 samples: p999 rank ceil(0.999*999)=999 → still the max.
        let v: Vec<u64> = (1..=999).collect();
        let d = Distribution::of(&v);
        assert_eq!(d.p999, 999);
        assert_eq!(d.p999, d.max);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stddev - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(Summary::of(&[]).count, 0);
        let s = Summary::of_u64([7]);
        assert_eq!(
            (s.count, s.mean, s.min, s.max, s.stddev),
            (1, 7.0, 7.0, 7.0, 0.0)
        );
    }

    #[test]
    fn node_field_hottest() {
        let f = NodeField {
            n: 3,
            values: vec![0, 5, 0, 2, 0, 0, 0, 0, 9],
        };
        let h = f.hottest(2);
        assert_eq!(h, vec![(2, 2, 9), (1, 0, 5)]);
    }

    #[test]
    fn node_field_ascii_shape() {
        let f = NodeField {
            n: 2,
            values: vec![0, 4, 2, 4],
        };
        let s = f.ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // North (y=1) row first: values [2, 4] -> mid shade then max shade.
        assert_eq!(lines[0].len(), 2);
        assert!(lines[0].ends_with('@'));
        assert!(lines[1].starts_with(' ')); // zero stays blank
    }

    #[test]
    fn delivery_curve() {
        let c = DeliveryCurve::from_delivery_steps([1u64, 1, 2, 5]);
        assert_eq!(c.per_step, vec![0, 2, 1, 0, 0, 1]);
        assert_eq!(c.peak_rate(), 2);
        assert_eq!(c.completion_step(4, 0.5), Some(1));
        assert_eq!(c.completion_step(4, 1.0), Some(5));
        assert_eq!(c.completion_step(5, 1.0), None);
    }
}
