//! Tile-sharded execution of the step pipeline.
//!
//! The mesh is partitioned into rectangular **tiles**; each
//! [`STEP_PIPELINE`](crate::phases::STEP_PIPELINE) phase runs across the
//! tiles on a scoped thread pool with a frame barrier between phases, and
//! every cross-tile effect is resolved by a two-phase commit: workers
//! *stage* their tiles' outbound results into ordered mailboxes, and the
//! coordinator *merges* the mailboxes in exactly the order the sequential
//! engine would have produced. The result is bit-identical to
//! `tile_threads = 1` for every tile geometry and thread count — enforced
//! by the golden fixtures and the tiling-equivalence proptest battery.
//!
//! ## Phase schedule
//!
//! Worker phases run the *same per-node functions* as the sequential
//! pipeline ([`phases::route_node`], [`phases::accept_group`],
//! [`phases::audit_node`], [`phases::update_node`]); coordinator phases
//! run between barriers on the main thread:
//!
//! | phase | who | cross-tile coupling |
//! |---|---|---|
//! | inject | coordinator | global admission order (sorted node sweep) |
//! | route | workers | none — reads are node-local, moves are staged |
//! | route-merge + faults + adversary + accept-prep | coordinator | rebuilds the sequential schedule order |
//! | accept | workers | none — one inqueue group per target node |
//! | transmit-stage | workers | dequeues are node-local; arrivals staged into mailboxes |
//! | commit | coordinator | applies mailboxes in schedule order |
//! | audit + update | workers | none — maxima/peaks/state writes staged |
//! | finish | coordinator | order-independent reductions |
//!
//! ## Why the merge reproduces the sequential order
//!
//! *Route*: the sequential engine visits nodes in active-snapshot order
//! and emits each node's moves in `ALL_DIRS` order. Each worker scans the
//! same shared snapshot (filtering to its own tiles), so its per-tile
//! mailbox holds `(snapshot index, move)` pairs in ascending snapshot
//! order; the merge walks the snapshot once, draining each tile's mailbox
//! head while it matches the current index — reproducing the sequential
//! schedule exactly.
//!
//! *Transmit*: dequeues commute (queues are sets under identity-based
//! removal; the step removes and appends but never reorders survivors), so
//! workers dequeue their own tiles' departures in any order. Arrivals do
//! not commute — queue append order and delivery-event order are
//! observable — so workers only *stage* them, tagged with the schedule
//! index, and the commit applies them in ascending schedule order, which
//! is the sequential transmit order.
//!
//! ## Memory discipline
//!
//! Workers own disjoint tile sets and communicate with the coordinator
//! only through raw base pointers published in [`Shared`], under a strict
//! barrier regime: a location is written by at most one thread per phase,
//! and every cross-thread read happens after the barrier that ends the
//! writing phase (the barrier provides the happens-before edge). Shared
//! reference materialization (`&PacketStore`, `&NodeGrid`) happens only in
//! phases where the pointee is read-only for *all* threads.

use crate::hook::{HookCtx, ScheduledMove, StepHook};
use crate::phases::{self, EventLog, Progress, StepBufs};
use crate::queue::{QueueArch, QueueKind};
use crate::router::Router;
use crate::sim::{Sim, SimConfig};
use crate::storage::{GridRaw, Loc, NodeGrid, PacketStore};
use crate::view::{Arrival, FullView, PackedArrival, PackedView};
use mesh_faults::CompiledFaults;
use mesh_topo::{Coord, Topology};
use mesh_traffic::PacketId;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

/// A rectangular partition of the `n × n` mesh into `tx × ty` execution
/// tiles (not to be confused with the paper's §6 offset tilings in
/// `mesh-topo`). Tile boundaries are chosen so the tiles differ in size by
/// at most one row/column.
pub(crate) struct TileMap {
    /// Total tiles (`tx * ty`).
    nt: u32,
    /// Node index → tile id (row-major over the tile grid).
    tile_of: Vec<u32>,
}

impl TileMap {
    pub(crate) fn new(n: u32, tx: u32, ty: u32) -> TileMap {
        let tx = tx.clamp(1, n);
        let ty = ty.clamp(1, n);
        let col = |x: u32| (x as u64 * tx as u64 / n as u64) as u32;
        let row = |y: u32| (y as u64 * ty as u64 / n as u64) as u32;
        let mut tile_of = Vec::with_capacity((n * n) as usize);
        for y in 0..n {
            for x in 0..n {
                tile_of.push(row(y) * tx + col(x));
            }
        }
        TileMap {
            nt: tx * ty,
            tile_of,
        }
    }

    /// Node → tile lookup (the hot path reads `tile_of` through
    /// [`Shared`]'s raw pointer instead).
    #[cfg(test)]
    fn tile(&self, ni: usize) -> u32 {
        self.tile_of[ni]
    }
}

/// A cross-tile transmission staged by the source tile's worker during
/// transmit, applied by the coordinator's commit in schedule order.
/// Mailboxes are kept per *source* tile; the destination tile tag makes
/// each row a sparse representation of the (source tile, destination tile)
/// mailbox matrix without allocating `nt²` rows for fine tilings.
struct Staged {
    /// Schedule index: the merge-order key (and integrity check).
    mi: u32,
    /// Destination tile (integrity check for the sparse pair encoding).
    dst_tile: u32,
    /// The packet arrives at its destination (consumes no queue slot).
    deliver: bool,
    /// Arrival queue at the target when not delivering.
    akind: QueueKind,
}

/// Per-worker scratch and staged output. Workers write only their own
/// entry; the coordinator reads all of them after the closing barrier.
#[derive(Default)]
struct WorkerOut {
    views: Vec<FullView>,
    arrivals: Vec<Arrival<FullView>>,
    /// Bit-packed counterparts of `views`/`arrivals` for mask-capable
    /// routers (the per-node fast path picks which pair it fills).
    masks: Vec<PackedView>,
    arr_packed: Vec<PackedArrival>,
    accept: Vec<bool>,
    states: Vec<u64>,
    /// Staged congestion-map updates `(node, load)`.
    peaks: Vec<(u32, u16)>,
    /// Staged end-of-step packet-state writes.
    state_writes: Vec<(PacketId, u64)>,
    max_queue: u32,
    max_node_load: u32,
}

/// The tile runtime a [`Sim`] carries when tile-sharded execution is
/// configured: the tile map, the per-tile route mailboxes, the per-tile
/// transmit mailboxes, and the per-worker staging areas.
pub(crate) struct TileRt {
    map: TileMap,
    workers: usize,
    /// Route mailboxes: per tile, `(snapshot index, move)` in snapshot
    /// order.
    route_stage: Vec<Vec<(u32, ScheduledMove)>>,
    /// Merge cursor per tile (coordinator-only).
    route_cursor: Vec<u32>,
    /// Transmit mailboxes, per source tile (see [`Staged`]).
    mailbox: Vec<Vec<Staged>>,
    /// Commit cursor per source tile (coordinator-only).
    mb_cursor: Vec<u32>,
    outs: Vec<WorkerOut>,
}

impl TileRt {
    /// Builds the runtime for `config`, or `None` when the configuration
    /// selects the plain sequential path.
    pub(crate) fn new(n: u32, config: &SimConfig) -> Option<TileRt> {
        let threads = config.tile_threads.max(1);
        if threads == 1 && config.tiles.is_none() {
            return None;
        }
        // Default geometry: horizontal bands, one per thread.
        let (tx, ty) = config.tiles.unwrap_or((1, (threads as u32).min(n).max(1)));
        let map = TileMap::new(n, tx, ty);
        let nt = map.nt as usize;
        let workers = threads.min(nt);
        Some(TileRt {
            map,
            workers,
            route_stage: (0..nt).map(|_| Vec::new()).collect(),
            route_cursor: vec![0; nt],
            mailbox: (0..nt).map(|_| Vec::new()).collect(),
            mb_cursor: vec![0; nt],
            outs: (0..workers).map(|_| WorkerOut::default()).collect(),
        })
    }
}

/// Pointers into the coordinator's per-step buffers, republished by the
/// coordinator whenever a buffer may have been (re)allocated. Workers read
/// the frame only after the barrier that follows the publishing phase.
#[derive(Clone, Copy)]
struct Frame {
    snapshot: *const u32,
    snapshot_len: usize,
    schedule: *const ScheduledMove,
    schedule_len: usize,
    lost: *const ScheduledMove,
    lost_len: usize,
    order: *const u32,
    groups: *const (u32, u32),
    groups_len: usize,
    accepted: *mut bool,
}

impl Default for Frame {
    fn default() -> Self {
        Frame {
            snapshot: std::ptr::null(),
            snapshot_len: 0,
            schedule: std::ptr::null(),
            schedule_len: 0,
            lost: std::ptr::null(),
            lost_len: 0,
            order: std::ptr::null(),
            groups: std::ptr::null(),
            groups_len: 0,
            accepted: std::ptr::null_mut(),
        }
    }
}

/// Everything one tiled step shares between the coordinator and the
/// workers, as raw base pointers derived once at step start.
///
/// SAFETY contract (upheld by the barrier schedule in [`run_scoped`] /
/// [`run_single`]):
///
/// * During a **worker** phase the coordinator touches nothing reachable
///   from these pointers; workers touch only their own tiles' nodes /
///   their own `WorkerOut` / their own mailbox rows for mutation, and
///   materialize shared references only to data no thread mutates in that
///   phase.
/// * During a **coordinator** phase every worker is parked at a barrier.
/// * The pointed-to vectors are never grown while a pointer derived from
///   them is in use (the frame is republished after any coordinator-side
///   reallocation).
struct Shared<T: Topology, R: Router> {
    t0: u64,
    validate: bool,
    n: u32,
    arch: QueueArch,
    nt: u32,
    workers: usize,
    topo: *const T,
    router: *const R,
    faults: Option<*const CompiledFaults>,
    store: *mut PacketStore,
    grid: *mut NodeGrid,
    grid_raw: GridRaw,
    node_state: *mut R::NodeState,
    progress: *mut Progress,
    events: *mut EventLog,
    bufs: *mut StepBufs,
    tile_of: *const u32,
    route_stage: *mut Vec<(u32, ScheduledMove)>,
    route_cursor: *mut u32,
    mailbox: *mut Vec<Staged>,
    mb_cursor: *mut u32,
    outs: *mut WorkerOut,
    frame: UnsafeCell<Frame>,
    poison: AtomicBool,
    panics: Mutex<Vec<Option<Box<dyn std::any::Any + Send>>>>,
}

// SAFETY: see the struct-level contract; all cross-thread access is
// disjoint-by-construction or sequenced by the phase barriers.
unsafe impl<T: Topology, R: Router> Sync for Shared<T, R> {}

impl<T: Topology, R: Router> Shared<T, R> {
    /// The half-open tile range worker `w` owns.
    fn tile_range(&self, w: usize) -> (u32, u32) {
        let nt = self.nt as usize;
        let lo = w * nt / self.workers;
        let hi = (w + 1) * nt / self.workers;
        (lo as u32, hi as u32)
    }

    #[inline]
    fn node_index(&self, c: Coord) -> usize {
        (c.y * self.n + c.x) as usize
    }

    #[inline]
    unsafe fn tile(&self, ni: usize) -> u32 {
        *self.tile_of.add(ni)
    }

    unsafe fn topo(&self) -> &T {
        &*self.topo
    }

    unsafe fn router(&self) -> &R {
        &*self.router
    }

    unsafe fn faults(&self) -> Option<&CompiledFaults> {
        self.faults.map(|f| &*f)
    }

    /// Read-only store view; callable only in phases where no thread
    /// writes the store.
    unsafe fn store(&self) -> &PacketStore {
        &*self.store
    }

    /// Coordinator-only.
    #[allow(clippy::mut_from_ref)]
    unsafe fn store_mut(&self) -> &mut PacketStore {
        &mut *self.store
    }

    /// Read-only grid view; callable only in phases where no thread
    /// writes the grid.
    unsafe fn grid(&self) -> &NodeGrid {
        &*self.grid
    }

    /// Coordinator-only.
    #[allow(clippy::mut_from_ref)]
    unsafe fn grid_mut(&self) -> &mut NodeGrid {
        &mut *self.grid
    }

    /// The node state of `ni` — owned by the worker whose tiles contain
    /// `ni` during worker phases.
    #[allow(clippy::mut_from_ref)]
    unsafe fn state_of(&self, ni: usize) -> &mut R::NodeState {
        &mut *self.node_state.add(ni)
    }

    /// Coordinator-only.
    #[allow(clippy::mut_from_ref)]
    unsafe fn progress_mut(&self) -> &mut Progress {
        &mut *self.progress
    }

    /// Coordinator-only.
    #[allow(clippy::mut_from_ref)]
    unsafe fn events_mut(&self) -> &mut EventLog {
        &mut *self.events
    }

    /// Coordinator-only.
    #[allow(clippy::mut_from_ref)]
    unsafe fn bufs_mut(&self) -> &mut StepBufs {
        &mut *self.bufs
    }

    /// Worker `w`'s staging area — owned by that worker during worker
    /// phases, read by the coordinator afterwards.
    #[allow(clippy::mut_from_ref)]
    unsafe fn out(&self, w: usize) -> &mut WorkerOut {
        &mut *self.outs.add(w)
    }

    /// A tile's route mailbox — written by its owning worker during route,
    /// drained by the coordinator's merge.
    #[allow(clippy::mut_from_ref)]
    unsafe fn route_row(&self, tile: u32) -> &mut Vec<(u32, ScheduledMove)> {
        &mut *self.route_stage.add(tile as usize)
    }

    /// A source tile's transmit mailbox — written by its owning worker
    /// during transmit-stage, drained by the coordinator's commit.
    #[allow(clippy::mut_from_ref)]
    unsafe fn mailbox_row(&self, tile: u32) -> &mut Vec<Staged> {
        &mut *self.mailbox.add(tile as usize)
    }

    unsafe fn frame(&self) -> Frame {
        *self.frame.get()
    }

    /// Coordinator-only (between barriers).
    #[allow(clippy::mut_from_ref)]
    unsafe fn frame_mut(&self) -> &mut Frame {
        &mut *self.frame.get()
    }

    /// Removes `pid` from a queue of node `ni` through the raw arena
    /// pointers (the caller's worker owns `ni`'s tile). Mirrors
    /// `NodeGrid::remove`: shift the younger cells down one, then update
    /// the length, occupancy bitmask, and load index — all word writes
    /// into regions disjoint from every other worker's tiles.
    unsafe fn dequeue(&self, ni: usize, kind: QueueKind, pid: PacketId, what: &str) {
        let g = &self.grid_raw;
        let s = kind.slot();
        let len_ptr = g.lens.add(ni * g.slots + s);
        let len = *len_ptr as usize;
        let base = g.slab.add(ni * g.stride as usize + g.slot_off[s] as usize);
        let region = std::slice::from_raw_parts_mut(base, len);
        let pos = region.iter().position(|&p| p == pid).expect(what);
        region.copy_within(pos + 1.., pos);
        *len_ptr = (len - 1) as u32;
        if len == 1 {
            *g.occ.add(ni) &= !(1u8 << s);
        }
        *g.load.add(ni) -= 1;
    }

    fn record_panic(&self, slot: usize, payload: Box<dyn std::any::Any + Send>) {
        self.poison.store(true, Ordering::SeqCst);
        let mut panics = self.panics.lock().unwrap();
        if panics[slot].is_none() {
            panics[slot] = Some(payload);
        }
    }

    fn poisoned(&self) -> bool {
        self.poison.load(Ordering::SeqCst)
    }

    /// The first recorded panic (lowest slot wins, so the propagated
    /// message is deterministic when one worker's validation assertion
    /// fires).
    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        if !self.poisoned() {
            return None;
        }
        let mut panics = self.panics.lock().unwrap();
        panics.iter_mut().find_map(|slot| slot.take())
    }
}

// ---- worker phases ----

/// Route phase for worker `w`: §2 (a) over the worker's tiles, staging
/// `(snapshot index, move)` into the per-tile route mailboxes.
unsafe fn worker_route<T: Topology, R: Router>(shared: &Shared<T, R>, w: usize) {
    let topo = shared.topo();
    let router = shared.router();
    let faults = shared.faults();
    // Read-only this phase: routing only reads queues and packet fields.
    let store = shared.store();
    let grid = shared.grid();
    let (lo, hi) = shared.tile_range(w);
    let f = shared.frame();
    let snapshot = std::slice::from_raw_parts(f.snapshot, f.snapshot_len);
    let out = shared.out(w);
    for (idx, &ni) in snapshot.iter().enumerate() {
        let tile = shared.tile(ni as usize);
        if tile < lo || tile >= hi {
            continue;
        }
        let row = shared.route_row(tile);
        phases::route_node(
            shared.t0,
            topo,
            router,
            shared.validate,
            faults,
            store,
            grid,
            ni as usize,
            shared.state_of(ni as usize),
            &mut out.views,
            &mut out.masks,
            &mut |m| row.push((idx as u32, m)),
        );
    }
}

/// Accept phase for worker `w`: §2 (c) for every acceptance group whose
/// target node lies in the worker's tiles. Decisions land in the shared
/// `accepted` flags (disjoint indices across groups).
unsafe fn worker_accept<T: Topology, R: Router>(shared: &Shared<T, R>, w: usize) {
    let topo = shared.topo();
    let router = shared.router();
    let faults = shared.faults();
    // Read-only this phase: acceptance reads queues and packet fields;
    // only node states (disjoint) and accepted flags (disjoint) change.
    let store = shared.store();
    let grid = shared.grid();
    let (lo, hi) = shared.tile_range(w);
    let f = shared.frame();
    let schedule = std::slice::from_raw_parts(f.schedule, f.schedule_len);
    let order = std::slice::from_raw_parts(f.order, f.schedule_len);
    let groups = std::slice::from_raw_parts(f.groups, f.groups_len);
    let out = shared.out(w);
    let WorkerOut {
        views,
        arrivals,
        arr_packed,
        accept,
        ..
    } = out;
    for &(start, end) in groups {
        let target = schedule[order[start as usize] as usize].to;
        let ni = shared.node_index(target);
        let tile = shared.tile(ni);
        if tile < lo || tile >= hi {
            continue;
        }
        phases::accept_group(
            shared.t0,
            topo,
            router,
            faults,
            store,
            grid,
            schedule,
            order,
            start as usize,
            end as usize,
            shared.state_of(ni),
            views,
            arrivals,
            arr_packed,
            accept,
            &mut |mi, a| *f.accepted.add(mi as usize) = a,
        );
    }
}

/// Transmit-stage phase for worker `w`: dequeues every departing packet of
/// the worker's tiles (accepted and lost moves) and stages each accepted
/// arrival, tagged with its schedule index, into the source tile's
/// transmit mailbox.
unsafe fn worker_stage<T: Topology, R: Router>(shared: &Shared<T, R>, w: usize) {
    // Read-only this phase: only queues (own tiles) and mailboxes (own
    // rows) change; the store is untouched until commit.
    let store = shared.store();
    let (lo, hi) = shared.tile_range(w);
    let f = shared.frame();
    let schedule = std::slice::from_raw_parts(f.schedule, f.schedule_len);
    let accepted = std::slice::from_raw_parts(f.accepted as *const bool, f.schedule_len);
    let lost = std::slice::from_raw_parts(f.lost, f.lost_len);
    for (mi, m) in schedule.iter().enumerate() {
        if !accepted[mi] {
            continue;
        }
        let sni = shared.node_index(m.from);
        let tile = shared.tile(sni);
        if tile < lo || tile >= hi {
            continue;
        }
        let pi = m.pkt.index();
        debug_assert_eq!(store.loc[pi], Loc::At(m.from));
        shared.dequeue(
            sni,
            store.queue_of[pi],
            m.pkt,
            "scheduled packet missing from its queue",
        );
        shared.mailbox_row(tile).push(Staged {
            mi: mi as u32,
            dst_tile: shared.tile(shared.node_index(m.to)),
            deliver: store.dst[pi] == m.to,
            akind: shared.arch.arrival_queue(m.travel),
        });
    }
    for m in lost {
        let sni = shared.node_index(m.from);
        let tile = shared.tile(sni);
        if tile < lo || tile >= hi {
            continue;
        }
        let pi = m.pkt.index();
        debug_assert_eq!(store.loc[pi], Loc::At(m.from));
        shared.dequeue(
            sni,
            store.queue_of[pi],
            m.pkt,
            "lost packet missing from its queue",
        );
    }
}

/// Audit + update phase for worker `w`: capacity validation, occupancy
/// maxima, congestion peaks, and §2 (e) state updates over the worker's
/// tiles — everything staged into the worker's own output.
unsafe fn worker_audit_update<T: Topology, R: Router>(shared: &Shared<T, R>, w: usize) {
    let topo = shared.topo();
    let router = shared.router();
    // Read-only this phase: peaks and state writes are staged, not
    // applied; node states (disjoint) are the only mutation.
    let store = shared.store();
    let grid = shared.grid();
    let (lo, hi) = shared.tile_range(w);
    let out = shared.out(w);
    out.peaks.clear();
    out.state_writes.clear();
    out.max_queue = 0;
    out.max_node_load = 0;
    for idx in 0..grid.active_len() {
        let ni = grid.active_at(idx);
        let tile = shared.tile(ni);
        if tile < lo || tile >= hi {
            continue;
        }
        let a = phases::audit_node(shared.t0, router, shared.validate, grid, ni);
        out.max_queue = out.max_queue.max(a.max_bounded);
        out.max_node_load = out.max_node_load.max(a.load);
        out.peaks.push((ni as u32, a.load as u16));
    }
    // §2 (e) is skippable wholesale for routers whose end_of_step is the
    // inherited no-op: every staged write would be an identity write.
    if !router.uses_end_of_step() {
        return;
    }
    let WorkerOut {
        views,
        states,
        state_writes,
        ..
    } = out;
    for idx in 0..grid.active_len() {
        let ni = grid.active_at(idx);
        let tile = shared.tile(ni);
        if tile < lo || tile >= hi {
            continue;
        }
        phases::update_node(
            shared.t0,
            topo,
            router,
            store,
            grid,
            ni,
            shared.state_of(ni),
            views,
            states,
            &mut |p, s| state_writes.push((p, s)),
        );
    }
}

// ---- coordinator phases ----

/// After route: merges the per-tile route mailboxes into `bufs.schedule`
/// in sequential (snapshot) order, enforces link faults, runs the
/// adversary hook, sorts the acceptance groups, and publishes the frame
/// for the accept and transmit-stage phases.
unsafe fn coord_after_route<T: Topology, R: Router, H: StepHook>(
    shared: &Shared<T, R>,
    hook: &mut H,
) {
    let bufs = shared.bufs_mut();
    let nt = shared.nt;
    {
        let cursors = std::slice::from_raw_parts_mut(shared.route_cursor, nt as usize);
        cursors.fill(0);
        for (idx, &ni) in bufs.snapshot.iter().enumerate() {
            let tile = shared.tile(ni as usize);
            let row = shared.route_row(tile);
            let cur = &mut cursors[tile as usize];
            while (*cur as usize) < row.len() && row[*cur as usize].0 == idx as u32 {
                bufs.schedule.push(row[*cur as usize].1);
                *cur += 1;
            }
        }
        for tile in 0..nt {
            let row = shared.route_row(tile);
            debug_assert_eq!(
                cursors[tile as usize] as usize,
                row.len(),
                "route mailbox not fully merged"
            );
            row.clear();
        }
    }
    // Link-fault enforcement (same code path as phases::enforce_faults).
    if let Some(f) = shared.faults() {
        let t0 = shared.t0;
        let lost_moves = &mut bufs.lost_moves;
        bufs.schedule.retain(|m| {
            if f.link_down(t0, m.from, m.travel) {
                return false;
            }
            if f.link_lossy(t0, m.from, m.travel) {
                lost_moves.push(*m);
                return false;
            }
            true
        });
    }
    // Adversary hook.
    {
        let store = shared.store_mut();
        let progress = shared.progress_mut();
        bufs.exchanged.clear();
        let mut hctx = HookCtx {
            t: shared.t0 + 1,
            n: shared.n,
            moves: &bufs.schedule,
            dst: &mut store.dst,
            loc: &store.loc,
            src: &store.src,
            exchanges: &mut progress.exchanges,
            dirty: &mut bufs.exchanged,
        };
        hook.on_scheduled(&mut hctx);
        phases::refresh_masks(shared.topo(), store, &bufs.exchanged);
    }
    phases::accept_prep(shared.n, bufs);
    let f = shared.frame_mut();
    f.schedule = bufs.schedule.as_ptr();
    f.schedule_len = bufs.schedule.len();
    f.lost = bufs.lost_moves.as_ptr();
    f.lost_len = bufs.lost_moves.len();
    f.order = bufs.order.as_ptr();
    f.groups = bufs.groups.as_ptr();
    f.groups_len = bufs.groups.len();
    f.accepted = bufs.accepted.as_mut_ptr();
}

/// Commit: applies the staged transmissions in ascending schedule index —
/// the exact order the sequential transmit phase uses — then resolves the
/// lost moves and rebuilds the active worklist from the snapshot.
unsafe fn coord_commit<T: Topology, R: Router>(shared: &Shared<T, R>) {
    let bufs = shared.bufs_mut();
    let grid = shared.grid_mut();
    let store = shared.store_mut();
    let progress = shared.progress_mut();
    let events = shared.events_mut();
    let cursors = std::slice::from_raw_parts_mut(shared.mb_cursor, shared.nt as usize);
    for (mi, m) in bufs.schedule.iter().enumerate() {
        if !bufs.accepted[mi] {
            continue;
        }
        let src_tile = shared.tile(shared.node_index(m.from));
        let cur = &mut cursors[src_tile as usize];
        let staged = &shared.mailbox_row(src_tile)[*cur as usize];
        *cur += 1;
        debug_assert_eq!(staged.mi, mi as u32, "transmit mailbox out of order");
        debug_assert_eq!(
            staged.dst_tile,
            shared.tile(shared.node_index(m.to)),
            "transmit mailbox pair mismatch"
        );
        let pi = m.pkt.index();
        progress.total_moves += 1;
        store.hops[pi] += 1;
        if staged.deliver {
            store.loc[pi] = Loc::Delivered;
            store.delivered_at[pi] = shared.t0 + 1;
            progress.delivered += 1;
            events.delivered.push(m.pkt);
        } else {
            grid.push(m.to, staged.akind, m.pkt);
            store.loc[pi] = Loc::At(m.to);
            store.queue_of[pi] = staged.akind;
            store.mask[pi] = shared.topo().profitable(m.to, store.dst[pi]).bits();
            grid.mark_active(shared.node_index(m.to));
        }
    }
    for tile in 0..shared.nt {
        let row = shared.mailbox_row(tile);
        debug_assert_eq!(
            cursors[tile as usize] as usize,
            row.len(),
            "transmit mailbox not fully committed"
        );
        row.clear();
        cursors[tile as usize] = 0;
    }
    // Lossy-link transmissions: the dequeue already happened in the stage
    // phase; account for the move and destroy the packet, in the same
    // order the sequential transmit phase uses.
    for m in bufs.lost_moves.iter() {
        let pi = m.pkt.index();
        progress.total_moves += 1;
        store.hops[pi] += 1;
        store.loc[pi] = Loc::Lost;
        progress.lost += 1;
        events.lost.push(m.pkt);
    }
    // Rebuild the active worklist from the route snapshot (pending probe
    // hoisted behind an emptiness check, as in the sequential transmit).
    let has_pending = !grid.pending.is_empty();
    for &ni in bufs.snapshot.iter() {
        if grid.node_load(ni as usize) > 0 || (has_pending && grid.pending.contains_key(&ni)) {
            grid.mark_active(ni as usize);
        }
    }
}

/// Finish: folds the workers' staged maxima, congestion peaks, and packet
/// state writes into the simulation. All three are order-independent
/// (max-reductions and writes to disjoint packets), so worker order does
/// not matter — it is fixed anyway.
unsafe fn coord_finish<T: Topology, R: Router>(shared: &Shared<T, R>) {
    let grid = shared.grid_mut();
    let store = shared.store_mut();
    let progress = shared.progress_mut();
    for w in 0..shared.workers {
        let out = shared.out(w);
        progress.max_queue = progress.max_queue.max(out.max_queue);
        progress.max_node_load = progress.max_node_load.max(out.max_node_load);
        for &(ni, load) in &out.peaks {
            grid.note_peak(ni as usize, load);
        }
        for &(p, s) in &out.state_writes {
            store.state[p.index()] = s;
        }
    }
}

// ---- step drivers ----

/// The single-worker tiled step: the full staging/merge machinery with no
/// threads — the commit protocol itself under test, and the shrink-friendly
/// path for the equivalence proptests.
unsafe fn run_single<T: Topology, R: Router, H: StepHook>(shared: &Shared<T, R>, hook: &mut H) {
    worker_route(shared, 0);
    coord_after_route(shared, hook);
    worker_accept(shared, 0);
    worker_stage(shared, 0);
    coord_commit(shared);
    worker_audit_update(shared, 0);
    coord_finish(shared);
}

/// The threaded tiled step: one scope per step, a barrier pair around each
/// worker phase, coordinator phases in between. Panics on any thread (a
/// validation assertion, a hook panic) poison the step — every thread
/// keeps servicing barriers so nobody deadlocks — and the first panic is
/// re-raised after the scope joins.
fn run_scoped<T: Topology, R: Router, H: StepHook>(shared: &Shared<T, R>, hook: &mut H) {
    let workers = shared.workers;
    let barrier = Barrier::new(workers + 1);
    std::thread::scope(|s| {
        for w in 0..workers {
            let barrier = &barrier;
            s.spawn(move || {
                for phase in 0..4u32 {
                    barrier.wait();
                    if !shared.poisoned() {
                        let r = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                            match phase {
                                0 => worker_route(shared, w),
                                1 => worker_accept(shared, w),
                                2 => worker_stage(shared, w),
                                _ => worker_audit_update(shared, w),
                            }
                        }));
                        if let Err(p) = r {
                            shared.record_panic(w, p);
                        }
                    }
                    barrier.wait();
                }
            });
        }
        let coord = |f: &mut dyn FnMut()| {
            if !shared.poisoned() {
                if let Err(p) = panic::catch_unwind(AssertUnwindSafe(&mut *f)) {
                    shared.record_panic(workers, p);
                }
            }
        };
        barrier.wait(); // route begins
        barrier.wait(); // route done
        coord(&mut || unsafe { coord_after_route(shared, hook) });
        barrier.wait(); // accept begins
        barrier.wait(); // accept done
        barrier.wait(); // transmit-stage begins
        barrier.wait(); // transmit-stage done
        coord(&mut || unsafe { coord_commit(shared) });
        barrier.wait(); // audit + update begin
        barrier.wait(); // audit + update done
        coord(&mut || unsafe { coord_finish(shared) });
    });
}

impl<'t, T: Topology, R: Router> Sim<'t, T, R> {
    /// Executes one step through the tile-sharded pipeline. Byte-identical
    /// to [`Sim::step_with_hook`]'s sequential dispatch for every tile
    /// geometry and worker count.
    pub(crate) fn step_tiled_with_hook<H: StepHook>(&mut self, hook: &mut H) -> bool {
        if self.done() {
            return true;
        }
        let t0 = self.progress.steps;
        let delivered_before = self.progress.delivered;
        let resolved_before = self.progress.delivered + self.progress.shed + self.progress.expired;
        let moves_before = self.progress.total_moves;
        self.events.delivered.clear();
        self.events.lost.clear();
        let mut injected_any = false;
        if t0 > 0 {
            injected_any = phases::inject(&mut self.step_ctx(t0));
        }
        // Route prep (sequential route does the same before its node loop).
        self.bufs.schedule.clear();
        self.bufs.lost_moves.clear();
        self.grid.drain_active_into(&mut self.bufs.snapshot);

        let mut rt = self.tile.take().expect("tiled step without tile runtime");
        let panicked = {
            let shared = Shared {
                t0,
                validate: self.config.validate,
                n: self.grid.n(),
                arch: self.grid.arch(),
                nt: rt.map.nt,
                workers: rt.workers,
                topo: self.topo,
                router: &self.router,
                faults: self.faults.as_ref().map(|f| f as *const CompiledFaults),
                store: &mut self.store,
                grid: &mut self.grid,
                grid_raw: self.grid.raw(),
                node_state: self.node_state.as_mut_ptr(),
                progress: &mut self.progress,
                events: &mut self.events,
                bufs: &mut self.bufs,
                tile_of: rt.map.tile_of.as_ptr(),
                route_stage: rt.route_stage.as_mut_ptr(),
                route_cursor: rt.route_cursor.as_mut_ptr(),
                mailbox: rt.mailbox.as_mut_ptr(),
                mb_cursor: rt.mb_cursor.as_mut_ptr(),
                outs: rt.outs.as_mut_ptr(),
                frame: UnsafeCell::new(Frame {
                    snapshot: self.bufs.snapshot.as_ptr(),
                    snapshot_len: self.bufs.snapshot.len(),
                    ..Frame::default()
                }),
                poison: AtomicBool::new(false),
                panics: Mutex::new((0..=rt.workers).map(|_| None).collect()),
            };
            if shared.workers == 1 {
                // SAFETY: single-threaded — the phase sequence below is
                // exactly the barrier schedule with no concurrency at all.
                let r = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                    run_single(&shared, hook);
                }));
                if let Err(p) = r {
                    shared.record_panic(0, p);
                }
            } else {
                run_scoped(&shared, hook);
            }
            shared.take_panic()
        };
        self.tile = Some(rt);
        if let Some(p) = panicked {
            panic::resume_unwind(p);
        }

        self.progress.steps += 1;
        let delivered = self.progress.delivered != delivered_before;
        let resolved =
            self.progress.delivered + self.progress.shed + self.progress.expired != resolved_before;
        let activity = self.progress.total_moves != moves_before || injected_any || delivered;
        self.timers
            .note(self.progress.steps, activity, delivered, resolved);
        #[cfg(debug_assertions)]
        self.assert_conservation();
        self.done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use mesh_topo::Mesh;
    use mesh_traffic::RoutingProblem;

    /// Minimal greedy router for differential smoke tests: oldest packet
    /// first onto its first free profitable outlink, accept while the
    /// central queue has strict headroom.
    struct Greedy {
        k: u32,
    }

    impl Router for Greedy {
        type NodeState = ();

        fn name(&self) -> String {
            format!("tiles-greedy(k={})", self.k)
        }

        fn queue_arch(&self) -> QueueArch {
            QueueArch::Central { k: self.k }
        }

        fn outqueue(
            &self,
            _step: u64,
            _node: Coord,
            _state: &mut (),
            pkts: &[FullView],
            out: &mut [Option<usize>; 4],
        ) {
            let mut order: Vec<usize> = (0..pkts.len()).collect();
            order.sort_by_key(|&i| pkts[i].pos);
            for i in order {
                if let Some(d) = pkts[i].profitable.iter().find(|d| out[d.index()].is_none()) {
                    out[d.index()] = Some(i);
                }
            }
        }

        fn inqueue(
            &self,
            _step: u64,
            _node: Coord,
            _state: &mut (),
            residents: &[FullView],
            arrivals: &[Arrival<FullView>],
            accept: &mut [bool],
        ) {
            let mut room = (self.k as usize).saturating_sub(residents.len());
            for (i, _a) in arrivals.iter().enumerate() {
                if room > 0 {
                    accept[i] = true;
                    room -= 1;
                }
            }
        }
    }

    fn smoke_problem(n: u32) -> RoutingProblem {
        RoutingProblem::from_pairs(
            n,
            "tiles-smoke",
            (0..n * n).filter(|i| i % 3 != 0).map(|i| {
                let (x, y) = (i % n, i / n);
                (
                    Coord::new(x, y),
                    Coord::new((x * 5 + y * 3 + 1) % n, (y * 7 + x * 2 + 3) % n),
                )
            }),
        )
    }

    fn assert_tiled_matches_sequential(tiles: Option<(u32, u32)>, threads: usize) {
        let n = 8;
        let topo = Mesh::new(n);
        let pb = smoke_problem(n);
        let mut seq = Sim::new(&topo, Greedy { k: 4 }, &pb);
        let config = SimConfig {
            tile_threads: threads,
            tiles,
            ..SimConfig::default()
        };
        let mut par = Sim::with_config(&topo, Greedy { k: 4 }, &pb, config);
        for step in 0..1000 {
            let a = seq.step();
            let b = par.step();
            assert_eq!(a, b, "done flags diverged at step {step}");
            assert_eq!(
                seq.packet_snapshot(),
                par.packet_snapshot(),
                "packet state diverged at step {step} ({tiles:?}, {threads} threads)"
            );
            assert_eq!(seq.last_step_deliveries(), par.last_step_deliveries());
            par.assert_queue_invariants();
            if a {
                break;
            }
        }
        assert!(seq.done(), "smoke scenario did not finish");
        assert_eq!(format!("{:?}", seq.report()), format!("{:?}", par.report()));
    }

    #[test]
    fn tiled_step_matches_sequential_across_geometries() {
        for (tiles, threads) in [
            (None, 2),
            (None, 4),
            (Some((1, 1)), 4), // single tile
            (Some((8, 8)), 4), // 1×1 tiles
            (Some((3, 2)), 3), // non-square, ragged
            (Some((2, 4)), 8), // more threads than useful
            (Some((4, 4)), 1), // tiled machinery, one worker
        ] {
            assert_tiled_matches_sequential(tiles, threads);
        }
    }

    #[test]
    fn tile_map_partitions_every_geometry() {
        for n in [1u32, 2, 3, 4, 7, 16] {
            for tx in 1..=n.min(6) {
                for ty in 1..=n.min(6) {
                    let map = TileMap::new(n, tx, ty);
                    assert_eq!(map.nt, tx * ty);
                    // Every node has a tile; every tile is nonempty.
                    let mut seen = vec![false; map.nt as usize];
                    for ni in 0..(n * n) as usize {
                        seen[map.tile(ni) as usize] = true;
                    }
                    assert!(seen.iter().all(|&s| s), "empty tile in {n} {tx}x{ty}");
                }
            }
        }
    }

    #[test]
    fn tile_map_tiles_are_rectangles() {
        let n = 16;
        let map = TileMap::new(n, 3, 5);
        // A tile's nodes form a rectangle: x-range and y-range are
        // contiguous and every (x, y) combination is present.
        for t in 0..map.nt {
            let nodes: Vec<Coord> = (0..(n * n))
                .filter(|&ni| map.tile(ni as usize) == t)
                .map(|ni| Coord::new(ni % n, ni / n))
                .collect();
            let (x0, x1) = nodes
                .iter()
                .fold((u32::MAX, 0), |(a, b), c| (a.min(c.x), b.max(c.x)));
            let (y0, y1) = nodes
                .iter()
                .fold((u32::MAX, 0), |(a, b), c| (a.min(c.y), b.max(c.y)));
            assert_eq!(
                nodes.len() as u32,
                (x1 - x0 + 1) * (y1 - y0 + 1),
                "tile {t} is not a rectangle"
            );
        }
    }

    #[test]
    fn tile_map_clamps_degenerate_requests() {
        let map = TileMap::new(4, 99, 99);
        assert_eq!(map.nt, 16); // 1×1 tiles
        for ni in 0..16 {
            assert_eq!(map.tile(ni), ni as u32);
        }
    }
}
