//! Packet views: what the two classes of routing algorithms may see.

use crate::queue::QueueKind;
use mesh_topo::{Coord, Dir, DirSet};
use mesh_traffic::PacketId;

/// Full information about a packet in (or scheduled into) a node, available
/// to unrestricted [`Router`](crate::Router) policies.
#[derive(Clone, Copy, Debug)]
pub struct FullView {
    pub id: PacketId,
    /// Source address.
    pub src: Coord,
    /// Destination address. **Absent** from [`DxView`].
    pub dst: Coord,
    /// The packet's mutable state word.
    pub state: u64,
    /// Profitable outlinks. For residents: measured from the holding node.
    /// For arrivals: measured from the *sending* node (§2: "profitable
    /// outlinks of scheduled packets are measured as profitable from the node
    /// from which they are coming").
    pub profitable: DirSet,
    /// Which queue holds the packet.
    pub queue: QueueKind,
    /// Arrival-order position within its queue (0 = oldest). FIFO policies
    /// serve position 0 first.
    pub pos: u32,
}

/// The restricted view available to destination-exchangeable policies (§2):
/// state, source address, and profitable outlinks — and nothing else about
/// the destination. The absence of a `dst` field is the point.
#[derive(Clone, Copy, Debug)]
pub struct DxView {
    pub id: PacketId,
    pub src: Coord,
    pub state: u64,
    pub profitable: DirSet,
    pub queue: QueueKind,
    pub pos: u32,
}

impl FullView {
    /// Projects the full view down to the destination-exchangeable view.
    #[inline]
    pub fn dx(&self) -> DxView {
        DxView {
            id: self.id,
            src: self.src,
            state: self.state,
            profitable: self.profitable,
            queue: self.queue,
            pos: self.pos,
        }
    }
}

/// A packet scheduled to enter a node, as seen by the inqueue policy.
#[derive(Clone, Copy, Debug)]
pub struct Arrival<V> {
    /// The packet (profitable outlinks measured from the sender, per §2).
    pub view: V,
    /// Its direction of travel (it enters across the `travel.opposite()`
    /// side of the accepting node).
    pub travel: Dir,
}

/// Bit-packed resident descriptor for the mask-capable router fast path.
///
/// Layout (low to high): bits `0..4` the profitable-outlink mask (indexed by
/// `Dir as u8`), bits `4..8` the holding queue *slot* under the router's own
/// declared [`QueueArch`](crate::QueueArch) (Central: 0; PerInlink: `0..4` =
/// `Inlink(Dir)`, 4 = `Injection`), bits `8..32` the FIFO position within
/// that queue (0 = oldest). A whole node's residents fit in one cache line
/// for typical queue bounds.
///
/// The slot index is the same one the queue arena uses to address its
/// inline cells (DESIGN.md §14), so building a descriptor from the grid is
/// an occupancy-bitmask walk — no `QueueKind` round-trip in the hot path.
///
/// This deliberately carries *less* than [`DxView`]: no id, no source, no
/// state word. It is therefore destination-exchangeable by construction — a
/// router that declares `mask_capable` promises its policy depends only on
/// these three fields plus its own node state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedView(u32);

impl PackedView {
    /// Packs a resident descriptor. `slot` must be `< 16` and `pos < 2^24`
    /// (both are structurally guaranteed by the engine's queue bounds).
    #[inline]
    pub fn new(profitable: DirSet, slot: usize, pos: u32) -> PackedView {
        debug_assert!(slot < 16);
        debug_assert!(pos < (1 << 24));
        PackedView(profitable.bits() as u32 | ((slot as u32) << 4) | (pos << 8))
    }

    /// Profitable outlinks, measured from the holding node.
    #[inline]
    pub fn profitable(self) -> DirSet {
        DirSet::from_bits((self.0 & 0xF) as u8)
    }

    /// Holding-queue slot index under the router's declared arch.
    #[inline]
    pub fn slot(self) -> usize {
        ((self.0 >> 4) & 0xF) as usize
    }

    /// Arrival-order position within the queue (0 = oldest).
    #[inline]
    pub fn pos(self) -> u32 {
        self.0 >> 8
    }
}

/// Bit-packed arrival descriptor for the mask-capable inqueue fast path.
///
/// Bits `0..4`: profitable mask measured from the *sending* node (§2). Bits
/// `4..6`: the direction of travel (`Dir as u8`). The arrival queue on the
/// accepting side is derivable (`travel.opposite()` inlink, or the central
/// queue), so it is not stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedArrival(u8);

impl PackedArrival {
    /// Packs an arrival descriptor.
    #[inline]
    pub fn new(profitable: DirSet, travel: Dir) -> PackedArrival {
        PackedArrival(profitable.bits() | ((travel as u8) << 4))
    }

    /// Profitable outlinks, measured from the sending node.
    #[inline]
    pub fn profitable(self) -> DirSet {
        DirSet::from_bits(self.0 & 0xF)
    }

    /// Direction of travel into the accepting node.
    #[inline]
    pub fn travel(self) -> Dir {
        Dir::from_index(((self.0 >> 4) & 0b11) as usize)
    }
}
