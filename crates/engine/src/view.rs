//! Packet views: what the two classes of routing algorithms may see.

use crate::queue::QueueKind;
use mesh_topo::{Coord, Dir, DirSet};
use mesh_traffic::PacketId;

/// Full information about a packet in (or scheduled into) a node, available
/// to unrestricted [`Router`](crate::Router) policies.
#[derive(Clone, Copy, Debug)]
pub struct FullView {
    pub id: PacketId,
    /// Source address.
    pub src: Coord,
    /// Destination address. **Absent** from [`DxView`].
    pub dst: Coord,
    /// The packet's mutable state word.
    pub state: u64,
    /// Profitable outlinks. For residents: measured from the holding node.
    /// For arrivals: measured from the *sending* node (§2: "profitable
    /// outlinks of scheduled packets are measured as profitable from the node
    /// from which they are coming").
    pub profitable: DirSet,
    /// Which queue holds the packet.
    pub queue: QueueKind,
    /// Arrival-order position within its queue (0 = oldest). FIFO policies
    /// serve position 0 first.
    pub pos: u32,
}

/// The restricted view available to destination-exchangeable policies (§2):
/// state, source address, and profitable outlinks — and nothing else about
/// the destination. The absence of a `dst` field is the point.
#[derive(Clone, Copy, Debug)]
pub struct DxView {
    pub id: PacketId,
    pub src: Coord,
    pub state: u64,
    pub profitable: DirSet,
    pub queue: QueueKind,
    pub pos: u32,
}

impl FullView {
    /// Projects the full view down to the destination-exchangeable view.
    #[inline]
    pub fn dx(&self) -> DxView {
        DxView {
            id: self.id,
            src: self.src,
            state: self.state,
            profitable: self.profitable,
            queue: self.queue,
            pos: self.pos,
        }
    }
}

/// A packet scheduled to enter a node, as seen by the inqueue policy.
#[derive(Clone, Copy, Debug)]
pub struct Arrival<V> {
    /// The packet (profitable outlinks measured from the sender, per §2).
    pub view: V,
    /// Its direction of travel (it enters across the `travel.opposite()`
    /// side of the accepting node).
    pub travel: Dir,
}
