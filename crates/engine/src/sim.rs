//! The synchronous multi-port simulation façade.
//!
//! [`Sim`] composes the engine's parts — the [`PacketStore`] packet
//! table and [`NodeGrid`] queue storage (`storage`), the named step
//! phases (`phases`, see [`STEP_PIPELINE`]), the unified run driver
//! (`driver`), and the no-progress watchdog (`watchdog`) — behind the
//! public API. [`Sim::step_with_hook`] dispatches the phase pipeline;
//! `run`, [`Sim::run_with_hook`], and [`Sim::run_with_protocol`] are
//! thin wrappers over the one `run_driver`.

use crate::diag::{DiagnosticSnapshot, NodeOccupancy, StuckPacket};
use crate::driver::{self, HookRunner, ProtocolRunner};
use crate::hook::{NoHook, StepHook};
use crate::metrics::SimReport;
use crate::phases::{self, EventLog, Phase, Progress, StepBufs, StepCtx, STEP_PIPELINE};

pub use crate::phases::AdmissionPolicy;
use crate::protocol::ProtocolHook;
use crate::queue::{QueueArch, QueueKind};
use crate::router::Router;
use crate::storage::{NodeGrid, PacketStore, NOT_DELIVERED};
use crate::watchdog::Timers;
use mesh_faults::CompiledFaults;
use mesh_topo::{Coord, Topology};
use mesh_traffic::{PacketId, RoutingProblem};

pub use crate::storage::Loc;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Validate every schedule (one packet per outlink, profitable moves for
    /// minimal routers) and every queue capacity at each step. Violations
    /// panic — they are router implementation bugs, not runtime conditions.
    pub validate: bool,
    /// No-progress watchdog window, in steps. When set, [`Sim::run_with_hook`]
    /// returns [`SimError::Deadlock`] after `w` consecutive steps with no
    /// accepted move, no delivery, and no injection, and
    /// [`SimError::Livelock`] after `w` consecutive steps with moves but no
    /// delivery. The watchdog stays disarmed while future injections remain
    /// or a *transient* fault might still lift (permanent faults do not
    /// disarm it). `None` (the default) disables it: runs are then
    /// bit-for-bit identical to the pre-watchdog engine.
    pub watchdog: Option<u64>,
    /// Worker threads for tile-sharded intra-step parallelism. `1` (the
    /// default) runs the plain sequential pipeline. Any value produces
    /// **bit-identical** results — reports, per-step event streams,
    /// diagnostics — for any thread count and tile geometry; parallelism
    /// is purely an execution strategy (see the `tiles` module).
    pub tile_threads: usize,
    /// Explicit tile geometry `(tx, ty)`: the mesh splits into `tx`
    /// columns × `ty` rows of rectangular tiles (values clamp to `[1, n]`).
    /// `None` derives one horizontal band per thread. Setting this with
    /// `tile_threads = 1` still exercises the tiled execution path (the
    /// staging/merge machinery on one worker) — useful for tests.
    pub tiles: Option<(u32, u32)>,
    /// Checkpoint cadence, in steps. When set, the checkpointing run
    /// drivers ([`Sim::run_checkpointed`],
    /// [`Sim::run_with_protocol_checkpointed`]) hand a full
    /// [`Snapshot`](crate::snapshot::Snapshot) to their
    /// [`CheckpointSink`](crate::snapshot::CheckpointSink) after every
    /// `c`-th step. Checkpointing is an *observer*: it never changes what
    /// the simulation computes, and a run resumed from any checkpoint is
    /// bit-identical to one that never stopped. `None` (the default)
    /// disables it; the plain `run`/`run_with_hook`/`run_with_protocol`
    /// entry points ignore it entirely.
    pub checkpoint_every: Option<u64>,
    /// Admission-control policy at the injection edge (open-system
    /// overload robustness; see [`AdmissionPolicy`]). The default,
    /// [`AdmissionPolicy::DeferIndefinitely`], is the closed-system
    /// behavior every pre-existing experiment assumes: nothing is ever
    /// shed or expired, and runs are bit-identical to the pre-admission
    /// engine.
    pub admission: AdmissionPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            validate: true,
            watchdog: None,
            tile_threads: 1,
            tiles: None,
            checkpoint_every: None,
            admission: AdmissionPolicy::DeferIndefinitely,
        }
    }
}

/// Why a run failed, with the network state at failure time.
///
/// Every variant carries a [`DiagnosticSnapshot`]: stuck packet ids,
/// locations, destinations, per-node queue occupancy, and active faults.
/// The snapshot is boxed so a `Result<_, SimError>` on the step loop's
/// return path stays pointer-sized instead of carrying the multi-hundred-
/// byte diagnostic payload inline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The step cap was reached with packets undelivered.
    StepCap(Box<DiagnosticSnapshot>),
    /// Watchdog: a full window with no accepted move, no delivery, and no
    /// injection — nothing can ever change again (under a static fault set).
    Deadlock(Box<DiagnosticSnapshot>),
    /// Watchdog: a full window in which packets moved but none was
    /// delivered.
    Livelock(Box<DiagnosticSnapshot>),
}

impl SimError {
    /// The network state at failure time.
    pub fn snapshot(&self) -> &DiagnosticSnapshot {
        match self {
            SimError::StepCap(s) | SimError::Deadlock(s) | SimError::Livelock(s) => s,
        }
    }

    /// Stable lowercase tag (`"step-cap"`, `"deadlock"`, `"livelock"`) for
    /// result tables.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::StepCap(_) => "step-cap",
            SimError::Deadlock(_) => "deadlock",
            SimError::Livelock(_) => "livelock",
        }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::StepCap(s) => write!(f, "step limit reached: {s}"),
            SimError::Deadlock(s) => write!(f, "deadlock (no moves or deliveries): {s}"),
            SimError::Livelock(s) => write!(f, "livelock (moves but no deliveries): {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A synchronous simulation of one routing problem under one algorithm.
///
/// See the crate documentation for the step semantics. The engine is
/// deterministic: identical problems and routers produce identical runs.
pub struct Sim<'t, T: Topology, R: Router> {
    pub(crate) topo: &'t T,
    pub(crate) router: R,
    pub(crate) workload: String,
    pub(crate) config: SimConfig,
    // Compiled fault state; `None` (no plan, or an empty plan) is the fast
    // path with zero per-move overhead.
    pub(crate) faults: Option<CompiledFaults>,
    pub(crate) store: PacketStore,
    pub(crate) grid: NodeGrid,
    pub(crate) node_state: Vec<R::NodeState>,
    pub(crate) progress: Progress,
    pub(crate) timers: Timers,
    pub(crate) events: EventLog,
    pub(crate) bufs: StepBufs,
    /// Tile-sharded execution runtime; `None` = sequential dispatch.
    pub(crate) tile: Option<Box<crate::tiles::TileRt>>,
}

impl<'t, T: Topology, R: Router> Sim<'t, T, R> {
    /// Sets up a simulation of `problem` under `router` on `topo`.
    ///
    /// Static packets are placed in their origin queues immediately. If a
    /// node's origin queue cannot hold all its static packets (an h-h problem
    /// with `h > k`), the excess waits outside the network and is injected as
    /// space appears, per the dynamic-setting remark in §5 of the paper.
    pub fn new(topo: &'t T, router: R, problem: &RoutingProblem) -> Self {
        Self::with_config(topo, router, problem, SimConfig::default())
    }

    /// [`Sim::new`] with explicit configuration.
    pub fn with_config(
        topo: &'t T,
        router: R,
        problem: &RoutingProblem,
        config: SimConfig,
    ) -> Self {
        Self::with_faults_opt(topo, router, problem, config, None)
    }

    /// [`Sim::with_config`] plus a compiled fault plan. Faults apply from
    /// step 0 (a node stalled at step 0 does not even inject). An empty plan
    /// is dropped entirely, so it is *exactly* equivalent to no plan.
    pub fn with_faults(
        topo: &'t T,
        router: R,
        problem: &RoutingProblem,
        config: SimConfig,
        faults: CompiledFaults,
    ) -> Self {
        Self::with_faults_opt(topo, router, problem, config, Some(faults))
    }

    fn with_faults_opt(
        topo: &'t T,
        router: R,
        problem: &RoutingProblem,
        config: SimConfig,
        faults: Option<CompiledFaults>,
    ) -> Self {
        let n = topo.side();
        assert_eq!(n, problem.n, "problem and topology sides differ");
        let faults = faults.filter(|f| {
            assert_eq!(f.n(), n, "fault plan and topology sides differ");
            !f.is_empty()
        });
        let arch = router.queue_arch();
        assert!(arch.k() >= 1, "queue capacity k must be at least 1");
        let nodes = (n * n) as usize;

        let mut sim = Sim {
            topo,
            router,
            workload: problem.label.clone(),
            config,
            faults,
            store: PacketStore::new(problem),
            grid: NodeGrid::new(n, arch),
            node_state: vec![R::NodeState::default(); nodes],
            progress: Progress::default(),
            timers: Timers::default(),
            events: EventLog::default(),
            bufs: StepBufs::default(),
            tile: crate::tiles::TileRt::new(n, &config).map(Box::new),
        };
        phases::inject(&mut sim.step_ctx(0));
        sim
    }

    /// Assembles the split-borrow phase context for step `t0`.
    pub(crate) fn step_ctx(&mut self, t0: u64) -> StepCtx<'_, 't, T, R> {
        StepCtx {
            t0,
            topo: self.topo,
            router: &self.router,
            validate: self.config.validate,
            admission: self.config.admission,
            faults: self.faults.as_ref(),
            store: &mut self.store,
            grid: &mut self.grid,
            node_state: &mut self.node_state,
            progress: &mut self.progress,
            events: &mut self.events,
            bufs: &mut self.bufs,
        }
    }

    /// Executes one step under the given hook by dispatching
    /// [`STEP_PIPELINE`] in order. Returns `true` when every packet has
    /// been delivered (in which case nothing was simulated).
    pub fn step_with_hook<H: StepHook>(&mut self, hook: &mut H) -> bool {
        if self.tile.is_some() {
            return self.step_tiled_with_hook(hook);
        }
        if self.done() {
            return true;
        }
        let t0 = self.progress.steps;
        let delivered_before = self.progress.delivered;
        let resolved_before = self.progress.delivered + self.progress.shed + self.progress.expired;
        let moves_before = self.progress.total_moves;
        self.events.delivered.clear();
        self.events.lost.clear();
        let mut injected_any = false;
        let mut ctx = self.step_ctx(t0);
        for phase in STEP_PIPELINE {
            match phase {
                // Construction already injected everything due at step 0.
                Phase::Inject if t0 > 0 => injected_any = phases::inject(&mut ctx),
                Phase::Inject => {}
                Phase::Route => phases::route(&mut ctx),
                Phase::EnforceFaults => phases::enforce_faults(&mut ctx),
                Phase::Adversary => phases::adversary(&mut ctx, hook),
                Phase::Accept => phases::accept(&mut ctx),
                Phase::Transmit => phases::transmit(&mut ctx),
                Phase::Audit => phases::audit(&mut ctx),
                Phase::UpdateState => phases::update_state(&mut ctx),
            }
        }
        self.progress.steps += 1;
        // Watchdog bookkeeping (1-based step stamps; 0 = never). A step
        // *resolves* work when it delivers, sheds, or expires a packet —
        // the overload watchdog's notion of staying live.
        let delivered = self.progress.delivered != delivered_before;
        let resolved =
            self.progress.delivered + self.progress.shed + self.progress.expired != resolved_before;
        let activity = self.progress.total_moves != moves_before || injected_any || delivered;
        self.timers
            .note(self.progress.steps, activity, delivered, resolved);
        #[cfg(debug_assertions)]
        self.assert_conservation();
        self.done()
    }

    /// Executes one step with no adversary.
    pub fn step(&mut self) -> bool {
        self.step_with_hook(&mut NoHook)
    }

    /// Runs (with a hook) until all packets are delivered, `max_steps` total
    /// steps have executed, or — when [`SimConfig::watchdog`] is set — a full
    /// no-progress window elapses.
    pub fn run_with_hook<H: StepHook>(
        &mut self,
        max_steps: u64,
        hook: &mut H,
    ) -> Result<u64, SimError> {
        driver::run_driver(self, max_steps, &mut HookRunner { hook })
    }

    /// Runs without an adversary until done or `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, SimError> {
        self.run_with_hook(max_steps, &mut NoHook)
    }

    /// Runs the simulation under a [`ProtocolHook`] (e.g. the
    /// `mesh-reliable` transport): after every step the hook observes that
    /// step's deliveries and losses, may [`spawn`](Sim::spawn)
    /// ACKs/retransmissions, and decides whether the protocol is finished.
    ///
    /// The watchdog (when configured) is protocol-aware — the plain
    /// "injections remain" disarm of [`Sim::run_with_hook`] would be wrong
    /// in both directions here. While the protocol reports outstanding
    /// payloads, periodic retransmissions keep generating *activity*
    /// forever, so the deadlock rule would never fire and a real wedge
    /// would be masked: instead, a full window without any *delivery*
    /// (measured from the last fault transition) is reported as
    /// [`SimError::Livelock`]. Once nothing is outstanding and every
    /// injection (including deferred ones) is in, the ordinary no-activity
    /// deadlock rule applies.
    pub fn run_with_protocol<P: ProtocolHook>(
        &mut self,
        max_steps: u64,
        proto: &mut P,
    ) -> Result<u64, SimError> {
        driver::run_driver(self, max_steps, &mut ProtocolRunner { proto })
    }

    // ---- checkpointing run drivers (crash-safe runs) ----

    /// [`Sim::run`] with crash-safe checkpointing: every
    /// [`SimConfig::checkpoint_every`] steps a full
    /// [`Snapshot`](crate::snapshot::Snapshot) goes to `sink`, and if the
    /// run fails (step cap or watchdog) the sink receives the failure
    /// diagnostics too — the hook a [`DirectorySink`](crate::snapshot::DirectorySink)
    /// uses to persist `diag_<step>.json` next to the active checkpoint.
    /// With `checkpoint_every` unset this is exactly [`Sim::run`].
    pub fn run_checkpointed<S: crate::snapshot::CheckpointSink>(
        &mut self,
        max_steps: u64,
        sink: &mut S,
    ) -> Result<u64, SimError>
    where
        R::NodeState: serde::Serialize,
    {
        let res = driver::run_driver(
            self,
            max_steps,
            &mut driver::CheckpointHookRunner {
                hook: &mut NoHook,
                sink,
            },
        );
        crate::snapshot::report_failure(sink, &res);
        res
    }

    /// [`Sim::run_with_protocol`] with crash-safe checkpointing. The
    /// protocol must implement [`SnapshotHook`](crate::snapshot::SnapshotHook)
    /// so its state (ARQ sequence numbers, seen-sets, backoff RNG, …)
    /// rides along in each checkpoint's `protocol` slot; on restore the
    /// caller rebuilds the protocol and feeds that slot back through
    /// [`SnapshotHook::restore_state`](crate::snapshot::SnapshotHook::restore_state).
    pub fn run_with_protocol_checkpointed<P, S>(
        &mut self,
        max_steps: u64,
        proto: &mut P,
        sink: &mut S,
    ) -> Result<u64, SimError>
    where
        P: ProtocolHook + crate::snapshot::SnapshotHook,
        S: crate::snapshot::CheckpointSink,
        R::NodeState: serde::Serialize,
    {
        let res = driver::run_driver(
            self,
            max_steps,
            &mut driver::CheckpointProtocolRunner { proto, sink },
        );
        crate::snapshot::report_failure(sink, &res);
        res
    }

    // ---- runtime packet spawning (protocol layers) ----

    /// Appends a fresh packet to the running simulation, to be injected at
    /// the beginning of step `inject_at` (which must not lie in the past).
    /// Returns its id — always `num_packets()` at call time, so callers can
    /// maintain dense side tables. The injection goes through the same
    /// admission control as everything else: if the origin queue is full,
    /// the packet waits outside the network.
    ///
    /// This is how a transport layer retransmits (and ACKs): a
    /// retransmission is a *new* packet for the same payload, not a revival
    /// of the lost one.
    pub fn spawn(&mut self, src: Coord, dst: Coord, inject_at: u64) -> PacketId {
        assert!(
            inject_at >= self.progress.steps,
            "spawn at step {inject_at} but the simulation is already at {}",
            self.progress.steps
        );
        let n = self.grid.n();
        assert!(
            src.x < n && src.y < n && dst.x < n && dst.y < n,
            "spawn endpoints must lie on the {n}x{n} grid"
        );
        self.store.push(src, dst, inject_at)
    }

    /// Packets delivered during the most recent step, in deterministic
    /// order. Valid until the next step executes.
    pub fn last_step_deliveries(&self) -> &[PacketId] {
        &self.events.delivered
    }

    /// Packets destroyed by lossy links during the most recent step.
    pub fn last_step_losses(&self) -> &[PacketId] {
        &self.events.lost
    }

    /// True when no future or deferred injection remains: the cursor is
    /// exhausted *and* admission control holds nothing back. While this is
    /// false, outside input can still change the network, so a watchdog
    /// must not declare a wedge on quietness alone.
    pub fn injections_exhausted(&self) -> bool {
        self.store.cursor_exhausted() && !self.grid.has_pending()
    }

    /// The last step at which a *transient* fault transitions — the
    /// watchdog's settle horizon.
    pub(crate) fn fault_settle(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.last_transition())
    }

    // ---- accessors ----

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.progress.steps
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> usize {
        self.progress.delivered
    }

    /// Packets destroyed by lossy links so far.
    pub fn lost(&self) -> usize {
        self.progress.lost
    }

    /// Packet-steps spent deferred by injection admission control so far.
    pub fn deferred_injections(&self) -> u64 {
        self.progress.deferred_injections
    }

    /// Packets currently staged at injection edges — due but not yet
    /// admitted into the network. Unlike the cumulative packet-step
    /// counter [`Sim::deferred_injections`], this is the instantaneous
    /// backlog, queryable mid-run.
    pub fn pending_injections(&self) -> usize {
        self.grid.staged_total()
    }

    /// Packets rejected at the injection edge by admission control so far
    /// (`RejectNew` refusals and `DropOldestDeferred` evictions).
    pub fn shed(&self) -> usize {
        self.progress.shed
    }

    /// Packets whose deadline passed so far, at the edge or queued
    /// in-network (`DeadlineExpiry`).
    pub fn expired(&self) -> usize {
        self.progress.expired
    }

    /// Packets whose injection time has been reached so far — everything
    /// the open system has *offered* to the network (admitted or not).
    pub fn offered(&self) -> usize {
        self.store.offered()
    }

    /// Step at which a packet is (or was) due for injection.
    pub fn inject_step(&self, p: PacketId) -> u64 {
        self.store.inject_at[p.index()]
    }

    /// Total packets.
    pub fn num_packets(&self) -> usize {
        self.store.len()
    }

    /// True when every packet has been delivered.
    pub fn done(&self) -> bool {
        self.progress.delivered == self.store.len()
    }

    /// Current location of a packet.
    pub fn loc(&self, p: PacketId) -> Loc {
        self.store.loc[p.index()]
    }

    /// Current destination of a packet (reflects adversary exchanges).
    pub fn dst(&self, p: PacketId) -> Coord {
        self.store.dst[p.index()]
    }

    /// Source of a packet.
    pub fn src(&self, p: PacketId) -> Coord {
        self.store.src[p.index()]
    }

    /// Step at which a packet was delivered (1-based), if delivered.
    pub fn delivered_step(&self, p: PacketId) -> Option<u64> {
        let d = self.store.delivered_at[p.index()];
        (d != NOT_DELIVERED).then_some(d)
    }

    /// Link traversals performed by each packet so far, indexed by
    /// `PacketId`. Sums to `total_moves`; for a delivered packet of a minimal
    /// router it equals the source→destination L1 distance.
    pub fn packet_hops(&self) -> &[u32] {
        &self.store.hops
    }

    /// The packets currently in a node, over all queues, in queue order —
    /// answered from the [`NodeGrid`]'s own slab region (no packet-table
    /// scan, no allocation).
    pub fn packets_at(&self, c: Coord) -> impl Iterator<Item = PacketId> + '_ {
        self.grid.packets_at(c)
    }

    /// The non-empty queues of a node in slot order, as `(kind, contents)`
    /// with contents sliced straight out of the queue arena — the
    /// zero-copy seam differential batteries compare against a shadow
    /// grid.
    pub fn queues_at(&self, c: Coord) -> impl Iterator<Item = (QueueKind, &[PacketId])> + '_ {
        let ni = self.grid.node_index(c);
        self.grid
            .node_queues(ni)
            .map(|(s, q)| (self.grid.slot_kind(s), q))
    }

    /// The routing problem defined by the packets' *current* destinations —
    /// after an adversary run, this is the paper's **constructed
    /// permutation** (step 4 of the §3 construction).
    pub fn current_problem(&self, label: impl Into<String>) -> RoutingProblem {
        RoutingProblem::from_pairs(
            self.grid.n(),
            label,
            self.store
                .src
                .iter()
                .copied()
                .zip(self.store.dst.iter().copied()),
        )
    }

    /// A deterministic digest of packet configuration (location, destination,
    /// state per packet) for replay-equivalence tests (Lemma 12).
    pub fn packet_snapshot(&self) -> Vec<(Loc, Coord, u64)> {
        (0..self.store.len())
            .map(|i| (self.store.loc[i], self.store.dst[i], self.store.state[i]))
            .collect()
    }

    /// Summary of the run so far.
    pub fn report(&self) -> SimReport {
        let lat: Vec<u64> = self.latencies();
        SimReport {
            algorithm: self.router.name(),
            workload: self.workload.clone(),
            n: self.grid.n(),
            arch: self.grid.arch(),
            total_packets: self.store.len(),
            delivered: self.progress.delivered,
            lost: self.progress.lost,
            shed: self.progress.shed,
            expired: self.progress.expired,
            deferred_injections: self.progress.deferred_injections,
            steps: self.progress.steps,
            completed: self.done(),
            max_queue: self.progress.max_queue,
            max_node_load: self.progress.max_node_load,
            total_moves: self.progress.total_moves,
            exchanges: self.progress.exchanges,
            avg_latency: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<u64>() as f64 / lat.len() as f64
            },
            max_latency: lat.iter().copied().max().unwrap_or(0),
        }
    }

    /// Per-packet latencies (delivery step minus injection step) over
    /// delivered packets.
    fn latencies(&self) -> Vec<u64> {
        self.store
            .delivered_at
            .iter()
            .zip(self.store.inject_at.iter())
            .filter(|(&d, _)| d != NOT_DELIVERED)
            .map(|(&d, &i)| d.saturating_sub(i))
            .collect()
    }

    /// Latency distribution over delivered packets (delivery step minus
    /// injection step).
    pub fn latency_distribution(&self) -> crate::stats::Distribution {
        crate::stats::Distribution::of(&self.latencies())
    }

    /// Per-node peak occupancy over the whole run (congestion map).
    pub fn congestion_map(&self) -> crate::stats::NodeField {
        crate::stats::NodeField {
            n: self.grid.n(),
            values: self.grid.peak_load.iter().map(|&v| v as u32).collect(),
        }
    }

    /// Deliveries per step.
    pub fn delivery_curve(&self) -> crate::stats::DeliveryCurve {
        crate::stats::DeliveryCurve::from_delivery_steps(
            self.store
                .delivered_at
                .iter()
                .copied()
                .filter(|&d| d != NOT_DELIVERED),
        )
    }

    /// The state of the network right now, in the form failure reports
    /// carry: stuck packets, per-node occupancy, active faults.
    pub fn diagnostics(&self) -> DiagnosticSnapshot {
        let mut stuck = Vec::new();
        for i in 0..self.store.len() {
            if let Loc::At(c) = self.store.loc[i] {
                stuck.push(StuckPacket {
                    id: PacketId(i as u32),
                    at: c,
                    dst: self.store.dst[i],
                    hops: self.store.hops[i],
                });
            }
        }
        let mut occupancy = Vec::new();
        for ni in 0..self.grid.nodes() {
            let load = self.grid.node_load(ni);
            if load > 0 {
                occupancy.push(NodeOccupancy {
                    node: self.grid.coord_of(ni),
                    load,
                });
            }
        }
        DiagnosticSnapshot {
            step: self.progress.steps,
            delivered: self.progress.delivered,
            total: self.store.len(),
            pending: self.store.len()
                - self.progress.delivered
                - self.progress.lost
                - self.progress.shed
                - self.progress.expired
                - stuck.len(),
            lost: self.progress.lost,
            shed: self.progress.shed,
            expired: self.progress.expired,
            deferred: self.pending_injections(),
            offered: self.store.offered(),
            stuck,
            occupancy,
            active_faults: self
                .faults
                .as_ref()
                .map(|f| f.active_at(self.progress.steps))
                .unwrap_or_default(),
        }
    }

    /// Asserts the engine's queue invariants *right now*: every bounded
    /// queue within its capacity, the O(1) occupancy index in sync with
    /// the actual queue contents, and every queued packet's location and
    /// queue-kind records pointing back at the queue that holds it.
    ///
    /// The audit phase enforces the capacity bound each step when
    /// [`SimConfig::validate`] is on; this accessor lets tests check the
    /// full set *between* steps — e.g. a property test stepping manually
    /// and auditing after every step, rather than only at the end of a run.
    pub fn assert_queue_invariants(&self) {
        let t = self.progress.steps;
        for ni in 0..self.grid.nodes() {
            let c = self.grid.coord_of(ni);
            let mut load = 0u32;
            let mut occ = 0u8;
            for slot in 0..self.grid.slots() {
                let len = self.grid.queue_len(ni, slot) as u32;
                load += len;
                if len > 0 {
                    occ |= 1 << slot;
                }
                let kind = self.grid.slot_kind(slot);
                if let Some(cap) = self.grid.arch().capacity(kind) {
                    assert!(
                        len <= cap,
                        "queue {kind:?} of node {c} holds {len} > cap {cap} at step {t}"
                    );
                }
                for &pid in self.grid.queue(ni, slot) {
                    assert_eq!(
                        self.store.loc[pid.index()],
                        Loc::At(c),
                        "packet {pid:?} queued at {c} but its location disagrees (step {t})"
                    );
                    assert_eq!(
                        self.store.queue_of[pid.index()],
                        kind,
                        "packet {pid:?} queued in {kind:?} at {c} but its record disagrees (step {t})"
                    );
                }
            }
            assert_eq!(
                load,
                self.grid.node_load(ni),
                "occupancy index out of sync at {c} (step {t})"
            );
            assert_eq!(
                occ,
                self.grid.occ_mask(ni),
                "occupancy bitmask out of sync at {c} (step {t})"
            );
        }
    }

    /// Asserts the open-system packet-conservation invariant *right now*:
    /// every packet whose injection time has been reached is in exactly
    /// one bucket, and the location table agrees with the monotone
    /// counters:
    ///
    /// ```text
    /// offered == delivered + lost + shed + expired + in_network + staged
    /// ```
    ///
    /// Debug builds check this after every step (both the sequential and
    /// the tile-sharded tails); tests call it directly under any
    /// λ/policy/geometry.
    pub fn assert_conservation(&self) {
        let t = self.progress.steps;
        let (mut at, mut delivered, mut lost, mut shed, mut expired, mut pending) =
            (0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
        for &loc in &self.store.loc {
            match loc {
                Loc::Pending => pending += 1,
                Loc::At(_) => at += 1,
                Loc::Delivered => delivered += 1,
                Loc::Lost => lost += 1,
                Loc::Shed => shed += 1,
                Loc::Expired => expired += 1,
            }
        }
        assert_eq!(
            delivered, self.progress.delivered,
            "delivered counter out of sync with location table at step {t}"
        );
        assert_eq!(
            lost, self.progress.lost,
            "lost counter out of sync with location table at step {t}"
        );
        assert_eq!(
            shed, self.progress.shed,
            "shed counter out of sync with location table at step {t}"
        );
        assert_eq!(
            expired, self.progress.expired,
            "expired counter out of sync with location table at step {t}"
        );
        let staged = self.grid.staged_total();
        let future = self.store.len() - self.store.offered();
        assert_eq!(
            pending,
            staged + future,
            "Pending locations must be exactly the staged + not-yet-due packets (step {t})"
        );
        assert_eq!(
            self.store.offered(),
            delivered + lost + shed + expired + at + staged,
            "conservation violated at step {t}: offered != \
             delivered + lost + shed + expired + in_network + staged"
        );
    }

    /// The router's queue architecture.
    pub fn arch(&self) -> QueueArch {
        self.grid.arch()
    }

    /// Immutable access to the router.
    pub fn router(&self) -> &R {
        &self.router
    }
}

// Keep the compiler honest about the phase list: one entry per `Phase`
// variant, each exactly once (a match would not catch duplicates).
const _: () = {
    let mut seen = [false; 8];
    let mut i = 0;
    while i < STEP_PIPELINE.len() {
        let idx = STEP_PIPELINE[i] as usize;
        assert!(!seen[idx], "phase listed twice");
        seen[idx] = true;
        i += 1;
    }
};
