//! The synchronous multi-port simulation engine.

use crate::diag::{DiagnosticSnapshot, NodeOccupancy, StuckPacket};
use crate::hook::{HookCtx, NoHook, ScheduledMove, StepHook};
use crate::metrics::SimReport;
use crate::queue::{QueueArch, QueueKind};
use crate::router::Router;
use crate::view::{Arrival, FullView};
use mesh_faults::CompiledFaults;
use mesh_topo::{Coord, Dir, Topology, ALL_DIRS};
use mesh_traffic::{PacketId, RoutingProblem};
use std::collections::HashMap;

/// Where a packet currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// Not yet injected (dynamic problems, or waiting for queue space).
    Pending,
    /// In some queue of the node at the given coordinate.
    At(Coord),
    /// Delivered and removed from the network.
    Delivered,
    /// Destroyed by a lossy link: transmitted, never arrived, gone for good.
    /// Only the reliable-transport layer can recover the payload (by
    /// spawning a retransmission as a fresh packet).
    Lost,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Validate every schedule (one packet per outlink, profitable moves for
    /// minimal routers) and every queue capacity at each step. Violations
    /// panic — they are router implementation bugs, not runtime conditions.
    pub validate: bool,
    /// No-progress watchdog window, in steps. When set, [`Sim::run_with_hook`]
    /// returns [`SimError::Deadlock`] after `w` consecutive steps with no
    /// accepted move, no delivery, and no injection, and
    /// [`SimError::Livelock`] after `w` consecutive steps with moves but no
    /// delivery. The watchdog stays disarmed while future injections remain
    /// or a *transient* fault might still lift (permanent faults do not
    /// disarm it). `None` (the default) disables it: runs are then
    /// bit-for-bit identical to the pre-watchdog engine.
    pub watchdog: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            validate: true,
            watchdog: None,
        }
    }
}

/// Why a run failed, with the network state at failure time.
///
/// Every variant carries a [`DiagnosticSnapshot`]: stuck packet ids,
/// locations, destinations, per-node queue occupancy, and active faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The step cap was reached with packets undelivered.
    StepCap(DiagnosticSnapshot),
    /// Watchdog: a full window with no accepted move, no delivery, and no
    /// injection — nothing can ever change again (under a static fault set).
    Deadlock(DiagnosticSnapshot),
    /// Watchdog: a full window in which packets moved but none was
    /// delivered.
    Livelock(DiagnosticSnapshot),
}

impl SimError {
    /// The network state at failure time.
    pub fn snapshot(&self) -> &DiagnosticSnapshot {
        match self {
            SimError::StepCap(s) | SimError::Deadlock(s) | SimError::Livelock(s) => s,
        }
    }

    /// Stable lowercase tag (`"step-cap"`, `"deadlock"`, `"livelock"`) for
    /// result tables.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::StepCap(_) => "step-cap",
            SimError::Deadlock(_) => "deadlock",
            SimError::Livelock(_) => "livelock",
        }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::StepCap(s) => write!(f, "step limit reached: {s}"),
            SimError::Deadlock(s) => write!(f, "deadlock (no moves or deliveries): {s}"),
            SimError::Livelock(s) => write!(f, "livelock (moves but no deliveries): {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A synchronous simulation of one routing problem under one algorithm.
///
/// See the crate documentation for the step semantics. The engine is
/// deterministic: identical problems and routers produce identical runs.
pub struct Sim<'t, T: Topology, R: Router> {
    topo: &'t T,
    router: R,
    arch: QueueArch,
    slots: usize,
    n: u32,
    workload: String,
    config: SimConfig,
    // Compiled fault state; `None` (no plan, or an empty plan) is the fast
    // path with zero per-move overhead.
    faults: Option<CompiledFaults>,

    // Packet table (struct-of-arrays, indexed by PacketId).
    src: Vec<Coord>,
    dst: Vec<Coord>,
    state: Vec<u64>,
    inject_at: Vec<u64>,
    loc: Vec<Loc>,
    queue_of: Vec<QueueKind>,
    delivered_at: Vec<u64>,

    // Per-node data.
    node_state: Vec<R::NodeState>,
    queues: Vec<Vec<PacketId>>,
    pending: HashMap<u32, std::collections::VecDeque<PacketId>>,

    // Active-node tracking.
    active: Vec<u32>,
    in_active: Vec<bool>,

    // Watchdog trackers: last step (1-based, 0 = never) that saw any
    // activity (accepted move or injection) / any delivery.
    last_activity: u64,
    last_delivery: u64,

    // Progress and metrics.
    steps: u64,
    delivered: usize,
    lost: usize,
    total_moves: u64,
    hops: Vec<u32>,
    exchanges: u64,
    max_queue: u32,
    max_node_load: u32,
    peak_load: Vec<u16>,
    // Admission-control pressure: packet-steps spent staged outside the
    // network because the origin queue had no room (or the node was
    // stalled). One packet deferred for five steps counts five.
    deferred_injections: u64,

    // Next injection cursor: packet ids sorted by inject_at.
    inject_order: Vec<PacketId>,
    inject_cursor: usize,

    // Per-step protocol events: packets delivered / destroyed during the
    // most recent step, in deterministic (schedule) order. Consumed by
    // [`Sim::run_with_protocol`]; cleared at the start of every step.
    events_delivered: Vec<PacketId>,
    events_lost: Vec<PacketId>,

    // Workhorse buffers reused across steps (perf-book guidance: no per-step
    // allocation in the hot loop).
    view_buf: Vec<FullView>,
    arrival_buf: Vec<Arrival<FullView>>,
    accept_buf: Vec<bool>,
    sched_buf: Vec<ScheduledMove>,
    order_buf: Vec<u32>,
    accepted_buf: Vec<bool>,
    state_buf: Vec<u64>,
    lost_buf: Vec<ScheduledMove>,
}

const NOT_DELIVERED: u64 = u64::MAX;

impl<'t, T: Topology, R: Router> Sim<'t, T, R> {
    /// Sets up a simulation of `problem` under `router` on `topo`.
    ///
    /// Static packets are placed in their origin queues immediately. If a
    /// node's origin queue cannot hold all its static packets (an h-h problem
    /// with `h > k`), the excess waits outside the network and is injected as
    /// space appears, per the dynamic-setting remark in §5 of the paper.
    pub fn new(topo: &'t T, router: R, problem: &RoutingProblem) -> Self {
        Self::with_config(topo, router, problem, SimConfig::default())
    }

    /// [`Sim::new`] with explicit configuration.
    pub fn with_config(
        topo: &'t T,
        router: R,
        problem: &RoutingProblem,
        config: SimConfig,
    ) -> Self {
        Self::with_faults_opt(topo, router, problem, config, None)
    }

    /// [`Sim::with_config`] plus a compiled fault plan. Faults apply from
    /// step 0 (a node stalled at step 0 does not even inject). An empty plan
    /// is dropped entirely, so it is *exactly* equivalent to no plan.
    pub fn with_faults(
        topo: &'t T,
        router: R,
        problem: &RoutingProblem,
        config: SimConfig,
        faults: CompiledFaults,
    ) -> Self {
        Self::with_faults_opt(topo, router, problem, config, Some(faults))
    }

    fn with_faults_opt(
        topo: &'t T,
        router: R,
        problem: &RoutingProblem,
        config: SimConfig,
        faults: Option<CompiledFaults>,
    ) -> Self {
        let n = topo.side();
        assert_eq!(n, problem.n, "problem and topology sides differ");
        let faults = faults.filter(|f| {
            assert_eq!(f.n(), n, "fault plan and topology sides differ");
            !f.is_empty()
        });
        let arch = router.queue_arch();
        assert!(arch.k() >= 1, "queue capacity k must be at least 1");
        let slots = arch.num_slots();
        let nodes = (n * n) as usize;
        let np = problem.len();

        let mut sim = Sim {
            topo,
            router,
            arch,
            slots,
            n,
            workload: problem.label.clone(),
            config,
            faults,
            src: problem.packets.iter().map(|p| p.src).collect(),
            dst: problem.packets.iter().map(|p| p.dst).collect(),
            state: problem.packets.iter().map(|p| p.state).collect(),
            inject_at: problem.packets.iter().map(|p| p.inject_at).collect(),
            loc: vec![Loc::Pending; np],
            queue_of: vec![QueueKind::Central; np],
            delivered_at: vec![NOT_DELIVERED; np],
            node_state: vec![R::NodeState::default(); nodes],
            queues: (0..nodes * slots).map(|_| Vec::new()).collect(),
            pending: HashMap::new(),
            active: Vec::new(),
            in_active: vec![false; nodes],
            last_activity: 0,
            last_delivery: 0,
            steps: 0,
            delivered: 0,
            lost: 0,
            total_moves: 0,
            hops: vec![0; np],
            exchanges: 0,
            max_queue: 0,
            max_node_load: 0,
            peak_load: vec![0; nodes],
            deferred_injections: 0,
            inject_order: (0..np as u32).map(PacketId).collect(),
            inject_cursor: 0,
            events_delivered: Vec::new(),
            events_lost: Vec::new(),
            view_buf: Vec::new(),
            arrival_buf: Vec::new(),
            accept_buf: Vec::new(),
            sched_buf: Vec::new(),
            order_buf: Vec::new(),
            accepted_buf: Vec::new(),
            state_buf: Vec::new(),
            lost_buf: Vec::new(),
        };
        sim.inject_order
            .sort_by_key(|p| sim.inject_at[p.index()]);
        sim.inject(0);
        sim
    }

    #[inline]
    fn node_index(&self, c: Coord) -> usize {
        (c.y * self.n + c.x) as usize
    }

    #[inline]
    fn queue_mut(&mut self, c: Coord, kind: QueueKind) -> &mut Vec<PacketId> {
        let i = self.node_index(c) * self.slots + kind.slot();
        &mut self.queues[i]
    }

    fn mark_active(&mut self, ni: usize) {
        if !self.in_active[ni] {
            self.in_active[ni] = true;
            self.active.push(ni as u32);
        }
    }

    /// Total packets currently in the node's queues (excluding pending).
    fn node_load(&self, ni: usize) -> usize {
        (0..self.slots)
            .map(|s| self.queues[ni * self.slots + s].len())
            .sum()
    }

    /// Moves packets whose injection time has come into their origin queues,
    /// capacity (and faults) permitting. Returns whether any packet entered
    /// the network.
    fn inject(&mut self, t: u64) -> bool {
        let mut injected = false;
        // Stage newly due packets into per-node pending queues.
        while self.inject_cursor < self.inject_order.len() {
            let pid = self.inject_order[self.inject_cursor];
            if self.inject_at[pid.index()] > t {
                break;
            }
            self.inject_cursor += 1;
            let src = self.src[pid.index()];
            if src == self.dst[pid.index()] {
                // Trivial packet: delivered without entering the network.
                self.loc[pid.index()] = Loc::Delivered;
                self.delivered_at[pid.index()] = t;
                self.delivered += 1;
                self.events_delivered.push(pid);
                continue;
            }
            let ni = self.node_index(src) as u32;
            self.pending.entry(ni).or_default().push_back(pid);
            self.mark_active(ni as usize);
        }
        if self.pending.is_empty() {
            return injected;
        }
        // Drain pending into origin queues while capacity lasts. A stalled
        // node injects nothing; a degraded node only up to its reduced
        // capacity.
        let origin = self.arch.origin_queue();
        let cap = self.arch.capacity(origin);
        let nodes: Vec<u32> = self.pending.keys().copied().collect();
        for ni in nodes {
            let c = self.coord_of(ni as usize);
            let cap = match &self.faults {
                Some(f) if f.node_stalled(t, c) => {
                    self.mark_active(ni as usize);
                    continue;
                }
                Some(f) => cap.map(|k| k.saturating_sub(f.degraded_slots(t, c))),
                None => cap,
            };
            loop {
                let qi = ni as usize * self.slots + origin.slot();
                let room = match cap {
                    Some(c) => self.queues[qi].len() < c as usize,
                    None => true,
                };
                if !room {
                    break;
                }
                let Some(q) = self.pending.get_mut(&ni) else { break };
                let Some(pid) = q.pop_front() else {
                    self.pending.remove(&ni);
                    break;
                };
                self.queues[qi].push(pid);
                self.loc[pid.index()] = Loc::At(c);
                self.queue_of[pid.index()] = origin;
                injected = true;
                if q.is_empty() {
                    self.pending.remove(&ni);
                }
            }
            self.mark_active(ni as usize);
        }
        // Whatever is still staged was deferred by admission control this
        // step: the origin queue is full (or the node stalled), so the
        // packet waits outside the network instead of overflowing.
        self.deferred_injections += self.pending.values().map(|q| q.len() as u64).sum::<u64>();
        injected
    }

    #[inline]
    fn coord_of(&self, ni: usize) -> Coord {
        Coord::new(ni as u32 % self.n, ni as u32 / self.n)
    }

    /// Builds the views of all packets in node `ni` into `view_buf`.
    #[allow(clippy::too_many_arguments)]
    fn build_views(
        topo: &T,
        queues: &[Vec<PacketId>],
        slots: usize,
        arch: QueueArch,
        src: &[Coord],
        dst: &[Coord],
        state: &[u64],
        ni: usize,
        node: Coord,
        out: &mut Vec<FullView>,
    ) {
        out.clear();
        for slot in 0..slots {
            let kind = match (arch, slot) {
                (QueueArch::Central { .. }, _) => QueueKind::Central,
                (QueueArch::PerInlink { .. }, 4) => QueueKind::Injection,
                (QueueArch::PerInlink { .. }, s) => QueueKind::Inlink(Dir::from_index(s)),
            };
            for (pos, pid) in queues[ni * slots + slot].iter().enumerate() {
                let i = pid.index();
                out.push(FullView {
                    id: *pid,
                    src: src[i],
                    dst: dst[i],
                    state: state[i],
                    profitable: topo.profitable(node, dst[i]),
                    queue: kind,
                    pos: pos as u32,
                });
            }
        }
    }

    /// Executes one step under the given hook. Returns `true` when every
    /// packet has been delivered (in which case nothing was simulated).
    pub fn step_with_hook<H: StepHook>(&mut self, hook: &mut H) -> bool {
        if self.delivered == self.src.len() {
            return true;
        }
        let t0 = self.steps;
        let delivered_before = self.delivered;
        let moves_before = self.total_moves;
        self.events_delivered.clear();
        self.events_lost.clear();
        let mut injected_any = false;
        if t0 > 0 {
            injected_any = self.inject(t0);
        }

        // ---- (a) outqueue ----
        let mut schedule = std::mem::take(&mut self.sched_buf);
        schedule.clear();
        let mut lost_moves = std::mem::take(&mut self.lost_buf);
        lost_moves.clear();
        let snapshot = std::mem::take(&mut self.active);
        for &ni in &snapshot {
            self.in_active[ni as usize] = false;
        }
        let mut views = std::mem::take(&mut self.view_buf);
        for &ni in &snapshot {
            let ni = ni as usize;
            if self.node_load(ni) == 0 {
                continue;
            }
            let node = self.coord_of(ni);
            // A stalled node sends nothing this step (its packets stay put;
            // the active-set rebuild below keeps it scheduled for later).
            if let Some(f) = &self.faults {
                if f.node_stalled(t0, node) {
                    continue;
                }
            }
            Self::build_views(
                self.topo,
                &self.queues,
                self.slots,
                self.arch,
                &self.src,
                &self.dst,
                &self.state,
                ni,
                node,
                &mut views,
            );
            let mut out = [None::<usize>; 4];
            self.router
                .outqueue(t0, node, &mut self.node_state[ni], &views, &mut out);
            if self.config.validate {
                #[allow(clippy::needless_range_loop)]
                for a in 0..4 {
                    if let Some(i) = out[a] {
                        assert!(
                            i < views.len(),
                            "{}: outqueue index out of range at {node} step {t0}",
                            self.router.name()
                        );
                        for b in (a + 1)..4 {
                            assert!(
                                out[b] != Some(i),
                                "{}: packet scheduled on two outlinks at {node} step {t0}",
                                self.router.name()
                            );
                        }
                    }
                }
            }
            for d in ALL_DIRS {
                if let Some(i) = out[d.index()] {
                    let v = views[i];
                    let to = self.topo.neighbor(node, d).unwrap_or_else(|| {
                        panic!(
                            "{}: scheduled {:?} on missing {d} outlink of {node}",
                            self.router.name(),
                            v.id
                        )
                    });
                    if self.config.validate && self.router.is_minimal() {
                        assert!(
                            v.profitable.contains(d),
                            "{}: non-minimal move {:?} {d} from {node} (profitable {:?}) step {t0}",
                            self.router.name(),
                            v.id,
                            v.profitable
                        );
                    }
                    // A down link carries nothing: the move is dropped here,
                    // *before* the adversary hook observes the schedule, so
                    // the exchanger only ever sees moves that can happen.
                    // A *lossy* link does carry the packet — it just never
                    // arrives: the transmission happens (the sender's queue
                    // slot frees), but the packet is destroyed in flight.
                    // Like down-link drops, loss is resolved before the hook.
                    if let Some(f) = &self.faults {
                        if f.link_down(t0, node, d) {
                            continue;
                        }
                        if f.link_lossy(t0, node, d) {
                            lost_moves.push(ScheduledMove {
                                pkt: v.id,
                                from: node,
                                to,
                                travel: d,
                            });
                            continue;
                        }
                    }
                    schedule.push(ScheduledMove {
                        pkt: v.id,
                        from: node,
                        to,
                        travel: d,
                    });
                }
            }
        }

        // ---- (b) adversary hook ----
        {
            let mut ctx = HookCtx {
                t: t0 + 1,
                n: self.n,
                moves: &schedule,
                dst: &mut self.dst,
                loc: &self.loc,
                src: &self.src,
                exchanges: &mut self.exchanges,
            };
            hook.on_scheduled(&mut ctx);
        }

        // ---- (c) inqueue ----
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend(0..schedule.len() as u32);
        let n = self.n;
        order.sort_by_key(|&i| {
            let m = &schedule[i as usize];
            m.to.y * n + m.to.x
        });
        let mut accepted = std::mem::take(&mut self.accepted_buf);
        accepted.clear();
        accepted.resize(schedule.len(), false);
        let mut arrivals = std::mem::take(&mut self.arrival_buf);
        let mut accept = std::mem::take(&mut self.accept_buf);
        let mut g = 0;
        while g < order.len() {
            let target = schedule[order[g] as usize].to;
            let mut end = g + 1;
            while end < order.len() && schedule[order[end] as usize].to == target {
                end += 1;
            }
            let ni = self.node_index(target);
            // A stalled node accepts nothing: the whole arrival group stays
            // rejected and its router never observes the offered packets.
            if let Some(f) = &self.faults {
                if f.node_stalled(t0, target) {
                    g = end;
                    continue;
                }
            }
            Self::build_views(
                self.topo,
                &self.queues,
                self.slots,
                self.arch,
                &self.src,
                &self.dst,
                &self.state,
                ni,
                target,
                &mut views,
            );
            arrivals.clear();
            for &mi in &order[g..end] {
                let m = &schedule[mi as usize];
                let i = m.pkt.index();
                arrivals.push(Arrival {
                    view: FullView {
                        id: m.pkt,
                        src: self.src[i],
                        dst: self.dst[i],
                        state: self.state[i],
                        // §2: profitable outlinks of scheduled packets are
                        // measured from the node they are coming from.
                        profitable: self.topo.profitable(m.from, self.dst[i]),
                        queue: self.arch.arrival_queue(m.travel),
                        pos: u32::MAX,
                    },
                    travel: m.travel,
                });
            }
            accept.clear();
            accept.resize(arrivals.len(), false);
            self.router.inqueue(
                t0,
                target,
                &mut self.node_state[ni],
                &views,
                &arrivals,
                &mut accept,
            );
            // Queue degradation: clamp what a (degradation-unaware) router
            // accepted down to the reduced capacity. Deliveries never occupy
            // a queue slot, so they are exempt; residents already over the
            // reduced capacity are not evicted — they drain naturally.
            if let Some(f) = &self.faults {
                let lost = f.degraded_slots(t0, target);
                if lost > 0 {
                    let mut room = [usize::MAX; 5];
                    for (s, r) in room.iter_mut().enumerate().take(self.slots) {
                        let kind = match (self.arch, s) {
                            (QueueArch::Central { .. }, _) => QueueKind::Central,
                            (QueueArch::PerInlink { .. }, 4) => QueueKind::Injection,
                            (QueueArch::PerInlink { .. }, s) => {
                                QueueKind::Inlink(Dir::from_index(s))
                            }
                        };
                        if let Some(cap) = self.arch.capacity(kind) {
                            let eff = cap.saturating_sub(lost) as usize;
                            *r = eff.saturating_sub(self.queues[ni * self.slots + s].len());
                        }
                    }
                    for (j, a) in arrivals.iter().enumerate() {
                        if !accept[j] || a.view.dst == target {
                            continue;
                        }
                        let s = self.arch.arrival_queue(a.travel).slot();
                        if room[s] > 0 {
                            room[s] -= 1;
                        } else {
                            accept[j] = false;
                        }
                    }
                }
            }
            for (j, &mi) in order[g..end].iter().enumerate() {
                accepted[mi as usize] = accept[j];
            }
            g = end;
        }

        // ---- (d) transmit ----
        for (mi, m) in schedule.iter().enumerate() {
            if !accepted[mi] {
                continue;
            }
            let pi = m.pkt.index();
            // Remove from its source queue.
            let kind = self.queue_of[pi];
            let from = m.from;
            debug_assert_eq!(self.loc[pi], Loc::At(from));
            let q = self.queue_mut(from, kind);
            let pos = q
                .iter()
                .position(|&p| p == m.pkt)
                .expect("scheduled packet missing from its queue");
            q.remove(pos);
            self.total_moves += 1;
            self.hops[pi] += 1;
            if self.dst[pi] == m.to {
                self.loc[pi] = Loc::Delivered;
                self.delivered_at[pi] = t0 + 1;
                self.delivered += 1;
                self.events_delivered.push(m.pkt);
            } else {
                let akind = self.arch.arrival_queue(m.travel);
                self.queue_mut(m.to, akind).push(m.pkt);
                self.loc[pi] = Loc::At(m.to);
                self.queue_of[pi] = akind;
                let tni = self.node_index(m.to);
                self.mark_active(tni);
            }
        }
        // Lossy-link transmissions: the packet left its queue and traversed
        // the link (it counts as a move and a hop), but it never arrives
        // anywhere — it is destroyed. Its inqueue policy never saw it
        // offered, so no acceptance bookkeeping exists to undo.
        for m in &lost_moves {
            let pi = m.pkt.index();
            let kind = self.queue_of[pi];
            debug_assert_eq!(self.loc[pi], Loc::At(m.from));
            let q = self.queue_mut(m.from, kind);
            let pos = q
                .iter()
                .position(|&p| p == m.pkt)
                .expect("lost packet missing from its queue");
            q.remove(pos);
            self.total_moves += 1;
            self.hops[pi] += 1;
            self.loc[pi] = Loc::Lost;
            self.lost += 1;
            self.events_lost.push(m.pkt);
        }

        // Rebuild the active set: previously active nodes that still hold
        // packets (or have pending injections) stay active; transmit already
        // marked the targets.
        for &ni in &snapshot {
            let ni = ni as usize;
            if self.node_load(ni) > 0 || self.pending.contains_key(&(ni as u32)) {
                self.mark_active(ni);
            }
        }

        // ---- capacity validation + occupancy metrics ----
        let active_now = std::mem::take(&mut self.active);
        for &ni in &active_now {
            let ni = ni as usize;
            let mut load = 0u32;
            for slot in 0..self.slots {
                let len = self.queues[ni * self.slots + slot].len() as u32;
                load += len;
                let kind = match (self.arch, slot) {
                    (QueueArch::Central { .. }, _) => QueueKind::Central,
                    (QueueArch::PerInlink { .. }, 4) => QueueKind::Injection,
                    (QueueArch::PerInlink { .. }, s) => QueueKind::Inlink(Dir::from_index(s)),
                };
                if let Some(cap) = self.arch.capacity(kind) {
                    if self.config.validate {
                        assert!(
                            len <= cap,
                            "{}: queue {kind:?} of node {:?} overflowed ({len} > {cap}) at step {t0}",
                            self.router.name(),
                            self.coord_of(ni)
                        );
                    }
                    self.max_queue = self.max_queue.max(len);
                } else {
                    // Unbounded (injection) queues count toward node load and
                    // max_queue tracking is skipped.
                }
            }
            self.max_node_load = self.max_node_load.max(load);
            if load as u16 > self.peak_load[ni] {
                self.peak_load[ni] = load as u16;
            }
        }

        // ---- (e) end-of-step state update ----
        let mut states = std::mem::take(&mut self.state_buf);
        for &ni in &active_now {
            let ni = ni as usize;
            if self.node_load(ni) == 0 {
                continue;
            }
            let node = self.coord_of(ni);
            Self::build_views(
                self.topo,
                &self.queues,
                self.slots,
                self.arch,
                &self.src,
                &self.dst,
                &self.state,
                ni,
                node,
                &mut views,
            );
            states.clear();
            states.extend(views.iter().map(|v| v.state));
            self.router
                .end_of_step(t0, node, &mut self.node_state[ni], &views, &mut states);
            for (v, s) in views.iter().zip(states.iter()) {
                self.state[v.id.index()] = *s;
            }
        }
        self.active = active_now;

        // Return buffers.
        self.sched_buf = schedule;
        self.view_buf = views;
        self.arrival_buf = arrivals;
        self.accept_buf = accept;
        self.order_buf = order;
        self.accepted_buf = accepted;
        self.state_buf = states;
        self.lost_buf = lost_moves;

        self.steps += 1;
        // Watchdog bookkeeping (1-based step stamps; 0 = never).
        if self.total_moves != moves_before || injected_any || self.delivered != delivered_before {
            self.last_activity = self.steps;
        }
        if self.delivered != delivered_before {
            self.last_delivery = self.steps;
        }
        self.delivered == self.src.len()
    }

    /// Executes one step with no adversary.
    pub fn step(&mut self) -> bool {
        self.step_with_hook(&mut NoHook)
    }

    /// Runs (with a hook) until all packets are delivered, `max_steps` total
    /// steps have executed, or — when [`SimConfig::watchdog`] is set — a full
    /// no-progress window elapses.
    pub fn run_with_hook<H: StepHook>(
        &mut self,
        max_steps: u64,
        hook: &mut H,
    ) -> Result<u64, SimError> {
        // The watchdog only arms once nothing external can still change the
        // picture: all injections done and every transient fault lifted
        // (permanent faults never lift, so they do not hold it off).
        let settle = self.faults.as_ref().map_or(0, |f| f.last_transition());
        while self.steps < max_steps {
            if self.step_with_hook(hook) {
                return Ok(self.steps);
            }
            if let Some(w) = self.config.watchdog {
                if self.inject_cursor >= self.inject_order.len() {
                    if self.steps.saturating_sub(self.last_activity.max(settle)) >= w {
                        return Err(SimError::Deadlock(self.diagnostics()));
                    }
                    if self.steps.saturating_sub(self.last_delivery.max(settle)) >= w {
                        return Err(SimError::Livelock(self.diagnostics()));
                    }
                }
            }
        }
        if self.delivered == self.src.len() {
            Ok(self.steps)
        } else {
            Err(SimError::StepCap(self.diagnostics()))
        }
    }

    /// Runs without an adversary until done or `max_steps`.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, SimError> {
        self.run_with_hook(max_steps, &mut NoHook)
    }

    // ---- runtime packet spawning (protocol layers) ----

    /// Appends a fresh packet to the running simulation, to be injected at
    /// the beginning of step `inject_at` (which must not lie in the past).
    /// Returns its id — always `num_packets()` at call time, so callers can
    /// maintain dense side tables. The injection goes through the same
    /// admission control as everything else: if the origin queue is full,
    /// the packet waits outside the network.
    ///
    /// This is how a transport layer retransmits (and ACKs): a
    /// retransmission is a *new* packet for the same payload, not a revival
    /// of the lost one.
    pub fn spawn(&mut self, src: Coord, dst: Coord, inject_at: u64) -> PacketId {
        assert!(
            inject_at >= self.steps,
            "spawn at step {inject_at} but the simulation is already at {}",
            self.steps
        );
        assert!(
            src.x < self.n && src.y < self.n && dst.x < self.n && dst.y < self.n,
            "spawn endpoints must lie on the {0}x{0} grid",
            self.n
        );
        let id = PacketId(self.src.len() as u32);
        self.src.push(src);
        self.dst.push(dst);
        self.state.push(0);
        self.inject_at.push(inject_at);
        self.loc.push(Loc::Pending);
        self.queue_of.push(QueueKind::Central);
        self.delivered_at.push(NOT_DELIVERED);
        self.hops.push(0);
        // Keep the uninjected tail of `inject_order` sorted by inject_at
        // (ties resolve in spawn order, matching the constructor's stable
        // sort by id).
        let inject_at_of = &self.inject_at;
        let tail = &self.inject_order[self.inject_cursor..];
        let at = self.inject_cursor + tail.partition_point(|p| inject_at_of[p.index()] <= inject_at);
        self.inject_order.insert(at, id);
        id
    }

    /// Packets delivered during the most recent step, in deterministic
    /// order. Valid until the next step executes.
    pub fn last_step_deliveries(&self) -> &[PacketId] {
        &self.events_delivered
    }

    /// Packets destroyed by lossy links during the most recent step.
    pub fn last_step_losses(&self) -> &[PacketId] {
        &self.events_lost
    }

    /// True when no future or deferred injection remains: the cursor is
    /// exhausted *and* admission control holds nothing back. While this is
    /// false, outside input can still change the network, so a watchdog
    /// must not declare a wedge on quietness alone.
    pub fn injections_exhausted(&self) -> bool {
        self.inject_cursor >= self.inject_order.len() && self.pending.is_empty()
    }

    /// Runs the simulation under a [`ProtocolHook`] (e.g. the
    /// `mesh-reliable` transport): after every step the hook observes that
    /// step's deliveries and losses, may [`spawn`](Sim::spawn)
    /// ACKs/retransmissions, and decides whether the protocol is finished.
    ///
    /// The watchdog (when configured) is protocol-aware — the plain
    /// "injections remain" disarm of [`Sim::run_with_hook`] would be wrong
    /// in both directions here. While the protocol reports outstanding
    /// payloads, periodic retransmissions keep generating *activity*
    /// forever, so the deadlock rule would never fire and a real wedge
    /// would be masked: instead, a full window without any *delivery*
    /// (measured from the last fault transition) is reported as
    /// [`SimError::Livelock`]. Once nothing is outstanding and every
    /// injection (including deferred ones) is in, the ordinary no-activity
    /// deadlock rule applies.
    pub fn run_with_protocol<P: crate::protocol::ProtocolHook>(
        &mut self,
        max_steps: u64,
        proto: &mut P,
    ) -> Result<u64, SimError> {
        use crate::protocol::ProtocolControl;
        let settle = self.faults.as_ref().map_or(0, |f| f.last_transition());
        // Trivial (src == dst) packets due at step 0 were delivered during
        // construction, before any step could report them; surface them to
        // the protocol as a synthetic step-0 batch so their payloads get
        // acknowledged like any other.
        if self.steps == 0 && !self.events_delivered.is_empty() {
            let events = crate::protocol::StepEvents {
                step: 0,
                delivered: std::mem::take(&mut self.events_delivered),
                lost: Vec::new(),
            };
            let ctl = proto.on_step(self, &events);
            self.events_delivered = events.delivered;
            self.events_delivered.clear();
            if ctl == ProtocolControl::Done {
                return Ok(0);
            }
        }
        loop {
            if self.steps >= max_steps {
                return if self.done() {
                    Ok(self.steps)
                } else {
                    Err(SimError::StepCap(self.diagnostics()))
                };
            }
            let packets_before = self.src.len();
            let done = self.step();
            let events = crate::protocol::StepEvents {
                step: self.steps,
                delivered: std::mem::take(&mut self.events_delivered),
                lost: std::mem::take(&mut self.events_lost),
            };
            let ctl = proto.on_step(self, &events);
            // Recycle the event buffers, emptied: a later early-returning
            // step must not re-present stale events.
            self.events_delivered = events.delivered;
            self.events_delivered.clear();
            self.events_lost = events.lost;
            self.events_lost.clear();
            match ctl {
                ProtocolControl::Done => return Ok(self.steps),
                ProtocolControl::Continue { outstanding } => {
                    if done && self.src.len() == packets_before {
                        // Network empty and the protocol spawned nothing.
                        // With work outstanding that is a protocol wedge
                        // (nothing in flight can ever ack it); without, the
                        // run is simply complete.
                        return if outstanding == 0 {
                            Ok(self.steps)
                        } else {
                            Err(SimError::Deadlock(self.diagnostics()))
                        };
                    }
                    if let Some(w) = self.config.watchdog {
                        if outstanding > 0 {
                            if self.steps.saturating_sub(self.last_delivery.max(settle)) >= w {
                                return Err(SimError::Livelock(self.diagnostics()));
                            }
                        } else if self.injections_exhausted()
                            && self.steps.saturating_sub(self.last_activity.max(settle)) >= w
                        {
                            return Err(SimError::Deadlock(self.diagnostics()));
                        }
                    }
                }
            }
        }
    }

    // ---- accessors ----

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Packets destroyed by lossy links so far.
    pub fn lost(&self) -> usize {
        self.lost
    }

    /// Packet-steps spent deferred by injection admission control so far.
    pub fn deferred_injections(&self) -> u64 {
        self.deferred_injections
    }

    /// Total packets.
    pub fn num_packets(&self) -> usize {
        self.src.len()
    }

    /// True when every packet has been delivered.
    pub fn done(&self) -> bool {
        self.delivered == self.src.len()
    }

    /// Current location of a packet.
    pub fn loc(&self, p: PacketId) -> Loc {
        self.loc[p.index()]
    }

    /// Current destination of a packet (reflects adversary exchanges).
    pub fn dst(&self, p: PacketId) -> Coord {
        self.dst[p.index()]
    }

    /// Source of a packet.
    pub fn src(&self, p: PacketId) -> Coord {
        self.src[p.index()]
    }

    /// Step at which a packet was delivered (1-based), if delivered.
    pub fn delivered_step(&self, p: PacketId) -> Option<u64> {
        let d = self.delivered_at[p.index()];
        (d != NOT_DELIVERED).then_some(d)
    }

    /// Link traversals performed by each packet so far, indexed by
    /// `PacketId`. Sums to `total_moves`; for a delivered packet of a minimal
    /// router it equals the source→destination L1 distance.
    pub fn packet_hops(&self) -> &[u32] {
        &self.hops
    }

    /// The packets currently in a node, over all queues, in queue order.
    pub fn packets_at(&self, c: Coord) -> Vec<PacketId> {
        let ni = self.node_index(c);
        (0..self.slots)
            .flat_map(|s| self.queues[ni * self.slots + s].iter().copied())
            .collect()
    }

    /// The routing problem defined by the packets' *current* destinations —
    /// after an adversary run, this is the paper's **constructed
    /// permutation** (step 4 of the §3 construction).
    pub fn current_problem(&self, label: impl Into<String>) -> RoutingProblem {
        RoutingProblem::from_pairs(
            self.n,
            label,
            self.src.iter().copied().zip(self.dst.iter().copied()),
        )
    }

    /// A deterministic digest of packet configuration (location, destination,
    /// state per packet) for replay-equivalence tests (Lemma 12).
    pub fn packet_snapshot(&self) -> Vec<(Loc, Coord, u64)> {
        (0..self.src.len())
            .map(|i| (self.loc[i], self.dst[i], self.state[i]))
            .collect()
    }

    /// Summary of the run so far.
    pub fn report(&self) -> SimReport {
        let lat: Vec<u64> = self
            .delivered_at
            .iter()
            .zip(self.inject_at.iter())
            .filter(|(&d, _)| d != NOT_DELIVERED)
            .map(|(&d, &i)| d.saturating_sub(i))
            .collect();
        SimReport {
            algorithm: self.router.name(),
            workload: self.workload.clone(),
            n: self.n,
            arch: self.arch,
            total_packets: self.src.len(),
            delivered: self.delivered,
            lost: self.lost,
            deferred_injections: self.deferred_injections,
            steps: self.steps,
            completed: self.done(),
            max_queue: self.max_queue,
            max_node_load: self.max_node_load,
            total_moves: self.total_moves,
            exchanges: self.exchanges,
            avg_latency: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<u64>() as f64 / lat.len() as f64
            },
            max_latency: lat.iter().copied().max().unwrap_or(0),
        }
    }

    /// Latency distribution over delivered packets (delivery step minus
    /// injection step).
    pub fn latency_distribution(&self) -> crate::stats::Distribution {
        let lat: Vec<u64> = self
            .delivered_at
            .iter()
            .zip(self.inject_at.iter())
            .filter(|(&d, _)| d != NOT_DELIVERED)
            .map(|(&d, &i)| d.saturating_sub(i))
            .collect();
        crate::stats::Distribution::of(&lat)
    }

    /// Per-node peak occupancy over the whole run (congestion map).
    pub fn congestion_map(&self) -> crate::stats::NodeField {
        crate::stats::NodeField {
            n: self.n,
            values: self.peak_load.iter().map(|&v| v as u32).collect(),
        }
    }

    /// Deliveries per step.
    pub fn delivery_curve(&self) -> crate::stats::DeliveryCurve {
        crate::stats::DeliveryCurve::from_delivery_steps(
            self.delivered_at
                .iter()
                .copied()
                .filter(|&d| d != NOT_DELIVERED),
        )
    }

    /// The state of the network right now, in the form failure reports
    /// carry: stuck packets, per-node occupancy, active faults.
    pub fn diagnostics(&self) -> DiagnosticSnapshot {
        let mut stuck = Vec::new();
        for i in 0..self.src.len() {
            if let Loc::At(c) = self.loc[i] {
                stuck.push(StuckPacket {
                    id: PacketId(i as u32),
                    at: c,
                    dst: self.dst[i],
                    hops: self.hops[i],
                });
            }
        }
        let mut occupancy = Vec::new();
        for ni in 0..(self.n * self.n) as usize {
            let load = self.node_load(ni) as u32;
            if load > 0 {
                occupancy.push(NodeOccupancy {
                    node: self.coord_of(ni),
                    load,
                });
            }
        }
        DiagnosticSnapshot {
            step: self.steps,
            delivered: self.delivered,
            total: self.src.len(),
            pending: self.src.len() - self.delivered - self.lost - stuck.len(),
            lost: self.lost,
            stuck,
            occupancy,
            active_faults: self
                .faults
                .as_ref()
                .map(|f| f.active_at(self.steps))
                .unwrap_or_default(),
        }
    }

    /// The router's queue architecture.
    pub fn arch(&self) -> QueueArch {
        self.arch
    }

    /// Immutable access to the router.
    pub fn router(&self) -> &R {
        &self.router
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueArch;
    use crate::router::{Dx, DxRouter};
    use crate::view::DxView;
    use mesh_topo::Mesh;
    use mesh_traffic::RoutingProblem;

    /// Minimal destination-exchangeable test router: greedy "first profitable
    /// direction in canonical order", FIFO outqueue, accept while the central
    /// queue has strict headroom at the beginning of the step.
    pub(super) struct Greedy {
        pub(super) k: u32,
    }

    impl DxRouter for Greedy {
        type NodeState = ();

        fn name(&self) -> String {
            format!("test-greedy(k={})", self.k)
        }

        fn queue_arch(&self) -> QueueArch {
            QueueArch::Central { k: self.k }
        }

        fn outqueue(
            &self,
            _step: u64,
            _node: Coord,
            _state: &mut (),
            pkts: &[DxView],
            out: &mut [Option<usize>; 4],
        ) {
            // Oldest packet first; each packet takes its first profitable
            // direction whose outlink is still free.
            let mut order: Vec<usize> = (0..pkts.len()).collect();
            order.sort_by_key(|&i| pkts[i].pos);
            for i in order {
                if let Some(d) = pkts[i]
                    .profitable
                    .iter()
                    .find(|d| out[d.index()].is_none())
                {
                    out[d.index()] = Some(i);
                }
            }
        }

        fn inqueue(
            &self,
            _step: u64,
            _node: Coord,
            _state: &mut (),
            residents: &[DxView],
            arrivals: &[Arrival<DxView>],
            accept: &mut [bool],
        ) {
            let mut room = (self.k as usize).saturating_sub(residents.len());
            for (i, _a) in arrivals.iter().enumerate() {
                if room > 0 {
                    accept[i] = true;
                    room -= 1;
                }
            }
        }
    }

    fn greedy(k: u32) -> Dx<Greedy> {
        Dx::new(Greedy { k })
    }

    #[test]
    fn single_packet_takes_shortest_path_time() {
        let topo = Mesh::new(8);
        let pb = RoutingProblem::from_pairs(8, "one", [(Coord::new(0, 0), Coord::new(5, 3))]);
        let mut sim = Sim::new(&topo, greedy(2), &pb);
        let steps = sim.run(100).unwrap();
        assert_eq!(steps, 8); // manhattan distance
        let r = sim.report();
        assert!(r.completed);
        assert_eq!(r.total_moves, 8);
        assert_eq!(r.max_queue, 1);
        assert_eq!(sim.delivered_step(PacketId(0)), Some(8));
    }

    #[test]
    fn trivial_packet_is_delivered_at_injection() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_pairs(4, "trivial", [(Coord::new(2, 2), Coord::new(2, 2))]);
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        assert!(sim.done());
        assert_eq!(sim.run(10).unwrap(), 0);
        assert_eq!(sim.delivered_step(PacketId(0)), Some(0));
    }

    #[test]
    fn two_packets_share_a_link_one_waits() {
        // Both packets must traverse the single link (0,0)->(1,0) ... build a
        // 2x1-ish scenario on a 2x2 mesh: packets at (0,0) and (0,1), both to
        // (1,1) is not a partial permutation; instead two packets whose only
        // profitable dir from their shared node differs. Simpler: two packets
        // starting at the same node is impossible (k=1). Use k=2 with both
        // packets at (0,0): to (1,0) and (2,0) on a 3x1 row — they compete for
        // the East outlink.
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(
            3,
            "contend",
            [
                (Coord::new(0, 0), Coord::new(2, 0)),
                (Coord::new(0, 0), Coord::new(1, 0)),
            ],
        );
        let mut sim = Sim::new(&topo, greedy(2), &pb);
        let steps = sim.run(100).unwrap();
        // Packet 0 (older in queue) goes first: delivered at step 2.
        // Packet 1 waits one step, delivered at step 2 as well (moves at
        // step 2 after the link frees at step 2? it moves at step 2).
        assert!(sim.done());
        assert!(steps >= 2);
        let r = sim.report();
        assert_eq!(r.total_moves, 3);
    }

    #[test]
    fn capacity_blocks_acceptance() {
        // k=1: a chain 4 long with all packets moving east; heads block tails.
        let topo = Mesh::new(5);
        let pairs: Vec<_> = (0..4u32)
            .map(|x| (Coord::new(x, 0), Coord::new(x + 1, 0)))
            .collect();
        let pb = RoutingProblem::from_pairs(5, "chain", pairs);
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let steps = sim.run(100).unwrap();
        assert!(sim.done());
        // The head (packet at x=3) is delivered at step 1, freeing space;
        // everything drains in a wave.
        assert!(steps <= 4, "chain should drain quickly, took {steps}");
        assert_eq!(sim.report().max_queue, 1, "k=1 never exceeded");
    }

    #[test]
    fn dynamic_injection_waits_for_time() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_packets(
            4,
            "late",
            vec![mesh_traffic::Packet::injected_at(
                0,
                Coord::new(0, 0),
                Coord::new(1, 0),
                5,
            )],
        );
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let steps = sim.run(100).unwrap();
        assert_eq!(steps, 6); // waits 5 steps, moves during step 6
        assert_eq!(sim.delivered_step(PacketId(0)), Some(6));
        // Latency counts from injection: 6 - 5 = 1.
        assert_eq!(sim.report().max_latency, 1);
    }

    #[test]
    fn hook_exchange_swaps_destinations() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_pairs(
            4,
            "swap",
            [
                (Coord::new(0, 0), Coord::new(3, 0)),
                (Coord::new(0, 1), Coord::new(3, 1)),
            ],
        );
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let mut swapped = false;
        let mut hook = |ctx: &mut HookCtx<'_>| {
            if !swapped {
                ctx.exchange(PacketId(0), PacketId(1));
                swapped = true;
            }
        };
        sim.run_with_hook(100, &mut hook).unwrap();
        assert!(sim.done());
        // Destinations were exchanged before any move: packet 0 now ends at (3,1).
        assert_eq!(sim.dst(PacketId(0)), Coord::new(3, 1));
        assert_eq!(sim.dst(PacketId(1)), Coord::new(3, 0));
        assert_eq!(sim.report().exchanges, 1);
    }

    #[test]
    fn exchange_is_invisible_to_dx_router_lemma_10() {
        // Run the same problem twice: once plainly, once with an adversary
        // that exchanges two same-profitable-direction packets at step 1.
        // The *trajectories as a multiset* must be identical with the two
        // packets' roles swapped — here we check the coarser consequence
        // that total steps and total moves agree.
        let topo = Mesh::new(6);
        let pb = RoutingProblem::from_pairs(
            6,
            "lemma10",
            [
                (Coord::new(0, 0), Coord::new(4, 3)),
                (Coord::new(1, 1), Coord::new(3, 4)),
                (Coord::new(2, 0), Coord::new(5, 5)),
            ],
        );
        let mut plain = Sim::new(&topo, greedy(2), &pb);
        plain.run(1000).unwrap();

        let mut adv = Sim::new(&topo, greedy(2), &pb);
        let mut done_once = false;
        let mut hook = |ctx: &mut HookCtx<'_>| {
            if !done_once {
                // Both packets are northeast-bound; exchange is legal in the
                // Lemma 10 sense (both destinations stay northeast of both).
                ctx.exchange(PacketId(0), PacketId(1));
                done_once = true;
            }
        };
        adv.run_with_hook(1000, &mut hook).unwrap();

        assert_eq!(plain.steps(), adv.steps());
        assert_eq!(plain.report().total_moves, adv.report().total_moves);
        assert_eq!(plain.report().max_queue, adv.report().max_queue);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn engine_panics_on_overflowing_router() {
        /// A broken router that accepts everything regardless of capacity.
        struct Overflower;
        impl DxRouter for Overflower {
            type NodeState = ();
            fn name(&self) -> String {
                "overflower".into()
            }
            fn queue_arch(&self) -> QueueArch {
                QueueArch::Central { k: 1 }
            }
            fn outqueue(
                &self,
                _s: u64,
                _n: Coord,
                _st: &mut (),
                pkts: &[DxView],
                out: &mut [Option<usize>; 4],
            ) {
                for (i, p) in pkts.iter().enumerate() {
                    if let Some(d) = p.profitable.iter().find(|d| out[d.index()].is_none()) {
                        out[d.index()] = Some(i);
                    }
                }
            }
            fn inqueue(
                &self,
                _s: u64,
                _n: Coord,
                _st: &mut (),
                _r: &[DxView],
                _a: &[Arrival<DxView>],
                accept: &mut [bool],
            ) {
                accept.iter_mut().for_each(|f| *f = true);
            }
        }
        let topo = Mesh::new(3);
        // Two packets converge on (1,1) from both sides and both keep going;
        // with k=1 and accept-everything the queue must overflow.
        let pb = RoutingProblem::from_pairs(
            3,
            "overflow",
            [
                (Coord::new(0, 1), Coord::new(2, 1)),
                (Coord::new(1, 0), Coord::new(1, 2)),
            ],
        );
        let mut sim = Sim::new(&topo, Dx::new(Overflower), &pb);
        let _ = sim.run(10);
    }

    #[test]
    fn determinism() {
        // k = 64 is effectively unbounded on an 8x8 mesh (64 packets total),
        // so the naive test router cannot deadlock.
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 42);
        let mut a = Sim::new(&topo, greedy(64), &pb);
        let mut b = Sim::new(&topo, greedy(64), &pb);
        a.run(10_000).unwrap();
        b.run(10_000).unwrap();
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.packet_snapshot(), b.packet_snapshot());
    }

    #[test]
    fn report_counts_are_consistent() {
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 7);
        let mut sim = Sim::new(&topo, greedy(64), &pb);
        sim.run(100_000).unwrap();
        let r = sim.report();
        assert!(r.completed);
        assert_eq!(r.delivered, r.total_packets);
        // Every packet moved exactly its manhattan distance (greedy is
        // minimal): total moves == total work.
        assert_eq!(r.total_moves, pb.total_work());
        assert!(r.max_latency as u64 <= r.steps);
        assert!(r.steps >= pb.diameter_bound() as u64);
    }

    #[test]
    fn step_limit_reports_error() {
        let topo = Mesh::new(8);
        let pb = RoutingProblem::from_pairs(8, "far", [(Coord::new(0, 0), Coord::new(7, 7))]);
        let mut sim = Sim::new(&topo, greedy(1), &pb);
        let err = sim.run(3).unwrap_err();
        assert!(matches!(err, SimError::StepCap(_)));
        assert_eq!(err.kind(), "step-cap");
        let snap = err.snapshot();
        assert_eq!(snap.step, 3);
        assert_eq!(snap.delivered, 0);
        assert_eq!(snap.total, 1);
        assert_eq!(snap.stuck.len(), 1);
        assert_eq!(snap.stuck[0].dst, Coord::new(7, 7));
        assert_eq!(snap.stuck[0].hops, 3);
        let msg = err.to_string();
        assert!(msg.contains("step limit reached"), "got: {msg}");
        assert!(msg.contains("0/1 delivered"), "got: {msg}");
    }

    /// A two-packet cyclic wait: on a 1-wide corridor with k=1 and a router
    /// that never yields, the two packets face each other forever. The
    /// watchdog must report `Deadlock` within its window — not spin to the
    /// step cap.
    #[test]
    fn watchdog_reports_cyclic_wait_as_deadlock() {
        let topo = Mesh::new(2);
        // (0,0)->(1,0) and (1,0)->(0,0): each needs the cell the other holds;
        // greedy's inqueue demands strict headroom, so neither ever moves.
        let pb = RoutingProblem::from_pairs(
            2,
            "face-off",
            [
                (Coord::new(0, 0), Coord::new(1, 0)),
                (Coord::new(1, 0), Coord::new(0, 0)),
            ],
        );
        let config = SimConfig {
            watchdog: Some(25),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, greedy(1), &pb, config);
        let err = sim.run(100_000).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)), "got {err}");
        assert!(sim.steps() <= 30, "watchdog should fire within the window");
        let snap = err.snapshot();
        assert_eq!(snap.stuck.len(), 2);
        assert_eq!(snap.occupancy.len(), 2);
        assert!(snap.active_faults.is_empty());
    }

    /// The watchdog must never fire on a fault-free run that is making
    /// progress — even with the smallest sensible window.
    #[test]
    fn watchdog_never_trips_on_healthy_permutation() {
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 13);
        let config = SimConfig {
            watchdog: Some(20),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, greedy(64), &pb, config);
        sim.run(100_000).expect("healthy run must complete");
        assert!(sim.done());
    }

    /// The watchdog stays disarmed while injections are still scheduled:
    /// a long quiet gap before a late packet is not a deadlock.
    #[test]
    fn watchdog_waits_for_scheduled_injections() {
        let topo = Mesh::new(4);
        let pb = RoutingProblem::from_packets(
            4,
            "late",
            vec![mesh_traffic::Packet::injected_at(
                0,
                Coord::new(0, 0),
                Coord::new(1, 0),
                80,
            )],
        );
        let config = SimConfig {
            watchdog: Some(10),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, greedy(1), &pb, config);
        let steps = sim.run(1000).expect("late injection is not a deadlock");
        assert_eq!(steps, 81);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::tests::Greedy;
    use super::*;
    use crate::router::Dx;
    use mesh_faults::FaultPlan;
    use mesh_topo::Mesh;
    use mesh_traffic::{workloads, RoutingProblem};

    fn greedy(k: u32) -> Dx<Greedy> {
        Dx::new(Greedy { k })
    }

    /// An *empty* fault plan must be indistinguishable from no plan at all:
    /// identical step counts and identical per-packet trajectories.
    #[test]
    fn empty_plan_is_exactly_no_plan() {
        let topo = Mesh::new(8);
        let pb = workloads::random_permutation(8, 99);
        let mut plain = Sim::new(&topo, greedy(3), &pb);
        let mut faulted = Sim::with_faults(
            &topo,
            greedy(3),
            &pb,
            SimConfig::default(),
            FaultPlan::none(8).compile(),
        );
        let a = plain.run(100_000).unwrap();
        let b = faulted.run(100_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.packet_snapshot(), faulted.packet_snapshot());
        assert_eq!(plain.report().total_moves, faulted.report().total_moves);
    }

    /// A down link carries nothing while down; traffic resumes once it
    /// lifts. One packet, one link on its only path, fault for steps [0, 10).
    #[test]
    fn transient_link_fault_delays_crossing() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "cross", [(Coord::new(0, 0), Coord::new(1, 0))]);
        let faults = FaultPlan::none(3)
            .link_down(Coord::new(0, 0), Dir::East, 0, Some(10))
            .compile();
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, SimConfig::default(), faults);
        let steps = sim.run(100).unwrap();
        // The link is down during steps 0..10 (t0 = 0..=9); the move happens
        // during t0 = 10, i.e. run completes after 11 steps.
        assert_eq!(steps, 11);
    }

    /// A stalled node neither sends nor accepts: neighbors' packets aimed at
    /// it wait, and its own packets freeze.
    #[test]
    fn stalled_node_freezes_traffic_through_it() {
        let topo = Mesh::new(3);
        // Packet A crosses the center; packet B starts at the center.
        let pb = RoutingProblem::from_pairs(
            3,
            "through-center",
            [
                (Coord::new(0, 1), Coord::new(2, 1)),
                (Coord::new(1, 1), Coord::new(1, 2)),
            ],
        );
        let faults = FaultPlan::none(3).stall(Coord::new(1, 1), 0, Some(5)).compile();
        let mut sim = Sim::with_faults(&topo, greedy(2), &pb, SimConfig::default(), faults);
        for _ in 0..5 {
            sim.step();
        }
        // While stalled: A could not enter the center, and B — whose source
        // *is* the stalled node — could not even inject.
        assert_eq!(sim.loc(mesh_traffic::PacketId(0)), Loc::At(Coord::new(0, 1)));
        assert_eq!(sim.loc(mesh_traffic::PacketId(1)), Loc::Pending);
        let steps = sim.run(100).unwrap();
        assert!(sim.done());
        assert!(steps >= 7, "stall must have cost at least 5 steps, took {steps}");
    }

    /// Queue degradation clamps *new* acceptance without evicting residents:
    /// with k=2 degraded by 1, a node holding one packet accepts nothing.
    #[test]
    fn degraded_queue_rejects_at_reduced_capacity() {
        let topo = Mesh::new(3);
        // B parks at (1,0) (its destination is further, but it is boxed in by
        // A's passage); simpler: A at (0,0) moving east to (2,0), B resident
        // at (1,0) headed to (1,2) but stalled by... use a plain check: A
        // wants to enter (1,0) which already holds B; degraded k=2 -> room 0.
        let pb = RoutingProblem::from_pairs(
            3,
            "degrade",
            [
                (Coord::new(0, 0), Coord::new(2, 0)),
                (Coord::new(1, 0), Coord::new(1, 1)),
            ],
        );
        // Stall B's node? No: degrade (1,0) by one slot for the whole run and
        // ALSO make B immobile by downing its only profitable link. Then A
        // can never pass through (1,0) while degradation holds.
        let faults = FaultPlan::none(3)
            .degrade(Coord::new(1, 0), 1, 0, Some(20))
            .link_down(Coord::new(1, 0), Dir::North, 0, Some(20))
            .compile();
        let mut sim = Sim::with_faults(&topo, greedy(2), &pb, SimConfig::default(), faults);
        for _ in 0..20 {
            sim.step();
        }
        // Throughout the fault window, A never entered (1,0): k=2 minus one
        // degraded slot leaves room 1, fully used by resident B.
        assert_eq!(sim.loc(mesh_traffic::PacketId(0)), Loc::At(Coord::new(0, 0)));
        // After the faults lift everything drains.
        sim.run(100).unwrap();
        assert!(sim.done());
    }

    /// Deliveries are exempt from degradation: a packet arriving *at its
    /// destination* consumes no queue slot and must not be clamped.
    #[test]
    fn degradation_does_not_block_delivery() {
        let topo = Mesh::new(2);
        let pb = RoutingProblem::from_pairs(2, "deliver", [(Coord::new(0, 0), Coord::new(1, 0))]);
        // Degrade the destination to zero effective capacity.
        let faults = FaultPlan::none(2).degrade(Coord::new(1, 0), 1, 0, None).compile();
        let mut sim =
            Sim::with_faults(&topo, greedy(1), &pb, SimConfig::default(), faults);
        assert_eq!(sim.run(10).unwrap(), 1);
    }

    /// A permanent link fault on the only profitable path, plus the watchdog:
    /// the run must end in `Deadlock` carrying the fault in its snapshot —
    /// not a panic, not a step-cap timeout.
    #[test]
    fn permanent_fault_is_reported_as_deadlock_with_fault_context() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "blocked", [(Coord::new(0, 0), Coord::new(2, 0))]);
        let faults = FaultPlan::none(3)
            .link_down(Coord::new(0, 0), Dir::East, 0, None)
            .compile();
        let config = SimConfig {
            watchdog: Some(30),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, config, faults);
        let err = sim.run(100_000).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)), "got {err}");
        let snap = err.snapshot();
        assert_eq!(snap.active_faults.len(), 1);
        assert_eq!(snap.stuck.len(), 1);
        assert!(err.to_string().contains("link (0,0)-E down"), "got {err}");
    }

    /// The watchdog holds off while a *transient* fault might still lift,
    /// then the run completes normally.
    #[test]
    fn watchdog_waits_out_transient_faults() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "patience", [(Coord::new(0, 0), Coord::new(1, 0))]);
        let faults = FaultPlan::none(3)
            .link_down(Coord::new(0, 0), Dir::East, 0, Some(200))
            .compile();
        let config = SimConfig {
            watchdog: Some(10),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, config, faults);
        let steps = sim.run(1000).expect("fault lifts; not a deadlock");
        assert_eq!(steps, 201);
    }

    /// A node stalled from step 0 does not inject its static packet until
    /// the stall lifts.
    #[test]
    fn stall_at_step_zero_blocks_injection() {
        let topo = Mesh::new(3);
        let pb = RoutingProblem::from_pairs(3, "held", [(Coord::new(0, 0), Coord::new(1, 0))]);
        let faults = FaultPlan::none(3).stall(Coord::new(0, 0), 0, Some(4)).compile();
        let mut sim = Sim::with_faults(&topo, greedy(1), &pb, SimConfig::default(), faults);
        assert_eq!(sim.loc(mesh_traffic::PacketId(0)), Loc::Pending);
        let steps = sim.run(100).unwrap();
        assert!(steps >= 5, "stall held injection, took {steps}");
        assert!(sim.done());
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::router::Dx;
    use mesh_topo::Mesh;

    #[test]
    fn stats_accessors_are_consistent() {
        // Reuse the greedy test router defined in `tests`.
        let topo = Mesh::new(8);
        let pb = mesh_traffic::workloads::random_permutation(8, 21);
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 64 }), &pb);
        sim.run(10_000).unwrap();
        let d = sim.latency_distribution();
        assert_eq!(d.count, 64);
        assert!(d.max as u64 <= sim.steps());
        assert!(d.min >= 1 || pb.packets.iter().any(|p| p.src == p.dst));
        let map = sim.congestion_map();
        assert_eq!(map.values.len(), 64);
        assert_eq!(
            map.values.iter().copied().max().unwrap(),
            sim.report().max_node_load
        );
        let curve = sim.delivery_curve();
        assert_eq!(curve.per_step.iter().map(|&c| c as usize).sum::<usize>(), 64);
        assert_eq!(
            curve.completion_step(64, 1.0),
            Some(sim.report().max_latency)
        );
    }
}

#[cfg(test)]
mod conservation_tests {
    use super::*;
    use crate::router::Dx;
    use mesh_topo::{Mesh, Topology};
    use mesh_traffic::workloads;

    /// Packet conservation: at every step, delivered + in-network + pending
    /// partitions the packet set, and queue contents are globally consistent
    /// with per-packet locations.
    #[test]
    fn packets_are_conserved_every_step() {
        let topo = Mesh::new(12);
        let pb = workloads::dynamic_bernoulli(12, 0.05, 40, 3);
        let mut sim = Sim::new(&topo, Dx::new(super::tests::Greedy { k: 3 }), &pb);
        for _ in 0..600 {
            let done = sim.step();
            let mut delivered = 0;
            let mut in_network = 0;
            let mut pending = 0;
            let mut lost = 0;
            for i in 0..sim.num_packets() {
                match sim.loc(mesh_traffic::PacketId(i as u32)) {
                    Loc::Delivered => delivered += 1,
                    Loc::At(c) => {
                        in_network += 1;
                        // The node's queues must actually contain it.
                        assert!(
                            sim.packets_at(c).contains(&mesh_traffic::PacketId(i as u32)),
                            "packet {i} location desynchronized"
                        );
                    }
                    Loc::Pending => pending += 1,
                    Loc::Lost => lost += 1,
                }
            }
            assert_eq!(delivered + in_network + pending + lost, sim.num_packets());
            assert_eq!(delivered, sim.delivered());
            assert_eq!(lost, sim.lost());
            assert_eq!(lost, 0, "no lossy faults in this plan");
            // And the reverse: every queued id maps back to that node.
            for c in topo.coords() {
                for p in sim.packets_at(c) {
                    assert_eq!(sim.loc(p), Loc::At(c));
                }
            }
            if done {
                break;
            }
        }
        assert!(sim.done(), "dynamic traffic should drain");
    }

    /// Moves are monotone: total_moves never decreases and increases by at
    /// most one per directed link per step (4·n² absolute cap).
    #[test]
    fn move_accounting_is_bounded_per_step() {
        let topo = Mesh::new(10);
        let pb = workloads::random_permutation(10, 5);
        let mut sim = Sim::new(&topo, Dx::new(super::tests::Greedy { k: 100 }), &pb);
        let mut last = 0;
        while !sim.step() {
            let now = sim.report().total_moves;
            assert!(now >= last);
            assert!(now - last <= 4 * 100, "more moves than links in a step");
            last = now;
            assert!(
                sim.steps() <= 10_000,
                "did not finish within 10000 steps: {}",
                sim.diagnostics()
            );
        }
    }
}

#[cfg(test)]
mod chaos_tests {
    //! Fuzzing the engine with a "chaos router": a deterministic but
    //! arbitrary-looking destination-exchangeable policy (decisions from a
    //! hash of step/node/packet data). Whatever the policy does, the engine
    //! must uphold the model: one packet per link, capacity bounds, packet
    //! conservation, minimality of scheduled moves.

    use super::*;
    use crate::queue::QueueArch;
    use crate::router::{Dx, DxRouter};
    use crate::view::DxView;
    use mesh_topo::{Mesh, ALL_DIRS};
    use mesh_traffic::workloads;

    struct Chaos {
        seed: u64,
        k: u32,
    }

    fn hash(mut x: u64) -> u64 {
        // splitmix64
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    impl DxRouter for Chaos {
        type NodeState = u64;

        fn name(&self) -> String {
            format!("chaos({})", self.seed)
        }

        fn queue_arch(&self) -> QueueArch {
            QueueArch::Central { k: self.k }
        }

        fn outqueue(
            &self,
            step: u64,
            node: Coord,
            state: &mut u64,
            pkts: &[DxView],
            out: &mut [Option<usize>; 4],
        ) {
            *state = hash(*state ^ step);
            for (i, p) in pkts.iter().enumerate() {
                let dirs: Vec<_> = p.profitable.iter().collect();
                if dirs.is_empty() {
                    continue;
                }
                let h = hash(self.seed ^ step ^ ((node.x as u64) << 32) ^ node.y as u64 ^ p.id.0 as u64);
                // Sometimes refuse to schedule at all.
                if h.is_multiple_of(5) {
                    continue;
                }
                let d = dirs[(h as usize / 7) % dirs.len()];
                if out[d.index()].is_none() {
                    out[d.index()] = Some(i);
                }
            }
        }

        fn inqueue(
            &self,
            step: u64,
            node: Coord,
            _state: &mut u64,
            residents: &[DxView],
            arrivals: &[crate::view::Arrival<DxView>],
            accept: &mut [bool],
        ) {
            let mut room = (self.k as usize).saturating_sub(residents.len());
            for (i, a) in arrivals.iter().enumerate() {
                let h = hash(self.seed ^ step ^ node.x as u64 ^ ((node.y as u64) << 16) ^ a.view.id.0 as u64);
                if room > 0 && !h.is_multiple_of(3) {
                    accept[i] = true;
                    room -= 1;
                }
            }
        }

        fn end_of_step(
            &self,
            step: u64,
            _node: Coord,
            _state: &mut u64,
            _residents: &[DxView],
            states: &mut [u64],
        ) {
            for s in states.iter_mut() {
                *s = hash(*s ^ step);
            }
        }
    }

    #[test]
    fn engine_invariants_hold_under_arbitrary_policies() {
        for seed in 0..8u64 {
            for k in [1u32, 2, 5] {
                let topo = Mesh::new(9);
                let pb = workloads::random_partial_permutation(9, 0.6, seed);
                let mut sim = Sim::new(&topo, Dx::new(Chaos { seed, k }), &pb);
                // Chaos may never finish; run a bounded window. The engine's
                // internal validation (capacity, minimality, one packet per
                // link) panics on any violation.
                let _ = sim.run(600);
                let r = sim.report();
                assert!(r.max_queue <= k, "seed={seed} k={k}");
                assert!(r.delivered <= r.total_packets);
                // Moves of delivered packets are exactly their distances
                // (minimal moves only) — undelivered ones are en route, so
                // total moves never exceeds total work.
                assert!(r.total_moves <= pb.total_work());
            }
        }
    }

    #[test]
    fn chaos_runs_are_reproducible() {
        let topo = Mesh::new(9);
        let pb = workloads::random_partial_permutation(9, 0.5, 3);
        let run = |seed| {
            let mut sim = Sim::new(&topo, Dx::new(Chaos { seed, k: 2 }), &pb);
            let _ = sim.run(400);
            sim.packet_snapshot()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different chaos seeds should diverge");
    }

    #[test]
    fn chaos_respects_link_exclusivity() {
        // Count arrivals per (node, from) per step via a hook: at most one.
        let topo = Mesh::new(9);
        let pb = workloads::random_partial_permutation(9, 0.8, 11);
        let mut sim = Sim::new(&topo, Dx::new(Chaos { seed: 5, k: 3 }), &pb);
        let mut hook = |ctx: &mut crate::hook::HookCtx<'_>| {
            let mut seen = std::collections::HashSet::new();
            for m in ctx.moves {
                assert!(
                    seen.insert((m.from, m.travel)),
                    "two packets scheduled on one link"
                );
                for d in ALL_DIRS {
                    let _ = d;
                }
            }
        };
        let _ = sim.run_with_hook(400, &mut hook);
    }
}

#[cfg(test)]
mod loss_and_protocol_tests {
    //! Lossy links, runtime spawning, and the protocol driving loop.

    use super::*;
    use crate::protocol::{ProtocolControl, ProtocolHook, StepEvents};
    use crate::router::Dx;
    use mesh_faults::FaultPlan;
    use mesh_topo::Mesh;
    use mesh_traffic::RoutingProblem;

    fn one_packet(n: u32, src: Coord, dst: Coord) -> RoutingProblem {
        RoutingProblem::from_pairs(n, "one", [(src, dst)])
    }

    #[test]
    fn lossy_link_destroys_the_packet_in_flight() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(1, 0), Dir::East, 0, None)
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig {
                watchdog: Some(8),
                ..SimConfig::default()
            },
            faults,
        );
        // Step 1: (0,0) -> (1,0). Step 2: transmitted over the lossy link,
        // destroyed.
        assert!(!sim.step());
        assert_eq!(sim.loc(PacketId(0)), Loc::At(Coord::new(1, 0)));
        assert!(!sim.step());
        assert_eq!(sim.loc(PacketId(0)), Loc::Lost);
        assert_eq!(sim.lost(), 1);
        assert_eq!(sim.last_step_losses(), &[PacketId(0)]);
        assert_eq!(sim.packet_hops()[0], 2, "the fatal hop counts");
        assert_eq!(sim.report().total_moves, 2);
        assert!(sim.packets_at(Coord::new(1, 0)).is_empty());
        // The run can never finish; the watchdog reports the wedge and the
        // diagnostics account for the loss.
        let err = sim.run(1_000).unwrap_err();
        let snap = err.snapshot();
        assert_eq!(snap.lost, 1);
        assert_eq!(snap.pending, 0);
        assert!(snap.stuck.is_empty());
        assert!(err.to_string().contains("1 lost to faulty links"), "{err}");
    }

    #[test]
    fn loss_interval_boundaries_are_respected() {
        // The same route, but the loss interval ends before the packet
        // reaches the link: it crosses unharmed.
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(1, 0), Dir::East, 0, Some(1))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig::default(),
            faults,
        );
        assert_eq!(sim.run(100).unwrap(), 3);
        assert_eq!(sim.lost(), 0);
    }

    #[test]
    fn down_takes_precedence_over_lossy_on_the_same_link() {
        // A link both down and lossy blocks the move (packet survives at
        // its sender) rather than eating the packet.
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(2, 0));
        let faults = FaultPlan::none(4)
            .link_down(Coord::new(1, 0), Dir::East, 0, Some(5))
            .lossy(Coord::new(1, 0), Dir::East, 0, Some(5))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig::default(),
            faults,
        );
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.loc(PacketId(0)), Loc::At(Coord::new(1, 0)));
        assert_eq!(sim.lost(), 0);
        assert!(sim.run(100).is_ok(), "delivers after the fault lifts");
    }

    #[test]
    fn spawn_injects_like_any_other_packet() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 3));
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 4 }), &pb);
        sim.step();
        let id = sim.spawn(Coord::new(3, 0), Coord::new(0, 0), sim.steps());
        assert_eq!(id, PacketId(1));
        assert_eq!(sim.num_packets(), 2);
        assert_eq!(sim.loc(id), Loc::Pending);
        sim.run(100).unwrap();
        assert!(sim.done());
        assert_eq!(sim.delivered(), 2);
        assert!(sim.delivered_step(id).unwrap() >= 2);
        // Deliveries surfaced through the per-step events as they happened.
        assert_eq!(sim.last_step_deliveries().len(), 1);
    }

    #[test]
    #[should_panic(expected = "spawn at step")]
    fn spawn_rejects_past_injection_times() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 3));
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 4 }), &pb);
        sim.step();
        sim.spawn(Coord::new(0, 0), Coord::new(1, 1), 0);
    }

    #[test]
    fn deferred_injections_are_counted() {
        // k = 1 and three same-source packets: two wait outside the network
        // on the first step.
        let n = 4;
        let topo = Mesh::new(n);
        let s = Coord::new(0, 0);
        let pb = RoutingProblem::from_pairs(
            n,
            "burst",
            [(s, Coord::new(3, 0)), (s, Coord::new(3, 1)), (s, Coord::new(3, 2))],
        );
        let mut sim = Sim::new(&topo, Dx::new(tests::Greedy { k: 1 }), &pb);
        assert_eq!(sim.deferred_injections(), 2, "two deferred at t=0");
        assert!(!sim.injections_exhausted());
        sim.run(100).unwrap();
        assert!(sim.injections_exhausted());
        assert!(sim.report().deferred_injections >= 2);
    }

    /// A deliberately minimal transport: resend every lost packet once per
    /// loss event, succeed when everything (original or resend) arrived.
    struct Resend {
        outstanding: usize,
    }

    impl ProtocolHook for Resend {
        fn on_step<T: Topology, R: Router>(
            &mut self,
            sim: &mut Sim<'_, T, R>,
            events: &StepEvents,
        ) -> ProtocolControl {
            self.outstanding -= events.delivered.len();
            for &p in &events.lost {
                let (src, dst) = (sim.src(p), sim.dst(p));
                sim.spawn(src, dst, events.step);
            }
            if self.outstanding == 0 {
                ProtocolControl::Done
            } else {
                ProtocolControl::Continue {
                    outstanding: self.outstanding,
                }
            }
        }
    }

    #[test]
    fn run_with_protocol_recovers_a_lost_packet() {
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        // Lossy only during the first crossing; the resend gets through.
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(1, 0), Dir::East, 0, Some(2))
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig {
                watchdog: Some(16),
                ..SimConfig::default()
            },
            faults,
        );
        let mut proto = Resend { outstanding: 1 };
        let steps = sim.run_with_protocol(1_000, &mut proto).unwrap();
        assert_eq!(sim.lost(), 1);
        assert_eq!(sim.delivered(), 1);
        assert_eq!(sim.num_packets(), 2, "one original + one resend");
        assert!(steps > 3, "loss plus resend costs extra steps");
    }

    #[test]
    fn run_with_protocol_reports_livelock_when_starved() {
        // Permanently lossy link on the only minimal path: every resend is
        // eaten too. The protocol-aware watchdog must flag the wedge (as
        // delivery starvation) instead of waiting forever on the endless
        // resend activity.
        let topo = Mesh::new(4);
        let pb = one_packet(4, Coord::new(0, 0), Coord::new(3, 0));
        let faults = FaultPlan::none(4)
            .lossy(Coord::new(0, 0), Dir::East, 0, None)
            .compile();
        let mut sim = Sim::with_faults(
            &topo,
            Dx::new(tests::Greedy { k: 4 }),
            &pb,
            SimConfig {
                watchdog: Some(12),
                ..SimConfig::default()
            },
            faults,
        );
        let mut proto = Resend { outstanding: 1 };
        let err = sim.run_with_protocol(10_000, &mut proto).unwrap_err();
        assert!(matches!(err, SimError::Livelock(_)), "got {err}");
        assert!(err.snapshot().lost >= 1);
    }
}
