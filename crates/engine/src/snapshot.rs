//! Crash-safe checkpoint/restore: the versioned [`Snapshot`] of a full
//! engine run, [`Sim::snapshot`]/[`Sim::restore`], and the
//! [`CheckpointSink`] observer the checkpointing run drivers feed.
//!
//! A snapshot captures *everything* the step pipeline reads or writes —
//! the [`PacketStore`] SoA arrays, the [`NodeGrid`] queue slots (with the
//! active worklist **in order**, because the route phase walks it
//! verbatim), admission-control staging, the monotone progress counters,
//! watchdog timers, per-node router state, last-step event buffers, and
//! an opaque protocol-state slot for [`SnapshotHook`] layers (the ARQ
//! transport). Restoring a snapshot and continuing produces a run
//! bit-identical to one that never stopped — sequential or tile-sharded,
//! fault-free or faulty, raw or under a protocol.
//!
//! What a snapshot deliberately does *not* carry, because it is
//! reconstructible or caller-supplied:
//!
//! - the topology, router, and [`SimConfig`] (the caller re-supplies
//!   them; the snapshot records `n`, the queue architecture, and the
//!   algorithm name, and restore rejects mismatches);
//! - the [`CompiledFaults`] plan — a pure function of the step with no
//!   run-time state; a fingerprint (emptiness, loss-presence, last
//!   transition) is recorded so a mismatched plan is rejected;
//! - the tile runtime and the step scratch buffers, which are per-step
//!   scratch rebuilt from `(n, &SimConfig)`.
//!
//! The format is self-describing JSON with a leading
//! `format_version` field; [`Snapshot::from_json`] checks the version
//! before touching any other field and every load error is a typed
//! [`SnapshotError`] — truncated files, occupancy mismatches, permuted
//! injection orders, and unknown versions all surface as rich errors,
//! never panics.

use crate::diag::DiagnosticSnapshot;
use crate::phases::{AdmissionPolicy, EventLog, Progress, StepBufs};
use crate::queue::{QueueArch, QueueKind};
use crate::router::Router;
use crate::sim::{Sim, SimConfig, SimError};
use crate::steady::SteadyConfig;
use crate::storage::{Loc, NodeGrid, PacketStore, NOT_DELIVERED};
use crate::watchdog::Timers;
use mesh_faults::CompiledFaults;
use mesh_topo::{Coord, Topology};
use mesh_traffic::PacketId;
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// The snapshot format version this build writes. Bump on any change to
/// the serialized field set or meaning; old readers then fail with
/// [`SnapshotError::UnknownVersion`] instead of misinterpreting state.
///
/// v2 added the optional `steady` environment block (the open-system
/// measurement schedule and offered-load label), so a steady-state run
/// resumes from `--resume-from` alone.
///
/// v3 serializes the grid as the queue arena's dense form — one flat
/// `slab` of queue contents in (node, slot, position) order plus the
/// per-(node, slot) `lens` cut points — instead of v1/v2's per-queue
/// arrays. [`GridSnap`]'s reader accepts both spellings, so v1/v2 files
/// still restore.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 3;

/// The oldest format version this build still reads. v1 snapshots carry
/// no `steady` block; they restore with [`Snapshot::steady`] = `None`
/// (closed-system semantics, exactly what v1 writers ran).
pub const SNAPSHOT_MIN_READ_VERSION: u32 = 1;

/// Why a snapshot failed to load or validate. Restoring never panics:
/// every malformed input maps to one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(String),
    /// The file is not syntactically valid JSON (truncation included).
    Parse(String),
    /// The file declares a format version this build does not speak.
    UnknownVersion { found: u64, supported: u32 },
    /// The snapshot disagrees with the caller-supplied environment
    /// (topology side, queue architecture, algorithm, fault plan).
    Mismatch(String),
    /// The snapshot is internally inconsistent (occupancy/slot-sum
    /// mismatch, dangling packet references, broken injection order, …).
    Corrupt(String),
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::Io(m) => write!(f, "snapshot io error: {m}"),
            SnapshotError::Parse(m) => write!(f, "snapshot parse error: {m}"),
            SnapshotError::UnknownVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads {supported})"
            ),
            SnapshotError::Mismatch(m) => write!(f, "snapshot environment mismatch: {m}"),
            SnapshotError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Cheap identity of a fault plan, for mismatch detection at restore.
/// [`CompiledFaults`] itself carries no run-time state — it is a pure
/// function of the step — so the plan is re-supplied by the caller and
/// only fingerprint-checked here.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultFingerprint {
    /// The plan had no faults at all (the engine's fast path).
    pub empty: bool,
    /// The plan contains lossy links.
    pub has_losses: bool,
    /// Last step at which any finite fault interval lifts.
    pub last_transition: u64,
}

impl FaultFingerprint {
    fn of(faults: Option<&CompiledFaults>) -> FaultFingerprint {
        match faults {
            None => FaultFingerprint {
                empty: true,
                has_losses: false,
                last_transition: 0,
            },
            Some(f) => FaultFingerprint {
                empty: f.is_empty(),
                has_losses: f.has_losses(),
                last_transition: f.last_transition(),
            },
        }
    }
}

/// The steady-state environment of an open-system (`run_steady`) run:
/// everything a flag-free resume needs beyond the packet/grid state. The
/// admission policy is fingerprinted separately ([`Snapshot::admission`]);
/// this block carries the measurement schedule and the offered-load label.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SteadySnap {
    /// Offered load (packets per node per step) the open workload was
    /// built with. A label for reports — the arrivals themselves are
    /// already materialized in the packet table.
    pub lambda: f64,
    /// The measurement schedule the run follows.
    pub config: SteadyConfig,
}

/// The packet table, exactly as the [`PacketStore`] holds it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PacketsSnap {
    pub src: Vec<Coord>,
    pub dst: Vec<Coord>,
    pub state: Vec<u64>,
    pub inject_at: Vec<u64>,
    pub loc: Vec<Loc>,
    pub queue_of: Vec<QueueKind>,
    pub delivered_at: Vec<u64>,
    pub hops: Vec<u32>,
    pub inject_order: Vec<PacketId>,
    pub inject_cursor: usize,
}

/// The queue storage: the arena's dense queue contents plus the staging
/// and bookkeeping state the pipeline resumes from.
#[derive(Clone, Debug, Serialize)]
pub struct GridSnap {
    /// Every queue's contents concatenated in (node, slot, position)
    /// order — the v3 dense arena form; `lens` gives the cut points.
    pub slab: Vec<PacketId>,
    /// Per-(node, slot) queue lengths, node-major slot-minor.
    pub lens: Vec<u32>,
    /// Admission-deferred injections per node, sorted by node index.
    pub pending: Vec<(u32, Vec<PacketId>)>,
    /// The active-node worklist **in order** (route-schedule order next
    /// step — reordering it would break bit-identical resumption).
    pub active: Vec<u32>,
    /// Per-node all-time peak occupancy (congestion map).
    pub peak_load: Vec<u16>,
}

impl Deserialize for GridSnap {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        // v3 writes the dense arena form; v1/v2 wrote per-queue arrays
        // under `queues` (`Value::field` yields Null for the key a given
        // vintage lacks). Both spellings restore into the same arena.
        let (slab, lens) = match v.field("slab")? {
            Value::Null => {
                let queues: Vec<Vec<PacketId>> = Deserialize::deserialize(v.field("queues")?)?;
                let lens = queues.iter().map(|q| q.len() as u32).collect();
                (queues.into_iter().flatten().collect(), lens)
            }
            slab => (
                Deserialize::deserialize(slab)?,
                Deserialize::deserialize(v.field("lens")?)?,
            ),
        };
        Ok(GridSnap {
            slab,
            lens,
            pending: Deserialize::deserialize(v.field("pending")?)?,
            active: Deserialize::deserialize(v.field("active")?)?,
            peak_load: Deserialize::deserialize(v.field("peak_load")?)?,
        })
    }
}

/// The most recent step's delivery/loss events (the
/// [`Sim::last_step_deliveries`] view survives a restore).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EventsSnap {
    pub delivered: Vec<PacketId>,
    pub lost: Vec<PacketId>,
}

/// The complete serialized state of a run, between two steps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    /// Always first in the rendered JSON, so version checks never depend
    /// on the rest of the layout.
    pub format_version: u32,
    /// Steps executed when the snapshot was taken (duplicate of
    /// `progress.steps`, hoisted for file naming and quick inspection).
    pub step: u64,
    pub n: u32,
    pub arch: QueueArch,
    pub algorithm: String,
    pub workload: String,
    pub faults: FaultFingerprint,
    /// Admission policy the run executes under. Unlike tile threads or
    /// checkpoint cadence this *does* affect simulated state, so restore
    /// rejects a config whose policy disagrees. Absent in pre-admission
    /// snapshots; those deserialize to the closed-system default.
    pub admission: AdmissionPolicy,
    /// Steady-state environment, present iff the checkpoint was taken by
    /// a steady driver (format v2+; v1 snapshots deserialize to `None`).
    /// Carrying it here is what lets `--resume-from` alone resume a
    /// steady run without re-passing the schedule flags.
    pub steady: Option<SteadySnap>,
    pub(crate) progress: Progress,
    pub(crate) timers: Timers,
    pub packets: PacketsSnap,
    pub grid: GridSnap,
    pub events: EventsSnap,
    /// Per-node router state, serialized through the router's own
    /// `NodeState: Serialize` impl.
    pub node_state: Vec<Value>,
    /// Opaque protocol-layer state ([`SnapshotHook::snapshot_state`]),
    /// present when the checkpoint was taken under a protocol run.
    pub protocol: Option<Value>,
}

impl Snapshot {
    /// Renders the snapshot as pretty JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serialization");
        s.push('\n');
        s
    }

    /// Parses a snapshot, checking the format version before any other
    /// field so truncated or future-format files fail with a typed error.
    pub fn from_json(text: &str) -> Result<Snapshot, SnapshotError> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let ver = v
            .field("format_version")
            .map_err(|e| SnapshotError::Parse(e.to_string()))?;
        let found = match *ver {
            Value::U64(x) => x,
            ref other => {
                return Err(SnapshotError::Parse(format!(
                    "format_version must be an integer, found {}",
                    other.kind()
                )))
            }
        };
        if !(SNAPSHOT_MIN_READ_VERSION as u64..=SNAPSHOT_FORMAT_VERSION as u64).contains(&found) {
            return Err(SnapshotError::UnknownVersion {
                found,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        Snapshot::deserialize(&v).map_err(|e| SnapshotError::Corrupt(e.to_string()))
    }

    /// Writes the snapshot to `path` atomically (temp file + rename), so
    /// a crash mid-write never leaves a truncated checkpoint behind.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| SnapshotError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| SnapshotError::Io(format!("rename to {}: {e}", path.display())))?;
        Ok(())
    }

    /// Reads and parses a snapshot file.
    pub fn read_from(path: &Path) -> Result<Snapshot, SnapshotError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SnapshotError::Io(format!("read {}: {e}", path.display())))?;
        Snapshot::from_json(&text)
    }
}

impl<'t, T: Topology, R: Router> Sim<'t, T, R> {
    /// Captures the complete run state between steps. The protocol slot is
    /// `None`; checkpointing protocol drivers fill it from their
    /// [`SnapshotHook`].
    pub fn snapshot(&self) -> Snapshot
    where
        R::NodeState: Serialize,
    {
        let mut pending: Vec<(u32, Vec<PacketId>)> = self
            .grid
            .pending
            .iter()
            .map(|(&ni, q)| (ni, q.iter().copied().collect()))
            .collect();
        pending.sort_unstable_by_key(|&(ni, _)| ni);
        Snapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            step: self.progress.steps,
            n: self.grid.n(),
            arch: self.grid.arch(),
            algorithm: self.router.name(),
            workload: self.workload.clone(),
            faults: FaultFingerprint::of(self.faults.as_ref()),
            admission: self.config.admission,
            steady: None,
            progress: self.progress.clone(),
            timers: self.timers.clone(),
            packets: PacketsSnap {
                src: self.store.src.clone(),
                dst: self.store.dst.clone(),
                state: self.store.state.clone(),
                inject_at: self.store.inject_at.clone(),
                loc: self.store.loc.clone(),
                queue_of: self.store.queue_of.clone(),
                delivered_at: self.store.delivered_at.clone(),
                hops: self.store.hops.clone(),
                inject_order: self.store.inject_order.clone(),
                inject_cursor: self.store.inject_cursor,
            },
            grid: GridSnap {
                slab: self.grid.export_queues().flatten().copied().collect(),
                lens: self.grid.export_queues().map(|q| q.len() as u32).collect(),
                pending,
                active: self.grid.export_active(),
                peak_load: self.grid.peak_load.clone(),
            },
            events: EventsSnap {
                delivered: self.events.delivered.clone(),
                lost: self.events.lost.clone(),
            },
            node_state: self.node_state.iter().map(|s| s.serialize()).collect(),
            protocol: None,
        }
    }

    /// Reconstructs a live simulation from a snapshot and continues where
    /// it left off. The caller re-supplies the topology, router, config,
    /// and fault plan — they must match what the snapshot was taken under
    /// (side, queue architecture, algorithm name, fault fingerprint), or a
    /// [`SnapshotError::Mismatch`] is returned. Execution-strategy config
    /// (tile threads, checkpoint cadence, watchdog) may differ freely:
    /// none of it affects simulated state.
    ///
    /// Every restore re-validates the full queue-invariant set; a snapshot
    /// that passes cannot trip [`Sim::assert_queue_invariants`], which is
    /// nevertheless run once more as a hard backstop.
    pub fn restore(
        topo: &'t T,
        router: R,
        config: SimConfig,
        faults: Option<CompiledFaults>,
        snap: &Snapshot,
    ) -> Result<Self, SnapshotError>
    where
        R::NodeState: Deserialize,
    {
        if !(SNAPSHOT_MIN_READ_VERSION..=SNAPSHOT_FORMAT_VERSION).contains(&snap.format_version) {
            return Err(SnapshotError::UnknownVersion {
                found: snap.format_version as u64,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let n = snap.n;
        if topo.side() != n {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot is for side {n}, topology has side {}",
                topo.side()
            )));
        }
        if router.queue_arch() != snap.arch {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot used queue architecture {:?}, router has {:?}",
                snap.arch,
                router.queue_arch()
            )));
        }
        if router.name() != snap.algorithm {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot was taken under algorithm '{}', restoring under '{}'",
                snap.algorithm,
                router.name()
            )));
        }
        if let Some(f) = &faults {
            if f.n() != n {
                return Err(SnapshotError::Mismatch(format!(
                    "fault plan is for side {}, snapshot for side {n}",
                    f.n()
                )));
            }
        }
        let fp = FaultFingerprint::of(faults.as_ref().filter(|f| !f.is_empty()));
        if fp != snap.faults {
            return Err(SnapshotError::Mismatch(format!(
                "fault plan fingerprint {fp:?} does not match the snapshot's {:?}",
                snap.faults
            )));
        }
        if config.admission != snap.admission {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot was taken under admission policy {:?}, restoring under {:?}",
                snap.admission, config.admission
            )));
        }
        validate_packets(snap)?;
        let store = PacketStore {
            src: snap.packets.src.clone(),
            dst: snap.packets.dst.clone(),
            state: snap.packets.state.clone(),
            inject_at: snap.packets.inject_at.clone(),
            loc: snap.packets.loc.clone(),
            queue_of: snap.packets.queue_of.clone(),
            delivered_at: snap.packets.delivered_at.clone(),
            hops: snap.packets.hops.clone(),
            // Derived state, not serialized: rebuild the cached profitable
            // masks of every in-network packet from its restored location.
            mask: snap
                .packets
                .loc
                .iter()
                .zip(snap.packets.dst.iter())
                .map(|(l, d)| match l {
                    Loc::At(c) => topo.profitable(*c, *d).bits(),
                    _ => 0,
                })
                .collect(),
            inject_order: snap.packets.inject_order.clone(),
            inject_cursor: snap.packets.inject_cursor,
        };
        let grid = NodeGrid::from_parts(
            n,
            snap.arch,
            &snap.grid.slab,
            snap.grid.lens.clone(),
            &snap.grid.pending,
            &snap.grid.active,
            snap.grid.peak_load.clone(),
        )
        .map_err(SnapshotError::Corrupt)?;
        validate_cross_refs(snap, &store, &grid)?;
        let nodes = (n * n) as usize;
        if snap.node_state.len() != nodes {
            return Err(SnapshotError::Corrupt(format!(
                "{} node-state entries for {nodes} nodes",
                snap.node_state.len()
            )));
        }
        let node_state: Vec<R::NodeState> = snap
            .node_state
            .iter()
            .map(R::NodeState::deserialize)
            .collect::<Result<_, _>>()
            .map_err(|e| SnapshotError::Corrupt(format!("node state: {e}")))?;
        let sim = Sim {
            topo,
            router,
            workload: snap.workload.clone(),
            config,
            faults: faults.filter(|f| !f.is_empty()),
            store,
            grid,
            node_state,
            progress: snap.progress.clone(),
            timers: snap.timers.clone(),
            events: EventLog {
                delivered: snap.events.delivered.clone(),
                lost: snap.events.lost.clone(),
            },
            bufs: StepBufs::default(),
            tile: crate::tiles::TileRt::new(n, &config).map(Box::new),
        };
        // Backstop: a snapshot that passed validation cannot trip this,
        // but a restore must *never* hand back a sim that would fail
        // 10k steps later on state the load path vouched for.
        sim.assert_queue_invariants();
        Ok(sim)
    }
}

/// Packet-table-local validation: array-length agreement, injection-order
/// permutation and cursor sanity, counter/location agreement.
fn validate_packets(snap: &Snapshot) -> Result<(), SnapshotError> {
    let p = &snap.packets;
    let len = p.src.len();
    let corrupt = |m: String| Err(SnapshotError::Corrupt(m));
    for (name, l) in [
        ("dst", p.dst.len()),
        ("state", p.state.len()),
        ("inject_at", p.inject_at.len()),
        ("loc", p.loc.len()),
        ("queue_of", p.queue_of.len()),
        ("delivered_at", p.delivered_at.len()),
        ("hops", p.hops.len()),
        ("inject_order", p.inject_order.len()),
    ] {
        if l != len {
            return corrupt(format!(
                "packet array `{name}` has {l} entries, src has {len}"
            ));
        }
    }
    if snap.step != snap.progress.steps {
        return corrupt(format!(
            "step field {} disagrees with progress.steps {}",
            snap.step, snap.progress.steps
        ));
    }
    for (i, c) in p.src.iter().chain(p.dst.iter()).enumerate() {
        if c.x >= snap.n || c.y >= snap.n {
            return corrupt(format!(
                "endpoint {c} of entry {i} lies off the {0}x{0} grid",
                snap.n
            ));
        }
    }
    if p.inject_cursor > len {
        return corrupt(format!(
            "inject cursor {} past {len} packets",
            p.inject_cursor
        ));
    }
    let mut seen = vec![false; len];
    for pid in &p.inject_order {
        let Some(slot) = seen.get_mut(pid.index()) else {
            return corrupt(format!("inject order names unknown packet {:?}", pid));
        };
        if *slot {
            return corrupt(format!("inject order repeats packet {:?}", pid));
        }
        *slot = true;
    }
    // The uninjected tail stays sorted by due step (the inject phase's
    // early-exit relies on it).
    let tail = &p.inject_order[p.inject_cursor..];
    for w in tail.windows(2) {
        if p.inject_at[w[0].index()] > p.inject_at[w[1].index()] {
            return corrupt(format!(
                "uninjected tail out of order: {:?} (due {}) before {:?} (due {})",
                w[0],
                p.inject_at[w[0].index()],
                w[1],
                p.inject_at[w[1].index()]
            ));
        }
    }
    let mut delivered = 0usize;
    let mut lost = 0usize;
    let mut shed = 0usize;
    let mut expired = 0usize;
    for i in 0..len {
        match p.loc[i] {
            Loc::Delivered => {
                delivered += 1;
                if p.delivered_at[i] == NOT_DELIVERED {
                    return corrupt(format!("packet {i} delivered without a delivery step"));
                }
            }
            other => {
                if p.delivered_at[i] != NOT_DELIVERED {
                    return corrupt(format!("packet {i} has a delivery step but is {other:?}"));
                }
                match other {
                    Loc::Lost => lost += 1,
                    Loc::Shed => shed += 1,
                    Loc::Expired => expired += 1,
                    Loc::At(c) if c.x >= snap.n || c.y >= snap.n => {
                        return corrupt(format!("packet {i} located off-grid at {c}"));
                    }
                    _ => {}
                }
            }
        }
    }
    if delivered != snap.progress.delivered {
        return corrupt(format!(
            "progress says {} delivered, locations say {delivered}",
            snap.progress.delivered
        ));
    }
    if lost != snap.progress.lost {
        return corrupt(format!(
            "progress says {} lost, locations say {lost}",
            snap.progress.lost
        ));
    }
    if shed != snap.progress.shed {
        return corrupt(format!(
            "progress says {} shed, locations say {shed}",
            snap.progress.shed
        ));
    }
    if expired != snap.progress.expired {
        return corrupt(format!(
            "progress says {} expired, locations say {expired}",
            snap.progress.expired
        ));
    }
    Ok(())
}

/// Cross-structure validation: every queue slot points at a live packet
/// whose own records point back, capacity bounds hold, pending staging
/// agrees with locations, and event buffers reference real packets.
fn validate_cross_refs(
    snap: &Snapshot,
    store: &PacketStore,
    grid: &NodeGrid,
) -> Result<(), SnapshotError> {
    let len = store.len();
    let corrupt = |m: String| Err(SnapshotError::Corrupt(m));
    let mut queued = vec![false; len];
    let mut in_network = 0usize;
    for ni in 0..grid.nodes() {
        let c = grid.coord_of(ni);
        for slot in 0..grid.slots() {
            let kind = grid.slot_kind(slot);
            let q = grid.queue(ni, slot);
            if let Some(cap) = grid.arch().capacity(kind) {
                if q.len() > cap as usize {
                    return corrupt(format!(
                        "queue {kind:?} of node {c} holds {} > capacity {cap}",
                        q.len()
                    ));
                }
            }
            for &pid in q {
                let Some(flag) = queued.get_mut(pid.index()) else {
                    return corrupt(format!(
                        "queue {kind:?} of {c} holds unknown packet {pid:?}"
                    ));
                };
                if *flag {
                    return corrupt(format!("packet {pid:?} appears in two queues"));
                }
                *flag = true;
                in_network += 1;
                if store.loc[pid.index()] != Loc::At(c) {
                    return corrupt(format!(
                        "packet {pid:?} queued at {c} but its location says {:?}",
                        store.loc[pid.index()]
                    ));
                }
                if store.queue_of[pid.index()] != kind {
                    return corrupt(format!(
                        "packet {pid:?} queued in {kind:?} at {c} but its record says {:?}",
                        store.queue_of[pid.index()]
                    ));
                }
            }
        }
    }
    let at_count = store.loc.iter().filter(|l| matches!(l, Loc::At(_))).count();
    if at_count != in_network {
        return corrupt(format!(
            "{at_count} packets locate themselves in the network, queues hold {in_network} \
             (occupancy/slot-sum mismatch)"
        ));
    }
    for (ni, pids) in &snap.grid.pending {
        for pid in pids {
            if pid.index() >= len {
                return corrupt(format!("pending bucket {ni} holds unknown packet {pid:?}"));
            }
            if store.loc[pid.index()] != Loc::Pending {
                return corrupt(format!(
                    "packet {pid:?} staged at node {ni} but its location says {:?}",
                    store.loc[pid.index()]
                ));
            }
            let src = store.src[pid.index()];
            if grid.node_index(src) as u32 != *ni {
                return corrupt(format!(
                    "packet {pid:?} staged at node {ni} but originates at {src}"
                ));
            }
        }
    }
    for pid in snap.events.delivered.iter().chain(snap.events.lost.iter()) {
        if pid.index() >= len {
            return corrupt(format!("event buffer references unknown packet {pid:?}"));
        }
    }
    // Open-system conservation: every offered packet (past the injection
    // cursor) is delivered, lost, shed, expired, in a queue, or staged.
    let staged: usize = snap.grid.pending.iter().map(|(_, q)| q.len()).sum();
    let resolved =
        snap.progress.delivered + snap.progress.lost + snap.progress.shed + snap.progress.expired;
    if store.inject_cursor != resolved + in_network + staged {
        return corrupt(format!(
            "conservation violated: cursor offered {} but \
             delivered+lost+shed+expired ({resolved}) + in-network ({in_network}) \
             + staged ({staged}) disagree",
            store.inject_cursor
        ));
    }
    Ok(())
}

// ---- checkpoint observers -------------------------------------------------

/// Where periodic checkpoints (and failure post-mortems) go. The
/// checkpointing run drivers call [`on_checkpoint`](Self::on_checkpoint)
/// every [`SimConfig::checkpoint_every`] steps with a fully assembled
/// snapshot, and [`on_failure`](Self::on_failure) once if the run ends in
/// a [`SimError`] — the hook that persists watchdog post-mortems next to
/// the active checkpoint.
pub trait CheckpointSink {
    fn on_checkpoint(&mut self, snap: &Snapshot);

    /// The run failed (watchdog trip or step cap) at `step` with the given
    /// diagnostics. Default: ignore.
    fn on_failure(&mut self, step: u64, diag: &DiagnosticSnapshot) {
        let _ = (step, diag);
    }
}

/// Protocol layers that can ride along in a checkpoint: the opaque
/// protocol slot of a [`Snapshot`] round-trips through this pair. The ARQ
/// transport implements it over its sequence numbers, seen-sets, timers,
/// and backoff RNG.
pub trait SnapshotHook {
    /// Serializes the layer's complete state.
    fn snapshot_state(&self) -> Value;

    /// Replaces the layer's state with a previously captured value.
    fn restore_state(&mut self, v: &Value) -> Result<(), serde::Error>;
}

/// Checkpoints into memory — the differential test battery's sink.
#[derive(Default)]
pub struct MemorySink {
    /// Every checkpoint taken, in order.
    pub checkpoints: Vec<Snapshot>,
    /// The failure post-mortem, if the run failed.
    pub failure: Option<(u64, DiagnosticSnapshot)>,
}

impl CheckpointSink for MemorySink {
    fn on_checkpoint(&mut self, snap: &Snapshot) {
        self.checkpoints.push(snap.clone());
    }

    fn on_failure(&mut self, step: u64, diag: &DiagnosticSnapshot) {
        self.failure = Some((step, diag.clone()));
    }
}

impl MemorySink {
    /// The most recent checkpoint at or before `step`, if any.
    pub fn last_at_or_before(&self, step: u64) -> Option<&Snapshot> {
        self.checkpoints.iter().rev().find(|s| s.step <= step)
    }
}

/// Checkpoints into a directory as `ckpt_<step>.json` (atomic writes),
/// with failure post-mortems as `diag_<step>.json` beside them. Write
/// errors are recorded in [`error`](Self::error) rather than panicking —
/// a full disk must not take the simulation down with it.
pub struct DirectorySink {
    dir: PathBuf,
    last: Option<PathBuf>,
    /// First write error encountered, if any.
    pub error: Option<SnapshotError>,
}

impl DirectorySink {
    /// Creates the directory (and parents) if needed.
    pub fn new(dir: impl Into<PathBuf>) -> Result<DirectorySink, SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SnapshotError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(DirectorySink {
            dir,
            last: None,
            error: None,
        })
    }

    /// Path of the most recent successfully written checkpoint.
    pub fn last_checkpoint(&self) -> Option<&Path> {
        self.last.as_deref()
    }
}

impl CheckpointSink for DirectorySink {
    fn on_checkpoint(&mut self, snap: &Snapshot) {
        let path = self.dir.join(format!("ckpt_{}.json", snap.step));
        match snap.write_to(&path) {
            Ok(()) => self.last = Some(path),
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
        }
    }

    fn on_failure(&mut self, step: u64, diag: &DiagnosticSnapshot) {
        let path = self.dir.join(format!("diag_{step}.json"));
        let mut text = match serde_json::to_string_pretty(diag) {
            Ok(t) => t,
            Err(_) => return,
        };
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            if self.error.is_none() {
                self.error = Some(SnapshotError::Io(format!("write {}: {e}", path.display())));
            }
        }
    }
}

/// Takes a checkpoint if the cadence says this step is a boundary.
/// `proto` supplies the protocol slot lazily (only evaluated when a
/// checkpoint is actually taken); `steady` is the open-system environment
/// block steady drivers stamp into every checkpoint. In debug builds
/// every checkpoint write is followed by a full queue-invariant audit, so
/// a corrupt snapshot fails loudly at the source.
pub(crate) fn maybe_checkpoint<T: Topology, R: Router, S: CheckpointSink>(
    sim: &Sim<'_, T, R>,
    sink: &mut S,
    steady: Option<SteadySnap>,
    proto: impl FnOnce() -> Option<Value>,
) where
    R::NodeState: Serialize,
{
    let Some(every) = sim.config.checkpoint_every else {
        return;
    };
    let step = sim.steps();
    if step == 0 || !step.is_multiple_of(every.max(1)) {
        return;
    }
    let mut snap = sim.snapshot();
    snap.steady = steady;
    snap.protocol = proto();
    sink.on_checkpoint(&snap);
    #[cfg(debug_assertions)]
    sim.assert_queue_invariants();
}

/// Reports a failed run to the sink (the `diag_<step>.json` hook).
pub(crate) fn report_failure<S: CheckpointSink>(sink: &mut S, res: &Result<u64, SimError>) {
    if let Err(e) = res {
        sink.on_failure(e.snapshot().step, e.snapshot());
    }
}
